package incremental

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// poisonableJournal wraps the real WAL journal and fails every Record once
// poisoned — the shape of a disk that died under a live resolver.
type poisonableJournal struct {
	inner Journal
	fail  error
}

func (p *poisonableJournal) Record(rec Record) error {
	if p.fail != nil {
		return p.fail
	}
	return p.inner.Record(rec)
}
func (p *poisonableJournal) Rollback() error { return p.inner.Rollback() }
func (p *poisonableJournal) Checkpoint(snapshot []byte, keepFrom uint64) (uint64, error) {
	return p.inner.Checkpoint(snapshot, keepFrom)
}
func (p *poisonableJournal) Close() error { return p.inner.Close() }

// TestBrokenJournalPoisonsReadsAndRecovers: a reconcile that cannot be
// journaled poisons the resolver — every reconciling read and every
// mutation fails with an error wrapping ErrBroken, permanently for this
// process — while the directory itself stays consistent: reopening it
// recovers the acknowledged prefix bit-exactly.
func TestBrokenJournalPoisonsReadsAndRecovers(t *testing.T) {
	cfg := Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Meta:    &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP},
		Durable: DurableOptions{NoSync: true},
	}
	dir := t.TempDir()
	r, err := OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	insert := func(res *Resolver, uri, name string) {
		t.Helper()
		if _, err := res.Insert(ctx, person(uri, name, "berlin")); err != nil {
			t.Fatalf("insert %s: %v", uri, err)
		}
	}
	insert(r, "u:a", "alice smith")
	insert(r, "u:b", "alice smith")
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Leave deferred meta-blocking work pending, then poison the journal:
	// the next reconcile cannot record itself.
	insert(r, "u:c", "alice smith")
	pj := &poisonableJournal{inner: r.journal, fail: fmt.Errorf("simulated disk failure")}
	r.journal = pj

	if _, err := r.Stats(); !errors.Is(err, ErrBroken) {
		t.Fatalf("Stats on a poisoned journal = %v, want ErrBroken", err)
	}
	// The poison is typed and uniform across the read surface...
	if err := r.Flush(ctx); !errors.Is(err, ErrBroken) {
		t.Fatalf("Flush = %v, want ErrBroken", err)
	}
	if _, err := r.Matches(); !errors.Is(err, ErrBroken) {
		t.Fatalf("Matches = %v, want ErrBroken", err)
	}
	if _, err := r.Clusters(); !errors.Is(err, ErrBroken) {
		t.Fatalf("Clusters = %v, want ErrBroken", err)
	}
	if _, _, err := r.Snapshot(); !errors.Is(err, ErrBroken) {
		t.Fatalf("Snapshot = %v, want ErrBroken", err)
	}
	if _, err := r.MatchedWith(0); !errors.Is(err, ErrBroken) {
		t.Fatalf("MatchedWith = %v, want ErrBroken", err)
	}
	if _, err := r.RestructuredBlocks(); !errors.Is(err, ErrBroken) {
		t.Fatalf("RestructuredBlocks = %v, want ErrBroken", err)
	}
	// ...and over mutations.
	if _, err := r.Insert(ctx, person("u:d", "dave", "paris")); !errors.Is(err, ErrBroken) {
		t.Fatalf("Insert = %v, want ErrBroken", err)
	}
	if err := r.Update(ctx, 0, person("u:a", "alice smith", "berlin").Attrs); !errors.Is(err, ErrBroken) {
		t.Fatalf("Update = %v, want ErrBroken", err)
	}
	if err := r.Delete(0); !errors.Is(err, ErrBroken) {
		t.Fatalf("Delete = %v, want ErrBroken", err)
	}
	// Non-reconciling reads keep serving the in-memory picture.
	if st := r.Counters(); st.Inserts != 3 {
		t.Fatalf("Counters after poison = %+v, want the 3 acknowledged inserts", st)
	}
	if _, ok := r.Lookup("u:a"); !ok {
		t.Fatal("Lookup stopped answering after poison")
	}
	// The poison is sticky: a healed journal does not un-break the
	// resolver — the divergence already happened.
	pj.fail = nil
	if _, err := r.Stats(); !errors.Is(err, ErrBroken) {
		t.Fatalf("Stats after journal healed = %v, want ErrBroken to stick", err)
	}

	// The durable truth is unharmed: reopening the directory recovers
	// exactly the acknowledged operations, equal to an uninterrupted
	// in-memory run of the same ops with the same read schedule.
	// Abandon releases the WAL directory lock through the journal; hand the
	// real one back before the hard stop so the reopen below can take it.
	r.journal = pj.inner
	r.Abandon()
	re, err := OpenResolver(dir, cfg)
	if err != nil {
		t.Fatalf("reopening after poison: %v", err)
	}
	defer re.Close()
	memCfg := cfg
	memCfg.Durable = DurableOptions{}
	ref, err := New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	insert(ref, "u:a", "alice smith")
	insert(ref, "u:b", "alice smith")
	if err := ref.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	insert(ref, "u:c", "alice smith")
	got, want := mustStats(t, re), mustStats(t, ref)
	if got != want {
		t.Fatalf("recovered stats %+v diverge from uninterrupted reference %+v", got, want)
	}
	if g, w := mustMatches(t, re).Len(), mustMatches(t, ref).Len(); g != w {
		t.Fatalf("recovered matches %d, reference %d", g, w)
	}
}

// TestApplyBatchFailurePaths: the batch write path's failure windows. A
// cancelled context is refused at admission; a journal append that fails
// rejects the whole batch without applying or poisoning anything; a
// resolver already broken refuses batches with the sticky typed error. In
// every case the in-memory state is untouched and counters don't move.
func TestApplyBatchFailurePaths(t *testing.T) {
	cfg := Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Durable: DurableOptions{NoSync: true},
	}
	ctx := context.Background()
	batch := func(uri, name string) []Record {
		return []Record{{Kind: OpInsert, ID: -1, URI: uri, Attrs: person(uri, name, "berlin").Attrs}}
	}

	t.Run("cancelled-admission", func(t *testing.T) {
		t.Parallel()
		r, err := OpenResolver(t.TempDir(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.Insert(ctx, person("u:a", "alice smith", "berlin")); err != nil {
			t.Fatal(err)
		}
		appends := r.Perf().JournalAppends
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if err := r.ApplyBatch(cctx, batch("u:b", "bob jones")); !errors.Is(err, context.Canceled) {
			t.Fatalf("ApplyBatch under a cancelled context = %v, want context.Canceled", err)
		}
		if r.Perf().JournalAppends != appends {
			t.Fatal("refused batch reached the journal")
		}
		if _, ok := r.Lookup("u:b"); ok {
			t.Fatal("refused batch applied")
		}
		// Admission-refused, not poisoned: the same batch lands once the
		// context is live.
		if err := r.ApplyBatch(ctx, batch("u:b", "bob jones")); err != nil {
			t.Fatalf("batch after admission refusal: %v", err)
		}
	})

	t.Run("journal-failure", func(t *testing.T) {
		t.Parallel()
		r, err := OpenResolver(t.TempDir(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.Insert(ctx, person("u:a", "alice smith", "berlin")); err != nil {
			t.Fatal(err)
		}
		before := mustStats(t, r)
		appends := r.Perf().JournalAppends
		pj := &poisonableJournal{inner: r.journal, fail: fmt.Errorf("simulated disk failure")}
		r.journal = pj
		err = r.ApplyBatch(ctx, batch("u:b", "bob jones"))
		if err == nil || errors.Is(err, ErrBroken) {
			t.Fatalf("ApplyBatch on a failing journal = %v, want the journal error without poison", err)
		}
		if r.Perf().JournalAppends != appends {
			t.Fatal("failed append counted as a journal append")
		}
		if _, ok := r.Lookup("u:b"); ok {
			t.Fatal("unjournaled batch applied")
		}
		if after := mustStats(t, r); after != before {
			t.Fatalf("failed batch mutated counters: %+v -> %+v", before, after)
		}
		// Nothing was journaled and nothing applied, so the resolver is
		// not broken: heal the disk and the same batch lands.
		pj.fail = nil
		if err := r.ApplyBatch(ctx, batch("u:b", "bob jones")); err != nil {
			t.Fatalf("batch after the journal healed: %v", err)
		}
	})

	t.Run("broken-refuses-batches", func(t *testing.T) {
		t.Parallel()
		mcfg := cfg
		mcfg.Meta = &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}
		r, err := OpenResolver(t.TempDir(), mcfg)
		if err != nil {
			t.Fatal(err)
		}
		// Leave deferred meta-blocking work pending, then poison the
		// journal: the reconcile cannot record itself and breaks the
		// resolver, exactly as in the per-op poison test above.
		if _, err := r.Insert(ctx, person("u:a", "alice smith", "berlin")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Insert(ctx, person("u:b", "alice smith", "berlin")); err != nil {
			t.Fatal(err)
		}
		pj := &poisonableJournal{inner: r.journal, fail: fmt.Errorf("simulated disk failure")}
		r.journal = pj
		if _, err := r.Stats(); !errors.Is(err, ErrBroken) {
			t.Fatalf("Stats on a poisoned journal = %v, want ErrBroken", err)
		}
		if err := r.ApplyBatch(ctx, batch("u:c", "carol d")); !errors.Is(err, ErrBroken) {
			t.Fatalf("ApplyBatch on a broken resolver = %v, want ErrBroken", err)
		}
		r.journal = pj.inner
		r.Abandon()
	})
}
