package incremental

// Abandon simulates a process crash for the test suite: the journal's file
// handles — and with them the WAL directory lock, which the kernel would
// release when a crashed process exits — are dropped with none of the
// graceful shutdown work (no checkpoint, no reconcile, no final
// compaction). The on-disk state is exactly what the journaled operations
// left there, which is what crash-recovery tests must reopen from.
func (r *Resolver) Abandon() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.journal.(*walJournal); ok {
		// Close releases the fds and the flock without writing any record;
		// the fsync it performs only hardens bytes the journal already
		// acknowledged, so the logical file content is untouched.
		j.log.Close()
	}
	r.broken = errClosed
}
