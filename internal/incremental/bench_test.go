package incremental_test

import (
	"context"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// benchStream builds the replayed description stream once per benchmark.
func benchStream(b *testing.B) []*entity.Description {
	b.Helper()
	entities := 400
	if testing.Short() {
		entities = 80
	}
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: 77, Entities: entities, DupRatio: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	return c.All()
}

// replayOnce streams every description through a fresh resolver and reads
// the final state (which, with meta-blocking, settles the deferred
// reconcile), returning the resolver's stats.
func replayOnce(b *testing.B, descs []*entity.Description, meta *metablocking.MetaBlocker) incremental.Stats {
	b.Helper()
	r, err := incremental.New(incremental.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Workers: 4,
		Meta:    meta,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, d := range descs {
		if _, err := r.Insert(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
	return mustStats(b, r)
}

// BenchmarkStreamingMetaBlocking measures the streaming resolver with and
// without live WEP/CBS pruning on the same insert stream, reporting
// throughput as ops/sec and, for the pruned run, the fraction of matcher
// comparisons the live meta-blocking saved against the unpruned frontier
// (saved-ratio) plus the pruned-graph survival rate (kept/candidates).
func BenchmarkStreamingMetaBlocking(b *testing.B) {
	descs := benchStream(b)
	baseline := replayOnce(b, descs, nil)

	b.Run("nometa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			replayOnce(b, descs, nil)
		}
		b.ReportMetric(float64(len(descs))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
	})
	for _, prune := range []metablocking.PruneScheme{metablocking.WEP, metablocking.WNP} {
		meta := &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: prune}
		b.Run("meta-"+prune.String(), func(b *testing.B) {
			b.ReportAllocs()
			var st incremental.Stats
			for i := 0; i < b.N; i++ {
				st = replayOnce(b, descs, meta)
			}
			b.ReportMetric(float64(len(descs))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
			if baseline.Comparisons > 0 {
				saved := 1 - float64(st.Comparisons)/float64(baseline.Comparisons)
				b.ReportMetric(saved, "saved-ratio")
			}
			if st.CandidatePairs > 0 {
				b.ReportMetric(float64(st.KeptPairs)/float64(st.CandidatePairs), "kept-ratio")
			}
		})
	}
}
