// The routed operation stream: the shard-side apply path of the networked
// deployment (internal/transport).
//
// The in-process sharded coordinator replicates every operation to every
// shard, which keeps the handle spaces trivially aligned but makes the op
// stream itself O(shards). The networked coordinator instead ROUTES: a
// shard owning one of the operation's blocking keys receives the full
// operation, every other shard a compact slot-advance record carrying only
// the sequence number, kind and handle — enough to keep its slot space and
// operation counters aligned with the global stream without ever seeing
// the description's attributes.
//
// Routing preserves the differential contract bit for bit. A shard that
// owns none of a description's keys indexes nothing for it under
// replication (its lens keyer returns the empty owned subset), matches
// nothing against it (it never enters a block there), and therefore counts
// zero comparisons for it — exactly what the slot-advance records
// reproduce at a fraction of the traffic. The only state a routed shard
// holds less of is the attribute payload of descriptions it does not own,
// which it can never need: delta candidates only ever come from its own
// block index.
//
// Every routed record carries a strictly increasing sequence number, the
// coordinator's global operation counter. The shard journals it with the
// record (Record.Seq), snapshots it (LastSeq) and replays it, so after any
// crash the shard knows exactly which prefix of the stream it
// acknowledged; a re-sent record with seq <= LastSeq is acknowledged again
// without being re-applied — the idempotent-replay half of the transport's
// ack/retry protocol. Re-applying would not only double-count operations
// but re-run delta matching and inflate the comparison counters, so
// idempotency is enforced here, below the wire.
//
// A later operation can route a description to a shard that advanced past
// its insert: an update whose new keys hash into a shard that never held
// the attributes. The routed update therefore carries the full description
// and the shard MATERIALIZES the slot — content set, indexed, resolved
// against its delta frontier — exactly as if it had owned the description
// all along. Bootstrap (snapshot shipping) is the bulk form of the same
// idea: a shard that lost its disk receives its whole key-space projection
// from the coordinator's replica as one state transfer instead of a
// journal replay.
package incremental

import (
	"context"
	"fmt"

	"entityres/internal/entity"
	"entityres/internal/graph"
)

// RoutedOp is one record of the routed operation stream a networked
// coordinator sends a shard: the full operation for shards owning one of
// its blocking keys, or a compact slot-advance (Advance true, no payload)
// for the rest.
type RoutedOp struct {
	// Seq is the coordinator's global operation sequence number, starting
	// at 1 and increasing by exactly 1 per operation.
	Seq uint64
	// Kind is the logical operation (OpInsert, OpUpdate or OpDelete).
	Kind OpKind
	// Advance marks a slot-advance record: the shard owns none of the
	// operation's keys and only aligns its slot space and counters.
	Advance bool
	// ID is the handle the operation targets; for inserts, the handle the
	// coordinator assigned.
	ID entity.ID
	// URI and Source describe the full description (insert, and update —
	// an update can materialize the description on a shard that only ever
	// slot-advanced it, so it carries the identity fields too).
	URI    string
	Source int
	// Attrs is the full attribute set (insert, update).
	Attrs []entity.Attribute
}

// LastSeq returns the sequence number of the last applied routed operation
// (0 before any). It is durable: journaled with every record, snapshotted,
// and restored by OpenResolver — the shard's acknowledged prefix of the
// routed stream.
func (r *Resolver) LastSeq() uint64 {
	r.rlock()
	defer r.mu.RUnlock()
	return r.lastSeq
}

// ApplyRouted applies one record of the routed operation stream. Records
// must arrive in sequence: a record with Seq <= LastSeq was already
// acknowledged and is acknowledged again without being re-applied (the
// idempotent-replay half of the transport's retry protocol), a record
// beyond LastSeq+1 is refused as a gap. The operation is journaled before
// it is applied, exactly like the direct Insert/Update/Delete path.
func (r *Resolver) ApplyRouted(ctx context.Context, op RoutedOp) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	if op.Seq == 0 {
		return fmt.Errorf("incremental: routed records are numbered from 1")
	}
	if op.Seq <= r.lastSeq {
		return nil // already acknowledged: idempotent replay
	}
	if op.Seq != r.lastSeq+1 {
		return fmt.Errorf("incremental: routed record %d arrived with %d applied — the stream has a gap", op.Seq, r.lastSeq)
	}
	if err := r.validateRouted(op); err != nil {
		return err
	}
	rec := Record{Kind: op.Kind, Seq: op.Seq, Advance: op.Advance, ID: op.ID, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
	if err := r.journal.Record(rec); err != nil {
		return err
	}
	r.perf.JournalAppends++
	if err := r.applyRouted(ctx, op); err != nil {
		r.retractRecord()
		return err
	}
	r.lastSeq = op.Seq
	return r.maybeCompact()
}

// validateRouted checks a routed record against the local slot space before
// anything is journaled. Callers hold r.mu.
func (r *Resolver) validateRouted(op RoutedOp) error {
	switch op.Kind {
	case OpInsert:
		if op.ID != r.coll.Len() {
			return fmt.Errorf("incremental: routed insert assigns handle %d but the next slot is %d", op.ID, r.coll.Len())
		}
	case OpUpdate, OpDelete:
		if op.ID < 0 || op.ID >= r.coll.Len() {
			return fmt.Errorf("incremental: routed %s targets handle %d, which does not exist", op.Kind, op.ID)
		}
	default:
		return fmt.Errorf("incremental: routed record has kind %v", op.Kind)
	}
	// Payload-carrying records can introduce a URI to this shard (insert, or
	// an update materializing a slot-advanced description); the coordinator
	// validates uniqueness globally, but a collision here would corrupt the
	// local lookup table, so refuse before journaling.
	if !op.Advance && op.URI != "" {
		if have, taken := r.byURI[op.URI]; taken && have != op.ID {
			return fmt.Errorf("incremental: routed %s of %q collides with live handle %d", op.Kind, op.URI, have)
		}
	}
	return nil
}

// applyRouted is the state mutation of a routed record, shared with journal
// replay. The operation counters advance for EVERY record — full or
// slot-advance — so a shard's Inserts/Updates/Deletes always equal the
// global stream's, whatever fraction of the payloads it received. Callers
// hold r.mu and have validated the record.
func (r *Resolver) applyRouted(ctx context.Context, op RoutedOp) error {
	switch op.Kind {
	case OpInsert:
		if op.Advance {
			// Slot-advance: the handle exists globally but this shard owns
			// none of its keys. The slot is allocated as a placeholder —
			// content-free, not live locally — so handles stay aligned; a
			// later routed update can still materialize it.
			r.burnSlot()
			r.stats.Inserts++
			return nil
		}
		d := &entity.Description{ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
		id, err := r.applyInsert(ctx, d)
		if err != nil {
			return err
		}
		if id != op.ID {
			// applyInsert burned the slot on failure only; success always
			// lands on the validated next slot.
			return fmt.Errorf("incremental: routed insert landed at handle %d, coordinator assigned %d", id, op.ID)
		}
		return nil
	case OpUpdate:
		if op.Advance {
			r.stats.Updates++
			return nil
		}
		if r.isLive(op.ID) {
			return r.applyUpdate(ctx, op.ID, op.Attrs)
		}
		return r.materialize(ctx, op)
	case OpDelete:
		// A delete clears the slot wherever it is locally live, slot-advance
		// or not: a shard that owned the description's OLD keys retired its
		// block membership on the re-keying update but still holds the slot
		// live (URI table, attributes), and the description's death must
		// clear that too — otherwise a later insert reusing the globally-freed
		// URI would collide against a ghost. The Advance flag only signals
		// that no payload follows; for deletes the two forms are equivalent.
		if r.isLive(op.ID) {
			r.applyDelete(op.ID)
			return nil
		}
		// Placeholder or dead slot: only the counter moves.
		r.stats.Deletes++
		return nil
	default:
		return fmt.Errorf("incremental: routed record has kind %v", op.Kind)
	}
}

// materialize turns a placeholder slot into a live, indexed description:
// the routed-update path of a shard that now owns one of the description's
// keys but slot-advanced its insert. On failure (context cancellation
// inside delta matching) the slot reverts to its placeholder state.
// Callers hold r.mu.
func (r *Resolver) materialize(ctx context.Context, op RoutedOp) error {
	r.markSlot(op.ID)
	d := r.coll.Get(op.ID)
	d.URI, d.Source = op.URI, op.Source
	d.Attrs = append([]entity.Attribute(nil), op.Attrs...)
	r.live[op.ID] = true
	if d.URI != "" {
		r.byURI[d.URI] = op.ID
	}
	if err := r.index(ctx, op.ID); err != nil {
		r.live[op.ID] = false
		if d.URI != "" {
			delete(r.byURI, d.URI)
		}
		d.URI, d.Source, d.Attrs = "", 0, nil
		return err
	}
	r.liveCount++
	r.stats.Updates++
	return nil
}

// replayRouted re-applies one journaled routed record during recovery.
// Callers hold no lock (the resolver is not yet published).
func (r *Resolver) replayRouted(rec Record) error {
	if rec.Seq != r.lastSeq+1 {
		return fmt.Errorf("incremental: journal routed record %d follows %d — the log has a gap", rec.Seq, r.lastSeq)
	}
	op := RoutedOp{Seq: rec.Seq, Kind: rec.Kind, Advance: rec.Advance, ID: rec.ID, URI: rec.URI, Source: rec.Source, Attrs: rec.Attrs}
	if err := r.validateRouted(op); err != nil {
		return err
	}
	if err := r.applyRouted(replayCtx, op); err != nil {
		return fmt.Errorf("incremental: replaying routed record %d: %w", rec.Seq, err)
	}
	r.lastSeq = rec.Seq
	return nil
}

// EachDeltaCandidate enumerates the distinct delta-frontier candidates of
// a live description, each with the pair's claim key — the first shared
// blocking key, the key whose owning shard evaluates the pair in a sharded
// deployment. On a full (unfiltered) index the enumeration visits exactly
// the pairs a single-node resolver compares when an operation (re)indexes
// id, each pair once, so bucketing the visit count by key owner reproduces
// every shard's comparison count for the operation without running a
// matcher. A networked coordinator uses this to ship an exact Comparisons
// counter to a shard that died before acknowledging the stream's last
// operation. Enumeration stops early when fn returns false.
func (r *Resolver) EachDeltaCandidate(id entity.ID, fn func(other entity.ID, claimKey string) bool) {
	r.rlock()
	defer r.mu.RUnlock()
	if !r.isLive(id) {
		return
	}
	keys := r.blocks.Keys(id)
	for _, b := range r.blocks.DeltaBlocks(id).All() {
		for _, other := range b.S1 {
			// A candidate appears under every shared key; its claim key is
			// the smallest — the "first key wins" dedup of CompareIterator
			// and the shard claim filters alike.
			if fs, ok := firstSharedSorted(keys, r.blocks.Keys(other)); !ok || fs != b.Key {
				continue
			}
			if !fn(other, b.Key) {
				return
			}
		}
	}
}

// firstSharedSorted returns the smallest key present in both ascending-
// sorted distinct key sets.
func firstSharedSorted(a, b []string) (string, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i], true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return "", false
}

// MatchedWith returns the handles currently matched to id — its direct
// match-graph neighbors, ascending — reconciling any deferred
// meta-blocking work first. Nil when id is not live or matches nothing.
// This is the read the serving layer's same-as query rides.
func (r *Resolver) MatchedWith(id entity.ID) ([]entity.ID, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	if !r.isLive(id) {
		return nil, nil
	}
	return r.dyn.Graph().Neighbors(id), nil
}

// BootstrapSlot is one collection slot of a shipped shard state: the
// shard-local projection of the coordinator's replica. Live slots carry
// the description and its OWNED blocking keys (distinct, ascending);
// placeholder and dead slots are content-free.
type BootstrapSlot struct {
	Live   bool
	URI    string
	Source int
	Attrs  []entity.Attribute
	// Keys is the slot's owned blocking key set, exactly as the shard's
	// lens keyer would derive it — restore feeds it straight into the block
	// index without re-tokenizing.
	Keys []string
}

// BootstrapState is the full state transfer a coordinator ships a shard
// that cannot catch up from its own journal — typically one that lost its
// disk. It is the routed-stream analogue of a snapshot restore: slots,
// shard-owned match edges, counters and the acknowledged sequence number.
type BootstrapState struct {
	Slots []BootstrapSlot
	// Edges is the shard-owned slice of the global match graph: every edge
	// whose first shared blocking key this shard owns.
	Edges []graph.Edge
	// Inserts, Updates, Deletes mirror the global stream counters;
	// Comparisons is this shard's cumulative matcher-invocation count as
	// the coordinator last acknowledged it.
	Inserts, Updates, Deletes, Comparisons int64
	// Seq is the sequence number the shipped state is current through.
	Seq uint64
	// MetaDirty marks deferred meta-blocking work (live descriptions exist
	// whose pruning fate the next reconcile settles).
	MetaDirty bool
}

// Bootstrap loads a shipped shard state into a pristine resolver — one
// that has applied no operations — rebuilding the collection, block index,
// match graph and, under meta-blocking, the weighted blocking graph (by
// observing the index rebuild, which reproduces the incrementally
// maintained statistics exactly: they are pure functions of the final
// membership). A durable resolver checkpoints immediately afterwards, so
// the shipped state is locally recoverable from the first moment.
func (r *Resolver) Bootstrap(bs BootstrapState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	if r.coll.Len() != 0 || r.lastSeq != 0 || r.stats.Inserts+r.stats.Updates+r.stats.Deletes != 0 {
		return fmt.Errorf("incremental: bootstrap requires a pristine resolver (have %d slots, %d ops)", r.coll.Len(), r.stats.Inserts+r.stats.Updates+r.stats.Deletes)
	}
	// A bootstrap is a wholesale state load the mark helpers do not shadow;
	// the checkpoint below (and any before the next one) must be full.
	if r.snapTrack != nil {
		r.snapTrack.full = true
	}
	for i, sl := range bs.Slots {
		d := &entity.Description{ID: -1}
		if sl.Live {
			d.URI, d.Source = sl.URI, sl.Source
			d.Attrs = append(d.Attrs, sl.Attrs...)
		}
		id, err := r.coll.Add(d)
		if err != nil {
			return fmt.Errorf("incremental: bootstrap slot %d: %w", i, err)
		}
		if id != i {
			return fmt.Errorf("incremental: bootstrap slot %d restored at handle %d", i, id)
		}
		r.live = append(r.live, sl.Live)
		if !sl.Live {
			continue
		}
		r.liveCount++
		if d.URI != "" {
			if _, dup := r.byURI[d.URI]; dup {
				return fmt.Errorf("incremental: bootstrap lists URI %q twice", d.URI)
			}
			r.byURI[d.URI] = id
		}
		// The weighted graph (when configured) observes these adds, so the
		// shipped membership rebuilds its statistics in the same pass.
		if err := r.blocks.Add(id, d.Source, sl.Keys); err != nil {
			return fmt.Errorf("incremental: bootstrap slot %d: %w", i, err)
		}
	}
	edges := make([]graph.Edge, 0, len(bs.Edges))
	for _, e := range bs.Edges {
		if !r.isLive(e.A) || !r.isLive(e.B) {
			return fmt.Errorf("incremental: bootstrap edge (%d,%d) references a dead slot", e.A, e.B)
		}
		edges = append(edges, graph.Edge{A: e.A, B: e.B, Weight: 1})
	}
	r.dyn = graph.DynamicFromEdges(edges)
	r.stats.Inserts, r.stats.Updates, r.stats.Deletes = bs.Inserts, bs.Updates, bs.Deletes
	r.stats.Comparisons = bs.Comparisons
	r.lastSeq = bs.Seq
	if r.weighted != nil {
		r.metaDirty = bs.MetaDirty
		// The shipped edges become the kept baseline the delta pruner is
		// seeded from at the first reconcile: every baseline pair is
		// re-examined then, so shipped edges whose pairs are no longer kept
		// (or no longer co-occur at all) are retired exactly like the old
		// full-rescan reconcile's global stale-edge sweep did. The shipped
		// weight (1) is provisional; the first reconcile rewrites every
		// re-fated pair's weight from the rebuilt statistics.
		r.lastKept = append([]graph.Edge(nil), edges...)
	}
	// A durable resolver has no journal records to reproduce this state from
	// — it arrived as one transfer — so checkpoint it immediately; recovery
	// then anchors on the snapshot like any other restart.
	if _, durable := r.journal.(*walJournal); durable {
		if err := r.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}
