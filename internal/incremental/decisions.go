package incremental

import (
	"context"
	"fmt"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/matching"
)

// DecisionCache caches pairwise matcher decisions for the deferred
// meta-blocking reconcile. A decision is a pure function of the two
// descriptions' attributes (enforced at resolver construction), so it
// stays valid until one endpoint is updated or deleted — Invalidate
// drops every decision involving that endpoint. The single-node resolver
// and the sharded coordinator share this type (and ReconcileKept below),
// so their reconcile semantics cannot drift apart.
type DecisionCache struct {
	m map[entity.ID]map[entity.ID]bool
}

// NewDecisionCache returns an empty decision cache.
func NewDecisionCache() *DecisionCache {
	return &DecisionCache{m: make(map[entity.ID]map[entity.ID]bool)}
}

// Get returns the cached decision for {a, b} and whether one exists.
func (c *DecisionCache) Get(a, b entity.ID) (sim, ok bool) {
	sim, ok = c.m[a][b]
	return sim, ok
}

// Set records the decision for {a, b} in both directions, so invalidation
// by either endpoint finds it.
func (c *DecisionCache) Set(a, b entity.ID, sim bool) {
	for _, d := range [2][2]entity.ID{{a, b}, {b, a}} {
		m, ok := c.m[d[0]]
		if !ok {
			m = make(map[entity.ID]bool)
			c.m[d[0]] = m
		}
		m[d[1]] = sim
	}
}

// Invalidate drops every cached decision involving id — its content is
// about to change or disappear. Cost is proportional to id's cached
// degree. It returns the partners whose decisions were dropped (in
// unspecified order), so a change tracker can record exactly the pairs
// that left the cache.
func (c *DecisionCache) Invalidate(id entity.ID) []entity.ID {
	partners := make([]entity.ID, 0, len(c.m[id]))
	for other := range c.m[id] {
		partners = append(partners, other)
		m := c.m[other]
		delete(m, id)
		if len(m) == 0 {
			delete(c.m, other)
		}
	}
	delete(c.m, id)
	return partners
}

// Delete drops the single cached decision for {a, b}, if present — the
// delta-snapshot restore path's removal primitive.
func (c *DecisionCache) Delete(a, b entity.ID) {
	for _, d := range [2][2]entity.ID{{a, b}, {b, a}} {
		m := c.m[d[0]]
		delete(m, d[1])
		if len(m) == 0 {
			delete(c.m, d[0])
		}
	}
}

// Each enumerates the cached decisions as canonical (a < b) pairs, in
// unspecified order, stopping early if fn returns false.
func (c *DecisionCache) Each(fn func(a, b entity.ID, sim bool) bool) {
	for a, m := range c.m {
		for b, sim := range m {
			if a < b && !fn(a, b, sim) {
				return
			}
		}
	}
}

// Decision is one pairwise matcher decision in exchange form — the unit a
// coordinator journal persists so a recovered decision cache re-evaluates
// exactly the pairs an uninterrupted run would.
type Decision struct {
	A, B  entity.ID
	Match bool
}

// ReconcileKept is the shared core of the deferred meta-blocking
// reconcile: given the edges a pruning pass kept, it evaluates the kept
// pairs that miss the decision cache through the matcher pool (over coll,
// in kept order), folds the fresh decisions into the cache, and makes dyn
// equal {kept ∧ similar}. It returns the number of matcher invocations —
// exactly the pairs that were not already decided — and those freshly
// evaluated decisions in kept order, for callers that journal them. On
// context cancellation nothing is cached and dyn is untouched, so the
// deferred work simply stays pending and a retry restores consistency.
func ReconcileKept(ctx context.Context, coll *entity.Collection, m *matching.Matcher, workers int, cache *DecisionCache, dyn *graph.Dynamic, kept []graph.Edge) (int64, []Decision, error) {
	var fresh []entity.Pair
	for _, e := range kept {
		if _, ok := cache.Get(e.A, e.B); !ok {
			fresh = append(fresh, entity.NewPair(e.A, e.B))
		}
	}
	comparisons, decided, err := evaluateFresh(ctx, coll, m, workers, cache, fresh)
	if err != nil {
		return 0, nil, err
	}

	// Make the match graph equal {kept ∧ similar}: retire edges whose pair
	// fell out of the pruned graph, add edges that newly entered it.
	desired := make(map[entity.Pair]struct{}, len(kept))
	for _, e := range kept {
		if sim, _ := cache.Get(e.A, e.B); sim {
			desired[entity.NewPair(e.A, e.B)] = struct{}{}
		}
	}
	var stale []entity.Pair
	dyn.Graph().EachEdge(func(e graph.Edge) bool {
		p := entity.NewPair(e.A, e.B)
		if _, keep := desired[p]; !keep {
			stale = append(stale, p)
		}
		return true
	})
	dyn.RemoveEdges(stale)
	for p := range desired {
		dyn.AddEdge(p.A, p.B, 1)
	}
	return comparisons, decided, nil
}

// evaluateFresh runs the cache-missing pairs through the matcher pool and
// folds the decisions into the cache, in input order. It is the evaluation
// core shared by ReconcileKept (the coordinator's full-set reconcile) and
// the single-node resolver's delta reconcile (meta.go), so the two paths
// cannot drift in matcher semantics or comparison accounting. On error
// (context cancellation mid-frontier) nothing is cached and nothing
// counted — the match state stays exactly what it was before the call, the
// work stays pending, and comparison counters sum completed reconciles
// only, keeping them equal to a batch run's count on replayed collections.
func evaluateFresh(ctx context.Context, coll *entity.Collection, m *matching.Matcher, workers int, cache *DecisionCache, fresh []entity.Pair) (int64, []Decision, error) {
	if len(fresh) == 0 {
		return 0, nil, nil
	}
	frontier := blocking.NewBlocks(entity.CleanClean)
	for _, p := range fresh {
		frontier.Add(&blocking.Block{
			Key: fmt.Sprintf("meta:%d-%d", p.A, p.B),
			S0:  []entity.ID{p.A},
			S1:  []entity.ID{p.B},
		})
	}
	// Small frontiers skip the worker pool, mirroring index().
	if frontier.TotalComparisons() < sequentialDeltaMax {
		workers = 1
	}
	out, err := matching.ResolveBlocksParallel(ctx, coll, frontier, m, workers)
	if err != nil {
		return 0, nil, err
	}
	decided := make([]Decision, 0, len(fresh))
	for _, p := range fresh {
		sim := out.Matches.Contains(p.A, p.B)
		cache.Set(p.A, p.B, sim)
		decided = append(decided, Decision{A: p.A, B: p.B, Match: sim})
	}
	return out.Comparisons, decided, nil
}
