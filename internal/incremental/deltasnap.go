// Chained delta snapshots: the compaction path that serializes only what
// changed since the previous checkpoint.
//
// A full snapshot (snapshot.go) costs O(collection + weighted graph) per
// checkpoint, which dominates the write path of a long-lived durable
// resolver whose per-cadence churn is a tiny fraction of its state. A delta
// snapshot instead serializes the slots, match-graph edges, weighted-graph
// statistics, cached decisions and kept-baseline entries DIRTIED since the
// last checkpoint, plus the absolute counters, and names its parent
// snapshot. Recovery walks the parent chain from the newest snapshot back
// to its full anchor, restores the anchor, applies the deltas in order and
// replays the WAL tail — bit-identical to restoring a full snapshot taken
// at the same point.
//
// The chain is crash-safe by construction: a snapshot's WAL segments are
// only removed after the snapshot is durable, and snapshots below the
// chain's full anchor are the only ones ever deleted (Journal.Checkpoint's
// keepFrom), so every link the newest snapshot names is on disk whenever
// recovery runs. Every DurableOptions.RebaseEvery delta links the resolver
// rebases — writes a full snapshot — which bounds both recovery's chain
// walk and the disk the retained links occupy.
//
// Dirt is gathered by a snapTracker the resolver consults at every state
// mutation (nil for in-memory resolvers — the tracking is free unless the
// journal can use it). The weighted graph feeds it through its own change
// feed (metablocking.ChangeSet), everything else through the mark helpers
// below, called at the same sites that mutate the state they shadow.
package incremental

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"

	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/metablocking"
	"entityres/internal/wal"
)

// deltaSnapshotFormat marks a chained delta snapshot; full snapshots keep
// snapshotFormat. The two share one file namespace and are told apart by
// the leading format field.
const deltaSnapshotFormat = 2

// DefaultRebaseEvery is the delta-chain length at which a checkpoint
// rebases into a full snapshot when DurableOptions.RebaseEvery is zero.
const DefaultRebaseEvery = 4

// snapTracker accumulates the state dirtied since the last checkpoint — the
// exact contents of the next delta snapshot. Only durable resolvers carry
// one (OpenResolver creates it); every mark helper is a no-op without it.
type snapTracker struct {
	// slots are the collection slots whose content, liveness or blocking
	// keys changed (new slots included).
	slots map[entity.ID]struct{}
	// pairs are the match-graph edges whose presence may have changed.
	pairs map[entity.Pair]struct{}
	// cache are the decision-cache entries set or invalidated.
	cache map[entity.Pair]struct{}
	// kept are the kept-baseline entries re-fated by a reconcile.
	kept map[entity.Pair]struct{}
	// wg is the weighted graph's change feed (nil without meta-blocking).
	wg *metablocking.ChangeSet
	// full forces the next checkpoint to be a full snapshot: set when the
	// tracker's dirt no longer covers the divergence from the parent
	// snapshot (a bootstrap's wholesale state load, or a checkpoint that
	// drained the tracker and then failed to persist).
	full bool
}

func newSnapTracker() *snapTracker {
	return &snapTracker{
		slots: make(map[entity.ID]struct{}),
		pairs: make(map[entity.Pair]struct{}),
		cache: make(map[entity.Pair]struct{}),
		kept:  make(map[entity.Pair]struct{}),
	}
}

// reset clears the slot/pair/cache/kept dirt after it was rendered into a
// snapshot (the weighted-graph feed drains through DeltaSince / Reset).
func (t *snapTracker) reset() {
	t.slots = make(map[entity.ID]struct{})
	t.pairs = make(map[entity.Pair]struct{})
	t.cache = make(map[entity.Pair]struct{})
	t.kept = make(map[entity.Pair]struct{})
}

// markSlot records that slot id's content, liveness or keys changed.
// Callers hold r.mu.
func (r *Resolver) markSlot(id entity.ID) {
	if r.snapTrack != nil {
		r.snapTrack.slots[id] = struct{}{}
	}
}

// markMatchEdge records that the match edge {a, b} may have appeared or
// disappeared. Callers hold r.mu.
func (r *Resolver) markMatchEdge(a, b entity.ID) {
	if r.snapTrack != nil {
		r.snapTrack.pairs[entity.NewPair(a, b)] = struct{}{}
	}
}

// markCachePair records that the decision-cache entry for p was set or
// dropped. Callers hold r.mu.
func (r *Resolver) markCachePair(p entity.Pair) {
	if r.snapTrack != nil {
		r.snapTrack.cache[p] = struct{}{}
	}
}

// markKeptPair records that p's kept-baseline entry was re-fated. Callers
// hold r.mu.
func (r *Resolver) markKeptPair(p entity.Pair) {
	if r.snapTrack != nil {
		r.snapTrack.kept[p] = struct{}{}
	}
}

// deltaSnapshotJSON is the wire form of one chain link. Slot, edge, cache
// and kept entries carry CURRENT values (a removal is an entry whose
// presence flag is false); counters, the last record and the deferred-work
// flag are absolute — they are one value each, not worth differencing.
type deltaSnapshotJSON struct {
	Format int `json:"format"`
	// Parent is the snapshot this delta extends — the WAL segment sequence
	// its file is named after.
	Parent  uint64 `json:"parent"`
	Kind    int    `json:"kind"`
	Blocker string `json:"blocker"`
	Matcher string `json:"matcher"`
	Meta    string `json:"meta,omitempty"`

	// SlotCount is the collection's slot count at delta time; restore
	// verifies it so a missing new-slot entry fails loudly.
	SlotCount int             `json:"slot_count"`
	Slots     []deltaSlotJSON `json:"slots,omitempty"`
	Matches   []edgeDeltaJSON `json:"matches,omitempty"`

	Stats      statsJSON   `json:"stats"`
	LastRecord *recordJSON `json:"last_record,omitempty"`
	LastSeq    uint64      `json:"last_seq,omitempty"`

	Weighted  *metablocking.WeightedGraphDelta `json:"weighted,omitempty"`
	SimCache  []cacheDeltaJSON                 `json:"sim_cache,omitempty"`
	Kept      []keptDeltaJSON                  `json:"kept,omitempty"`
	MetaDirty bool                             `json:"meta_dirty,omitempty"`
}

// deltaSlotJSON is one dirty collection slot: its handle plus the same
// current-state fields a full snapshot stores per slot.
type deltaSlotJSON struct {
	ID int `json:"id"`
	slotJSON
}

type edgeDeltaJSON struct {
	A       entity.ID `json:"a"`
	B       entity.ID `json:"b"`
	Present bool      `json:"present,omitempty"`
}

type cacheDeltaJSON struct {
	A       entity.ID `json:"a"`
	B       entity.ID `json:"b"`
	Present bool      `json:"present,omitempty"`
	Match   bool      `json:"match,omitempty"`
}

type keptDeltaJSON struct {
	A    entity.ID `json:"a"`
	B    entity.ID `json:"b"`
	Kept bool      `json:"kept,omitempty"`
	W    float64   `json:"w,omitempty"`
}

// encodeDeltaSnapshot renders the tracked dirt as one chain link extending
// r.snapParent and drains the tracker. It returns the payload plus the
// serialized slot and weighted-pair counts (the compaction-cost counters).
// Callers hold r.mu and have checked that a parent exists and the tracker
// is not forcing a full snapshot.
func (r *Resolver) encodeDeltaSnapshot() ([]byte, int, int, error) {
	t := r.snapTrack
	s := deltaSnapshotJSON{
		Format:    deltaSnapshotFormat,
		Parent:    r.snapParent,
		Kind:      int(r.cfg.Kind),
		Blocker:   r.cfg.Blocker.Name(),
		Matcher:   r.cfg.Matcher.Name(),
		Meta:      r.fingerprintMeta(),
		SlotCount: r.coll.Len(),
		Stats: statsJSON{
			Inserts:     r.stats.Inserts,
			Updates:     r.stats.Updates,
			Deletes:     r.stats.Deletes,
			Comparisons: r.stats.Comparisons,
		},
		LastSeq: r.lastSeq,
	}
	for _, id := range sortedIDs(t.slots) {
		if int(id) >= r.coll.Len() {
			return nil, 0, 0, fmt.Errorf("incremental: delta snapshot tracked slot %d beyond the collection (%d slots)", id, r.coll.Len())
		}
		sl := slotJSON{Live: r.live[id]}
		if sl.Live {
			d := r.coll.Get(id)
			sl.URI, sl.Source = d.URI, d.Source
			for _, a := range d.Attrs {
				sl.Attrs = append(sl.Attrs, attrJSON{Name: a.Name, Value: a.Value})
			}
			sl.Keys = r.blocks.Keys(id)
		}
		s.Slots = append(s.Slots, deltaSlotJSON{ID: int(id), slotJSON: sl})
	}
	g := r.dyn.Graph()
	for _, p := range sortedPairs(t.pairs) {
		_, present := g.Weight(p.A, p.B)
		s.Matches = append(s.Matches, edgeDeltaJSON{A: p.A, B: p.B, Present: present})
	}
	if r.lastRecord != nil {
		j := recordToJSON(*r.lastRecord)
		s.LastRecord = &j
	}
	if r.weighted != nil {
		s.Weighted = r.weighted.DeltaSince(t.wg)
		for _, p := range sortedPairs(t.cache) {
			sim, ok := r.simCache.Get(p.A, p.B)
			s.SimCache = append(s.SimCache, cacheDeltaJSON{A: p.A, B: p.B, Present: ok, Match: sim})
		}
		for _, p := range sortedPairs(t.kept) {
			w, kept := lookupKept(r.lastKept, p)
			s.Kept = append(s.Kept, keptDeltaJSON{A: p.A, B: p.B, Kept: kept, W: w})
		}
		s.MetaDirty = r.metaDirty
	}
	t.reset()
	payload, err := json.Marshal(&s)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("incremental: %w", err)
	}
	pairs := 0
	if s.Weighted != nil {
		pairs = len(s.Weighted.Pairs)
	}
	return payload, len(s.Slots), pairs, nil
}

func sortedIDs(m map[entity.ID]struct{}) []entity.ID {
	out := make([]entity.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedPairs(m map[entity.Pair]struct{}) []entity.Pair {
	out := make([]entity.Pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// lookupKept finds p in the (A, B)-sorted kept baseline.
func lookupKept(kept []graph.Edge, p entity.Pair) (float64, bool) {
	i := sort.Search(len(kept), func(i int) bool {
		e := kept[i]
		return e.A > p.A || (e.A == p.A && e.B >= p.B)
	})
	if i < len(kept) && kept[i].A == p.A && kept[i].B == p.B {
		return kept[i].Weight, true
	}
	return 0, false
}

// applyDeltaSnapshot advances a restored baseline by one chain link.
// Called by OpenResolver between restoreFull and finishRestore, on an
// unpublished resolver whose weighted graph is NOT yet observing the block
// index — the slot transitions below rebuild membership without
// double-counting statistics the delta carries explicitly.
func (r *Resolver) applyDeltaSnapshot(payload []byte) error {
	var s deltaSnapshotJSON
	if err := json.Unmarshal(payload, &s); err != nil {
		return fmt.Errorf("incremental: decoding delta snapshot: %w", err)
	}
	if s.Format != deltaSnapshotFormat {
		return fmt.Errorf("incremental: delta snapshot format %d is not supported (want %d)", s.Format, deltaSnapshotFormat)
	}
	if entity.Kind(s.Kind) != r.cfg.Kind {
		return fmt.Errorf("incremental: delta snapshot resolves %v collections, resolver configured for %v", entity.Kind(s.Kind), r.cfg.Kind)
	}
	if s.Blocker != r.cfg.Blocker.Name() {
		return fmt.Errorf("incremental: delta snapshot was written under blocker %q, resolver configured with %q", s.Blocker, r.cfg.Blocker.Name())
	}
	if s.Matcher != r.cfg.Matcher.Name() {
		return fmt.Errorf("incremental: delta snapshot was written under matcher %q, resolver configured with %q", s.Matcher, r.cfg.Matcher.Name())
	}
	if meta := r.fingerprintMeta(); s.Meta != meta {
		return fmt.Errorf("incremental: delta snapshot was written under meta-blocking %q, resolver configured with %q", s.Meta, meta)
	}

	// Dirty slots, handle-ascending. New slots (id == current length) are
	// appended as dead placeholders first, then transitioned like any other
	// slot; every slot created since the parent snapshot is in the delta, so
	// the ascending walk never leaves a gap.
	prev := -1
	for i, dsl := range s.Slots {
		if dsl.ID <= prev {
			return fmt.Errorf("incremental: delta snapshot slots out of order at entry %d", i)
		}
		prev = dsl.ID
		if dsl.ID > r.coll.Len() {
			return fmt.Errorf("incremental: delta snapshot skips slots %d..%d — a chain link is missing state", r.coll.Len(), dsl.ID-1)
		}
		id := entity.ID(dsl.ID)
		if dsl.ID == r.coll.Len() {
			r.coll.MustAdd(&entity.Description{ID: -1})
			r.live = append(r.live, false)
		}
		// Transition: clear the slot's previous live state, then install the
		// delta's. Old URIs are unmapped before new ones are claimed; a URI
		// can only ever move to a HIGHER slot between snapshots (inserts
		// validate global uniqueness, so the old holder died first), and the
		// ascending walk clears it before the new holder appears.
		if r.live[id] {
			old := r.coll.Get(id)
			if old.URI != "" {
				delete(r.byURI, old.URI)
			}
			r.blocks.Remove(id)
			r.liveCount--
		}
		d := r.coll.Get(id)
		d.URI, d.Source, d.Attrs = "", 0, nil
		r.live[id] = dsl.Live
		if !dsl.Live {
			continue
		}
		d.URI, d.Source = dsl.URI, dsl.Source
		for _, a := range dsl.Attrs {
			d.Attrs = append(d.Attrs, entity.Attribute{Name: a.Name, Value: a.Value})
		}
		r.liveCount++
		if d.URI != "" {
			if _, dup := r.byURI[d.URI]; dup {
				return fmt.Errorf("incremental: delta snapshot maps URI %q to two live slots", d.URI)
			}
			r.byURI[d.URI] = id
		}
		if err := r.blocks.Add(id, d.Source, dsl.Keys); err != nil {
			return fmt.Errorf("incremental: delta snapshot slot %d: %w", dsl.ID, err)
		}
	}
	if r.coll.Len() != s.SlotCount {
		return fmt.Errorf("incremental: delta snapshot expects %d slots, chain produced %d", s.SlotCount, r.coll.Len())
	}

	for _, e := range s.Matches {
		if e.Present {
			if !r.isLive(e.A) || !r.isLive(e.B) {
				return fmt.Errorf("incremental: delta snapshot match (%d,%d) references a dead slot", e.A, e.B)
			}
			r.dyn.AddEdge(e.A, e.B, 1)
		} else {
			r.dyn.RemoveEdge(e.A, e.B)
		}
	}

	if r.cfg.Meta != nil {
		if s.Weighted != nil {
			if err := r.weighted.ApplyDelta(s.Weighted); err != nil {
				return fmt.Errorf("incremental: delta snapshot weighted graph: %w", err)
			}
		}
		for _, c := range s.SimCache {
			if c.Present {
				r.simCache.Set(c.A, c.B, c.Match)
			} else {
				r.simCache.Delete(c.A, c.B)
			}
		}
		if len(s.Kept) > 0 {
			r.lastKept = applyKeptDeltas(r.lastKept, s.Kept)
		}
		r.metaDirty = s.MetaDirty
	}

	if s.LastRecord != nil {
		rec, err := recordFromJSON(*s.LastRecord)
		if err != nil {
			return fmt.Errorf("incremental: delta snapshot last record: %w", err)
		}
		r.lastRecord = &rec
	}
	r.stats.Inserts = s.Stats.Inserts
	r.stats.Updates = s.Stats.Updates
	r.stats.Deletes = s.Stats.Deletes
	r.stats.Comparisons = s.Stats.Comparisons
	r.lastSeq = s.LastSeq
	return nil
}

// applyKeptDeltas merges re-fated entries into the (A, B)-sorted kept
// baseline and returns it re-sorted.
func applyKeptDeltas(kept []graph.Edge, deltas []keptDeltaJSON) []graph.Edge {
	m := make(map[entity.Pair]float64, len(kept))
	for _, e := range kept {
		m[entity.NewPair(e.A, e.B)] = e.Weight
	}
	for _, d := range deltas {
		p := entity.NewPair(d.A, d.B)
		if d.Kept {
			m[p] = d.W
		} else {
			delete(m, p)
		}
	}
	out := make([]graph.Edge, 0, len(m))
	for p, w := range m {
		out = append(out, graph.Edge{A: p.A, B: p.B, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// loadSnapshotChain reads the snapshot chain ending at tip: the full
// anchor's payload and sequence, plus the delta payloads NEWEST FIRST
// (callers apply them in reverse). Every link the chain names must be on
// disk — Checkpoint never removes a snapshot a newer one still depends on,
// so a missing link means the directory was tampered with and recovery
// refuses rather than restore a silently wrong state.
func loadSnapshotChain(dir string, tip uint64) (full []byte, fullSeq uint64, deltas [][]byte, err error) {
	seq := tip
	for {
		payload, err := wal.ReadFileFramed(filepath.Join(dir, snapshotFile(seq)))
		if err != nil {
			return nil, 0, nil, fmt.Errorf("incremental: reading snapshot chain link %d: %w", seq, err)
		}
		var head struct {
			Format int    `json:"format"`
			Parent uint64 `json:"parent"`
		}
		if err := json.Unmarshal(payload, &head); err != nil {
			return nil, 0, nil, fmt.Errorf("incremental: decoding snapshot chain link %d: %w", seq, err)
		}
		switch head.Format {
		case snapshotFormat:
			return payload, seq, deltas, nil
		case deltaSnapshotFormat:
			if head.Parent == 0 || head.Parent >= seq {
				return nil, 0, nil, fmt.Errorf("incremental: delta snapshot %d names parent %d — the chain is corrupt", seq, head.Parent)
			}
			deltas = append(deltas, payload)
			seq = head.Parent
		default:
			return nil, 0, nil, fmt.Errorf("incremental: snapshot %d has unsupported format %d", seq, head.Format)
		}
	}
}
