package incremental_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/wal"
)

// durableConfig is the baseline durable configuration the unit tests open
// resolvers with: token blocking, Jaccard matching, fast (unsynced) WAL.
func durableConfig() incremental.Config {
	return incremental.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Durable: incremental.DurableOptions{NoSync: true},
	}
}

// desc builds a small description.
func desc(uri, name string) *entity.Description {
	return entity.NewDescription(uri).Add("name", name)
}

func TestOpenResolverFreshThenReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	ctx := context.Background()

	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovery().Recovered {
		t.Fatal("fresh directory reported recovered state")
	}
	// Mirror every op on an in-memory resolver: the recovered one must be
	// indistinguishable from it.
	mem, err := incremental.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := []*entity.Description{
		desc("u:a", "alice smith"),
		desc("u:b", "alice smith"),
		desc("u:c", "carol jones"),
		desc("u:d", "carol jones"),
	}
	for _, d := range ops {
		idD, err := r.Insert(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		idM, err := mem.Insert(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		if idD != idM {
			t.Fatalf("durable resolver assigned handle %d, in-memory %d", idD, idM)
		}
	}
	if err := r.Update(ctx, 2, []entity.Attribute{{Name: "name", Value: "alice smith"}}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Update(ctx, 2, []entity.Attribute{{Name: "name", Value: "alice smith"}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := mem.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if !got.Recovery().Recovered {
		t.Fatal("reopen did not report recovered state")
	}
	assertSameResolverState(t, got, mem)
	if id, ok := got.Lookup("u:b"); !ok || id != 1 {
		t.Fatalf("recovered Lookup(u:b) = %d,%v", id, ok)
	}
	// The recovered resolver keeps resolving.
	if _, err := got.Insert(ctx, desc("u:e", "carol jones")); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Insert(ctx, desc("u:e", "carol jones")); err != nil {
		t.Fatal(err)
	}
	assertSameResolverState(t, got, mem)
}

// assertSameResolverState compares every observable of two resolvers.
func assertSameResolverState(t *testing.T, got, want *incremental.Resolver) {
	t.Helper()
	if g, w := renderState(mustMatches(t, got)), renderState(mustMatches(t, want)); g != w {
		t.Fatalf("match state diverges:\ngot  %s\nwant %s", g, w)
	}
	gs, ws := mustStats(t, got), mustStats(t, want)
	if gs != ws {
		t.Fatalf("stats diverge:\ngot  %+v\nwant %+v", gs, ws)
	}
	if g, w := renderBlocks(got.Blocks()), renderBlocks(want.Blocks()); g != w {
		t.Fatalf("blocks diverge:\ngot  %s\nwant %s", g, w)
	}
}

// renderBlocks renders a block collection byte-exactly: keys and member
// lists in collection order.
func renderBlocks(bs *blocking.Blocks) string {
	var b strings.Builder
	for _, bl := range bs.All() {
		fmt.Fprintf(&b, "%s|%v|%v\n", bl.Key, bl.S0, bl.S1)
	}
	return b.String()
}

func TestOpenResolverConfigFingerprint(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(context.Background(), desc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	mismatches := map[string]func(c *incremental.Config){
		"blocker": func(c *incremental.Config) { c.Blocker = &blocking.StandardBlocking{} },
		"matcher": func(c *incremental.Config) {
			c.Matcher = &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.9}
		},
		"meta": func(c *incremental.Config) {
			c.Meta = &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}
		},
	}
	for name, mutate := range mismatches {
		c := durableConfig()
		mutate(&c)
		if _, err := incremental.OpenResolver(dir, c); err == nil {
			t.Errorf("reopen with a different %s silently succeeded", name)
		}
	}
	// The matching configuration still opens.
	r, err = incremental.OpenResolver(dir, durableConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

func TestCompactionBoundsReplayAndPrunesFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	cfg.Durable.SnapshotEvery = 10
	// Delta chaining retains the whole snapshot chain back to its full
	// anchor; this test pins the single-file pruning contract of the
	// chain-disabled configuration (chain retention is covered by the
	// chained-snapshot tests).
	cfg.Durable.RebaseEvery = -1
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const ops = 35
	for i := 0; i < ops; i++ {
		if _, err := r.Insert(ctx, desc(fmt.Sprintf("u:%d", i), fmt.Sprintf("name %d", i%7))); err != nil {
			t.Fatal(err)
		}
	}
	// No graceful close: recovery must work from the files alone.
	r.Abandon()
	got, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := got.Recovery()
	if !rec.Recovered {
		t.Fatal("not recovered")
	}
	// 35 ops at a cadence of 10: snapshots after op 10, 20, 30 — the tail
	// holds exactly 5 records, and that is all recovery may replay.
	if rec.ReplayedRecords != ops%10 {
		t.Fatalf("recovery replayed %d records, want %d (the tail since the last snapshot)", rec.ReplayedRecords, ops%10)
	}
	if rec.SnapshotSegment == 0 {
		t.Fatal("recovery found no snapshot")
	}
	if st := mustStats(t, got); st.Inserts != ops || st.Live != ops {
		t.Fatalf("recovered stats %+v", st)
	}
	// Compaction pruned: exactly one snapshot file, no segment older than it.
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files = %v (%v)", snaps, err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	snapSeq := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(snaps[0]), "snapshot-"), ".snap")
	for _, s := range segs {
		segSeq := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(s), "wal-"), ".seg")
		if segSeq < snapSeq { // zero-padded fixed width: string order = numeric order
			t.Fatalf("segment %s predates snapshot %s — compaction did not prune it", s, snaps[0])
		}
	}
	// An explicit Compact drops the tail to zero for the next recovery.
	if err := got.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if n := again.Recovery().ReplayedRecords; n != 0 {
		t.Fatalf("replayed %d records after an explicit Compact", n)
	}
}

func TestCancelledInsertRollsBackJournalAndBurnsSlot(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Insert(ctx, desc("u:a", "alice smith")); err != nil {
		t.Fatal(err)
	}
	// A cancelled context aborts delta matching mid-insert: the operation
	// fails, its journal record is retracted, and the slot is burned.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := r.Insert(cancelled, desc("u:b", "alice smith")); err == nil {
		t.Fatal("insert under a cancelled context succeeded")
	}
	// The retry lands on a later handle because slot 1 is burned.
	id, err := r.Insert(ctx, desc("u:b", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("post-rollback insert got handle %d, want 2 (slot 1 burned)", id)
	}
	wantStats := mustStats(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery reproduces the burned slot from the handle gap, so handles,
	// stats and matches all line up.
	got, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if id, ok := got.Lookup("u:b"); !ok || id != 2 {
		t.Fatalf("recovered Lookup(u:b) = %d,%v, want 2,true", id, ok)
	}
	if st := mustStats(t, got); st != wantStats {
		t.Fatalf("recovered stats %+v, want %+v", st, wantStats)
	}
	if n := mustMatches(t, got).Len(); n != 1 {
		t.Fatalf("recovered %d matches, want 1", n)
	}
}

func TestClosedResolverRejectsMutationKeepsReads(t *testing.T) {
	dir := t.TempDir()
	r, err := incremental.OpenResolver(dir, durableConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Insert(ctx, desc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, desc("u:b", "bob")); err == nil {
		t.Fatal("insert after Close succeeded")
	}
	if err := r.Update(ctx, 0, nil); err == nil {
		t.Fatal("update after Close succeeded")
	}
	if err := r.Delete(0); err == nil {
		t.Fatal("delete after Close succeeded")
	}
	if err := r.Compact(); err == nil {
		t.Fatal("compact after Close succeeded")
	}
	if st := mustStats(t, r); st.Live != 1 {
		t.Fatalf("reads broken after Close: %+v", st)
	}
}

// TestValidationFailuresAreNotJournaled: operations rejected before the
// journal step leave no trace in the log, so recovery is never asked to
// replay an op that cannot apply.
func TestValidationFailuresAreNotJournaled(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Insert(ctx, desc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, desc("u:a", "dup")); err == nil {
		t.Fatal("duplicate URI accepted")
	}
	if _, err := r.Insert(ctx, nil); err == nil {
		t.Fatal("nil insert accepted")
	}
	if err := r.Update(ctx, 99, nil); err == nil {
		t.Fatal("update of unknown handle accepted")
	}
	if err := r.Delete(99); err == nil {
		t.Fatal("delete of unknown handle accepted")
	}
	// Source validation happens post-journal and rolls back.
	if _, err := r.Insert(ctx, &entity.Description{ID: -1, URI: "u:bad", Source: 7}); err == nil {
		t.Fatal("invalid source accepted")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatalf("recovery after rejected ops: %v", err)
	}
	defer got.Close()
	if st := mustStats(t, got); st.Inserts != 1 || st.Live != 1 {
		t.Fatalf("recovered stats %+v, want exactly the one acknowledged insert", st)
	}
}

func TestRecoveryWithLiveMetaBlocking(t *testing.T) {
	cfg := durableConfig()
	cfg.Meta = &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}
	cfg.Durable.SnapshotEvery = 4
	dir := t.TempDir()
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	memCfg := cfg
	mem, err := incremental.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	names := []string{"alice smith", "alice smith", "bob brown", "bob brown", "carol jones", "alice smith jr"}
	for i, n := range names {
		d := desc(fmt.Sprintf("u:%d", i), n)
		if _, err := r.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	// Read mid-stream so both resolvers reconcile (and cache decisions) at
	// the same point, then keep mutating.
	if g, w := renderState(mustMatches(t, r)), renderState(mustMatches(t, mem)); g != w {
		t.Fatalf("pre-crash meta state diverges\ngot  %s\nwant %s", g, w)
	}
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := mem.Delete(1); err != nil {
		t.Fatal(err)
	}
	// Hard stop: no Close, deferred meta work pending (metaDirty).
	r.Abandon()
	got, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	assertSameResolverState(t, got, mem)
	if g, w := renderBlocks(mustRestructuredBlocks(t, got)), renderBlocks(mustRestructuredBlocks(t, mem)); g != w {
		t.Fatalf("restructured blocks diverge:\ngot  %s\nwant %s", g, w)
	}
}

// TestSnapshotFileCorruptionDetected: a flipped byte in the snapshot fails
// recovery loudly instead of restoring silently-wrong state.
func TestSnapshotFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(context.Background(), desc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot files: %v", err)
	}
	raw, err := os.ReadFile(snaps[len(snaps)-1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(snaps[len(snaps)-1], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := incremental.OpenResolver(dir, cfg); err == nil {
		t.Fatal("recovery accepted a corrupt snapshot")
	}
}

// TestInMemoryResolverJournalIsFree: New resolvers run on the no-op
// journal — Compact and Close are cheap no-ops and Recovery is zero.
func TestInMemoryResolverJournalIsFree(t *testing.T) {
	cfg := durableConfig()
	cfg.Durable = incremental.DurableOptions{}
	r, err := incremental.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(context.Background(), desc("u:a", "alice")); err != nil {
		t.Fatal(err)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if rec := r.Recovery(); rec != (incremental.RecoveryInfo{}) {
		t.Fatalf("in-memory resolver reports recovery %+v", rec)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(context.Background(), desc("u:b", "bob")); err == nil {
		t.Fatal("insert after Close succeeded")
	}
}

// TestCorruptJournalRecordsFailRecovery: a record that frames correctly
// (valid CRC) but cannot replay — garbage JSON, an unknown op, a target
// that is not live — fails recovery loudly.
func TestCorruptJournalRecordsFailRecovery(t *testing.T) {
	cases := map[string]string{
		"garbage json":     `{"op":`,
		"unknown op":       `{"op":"merge","id":0}`,
		"update not live":  `{"op":"update","id":42}`,
		"delete not live":  `{"op":"delete","id":42}`,
		"insert handle lo": `{"op":"insert","id":0,"uri":"u:z"}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig()
			r, err := incremental.OpenResolver(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Insert(context.Background(), desc("u:a", "alice")); err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			// Append the poison record straight to the WAL.
			l, err := wal.Open(dir, wal.Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append([]byte(payload)); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := incremental.OpenResolver(dir, cfg); err == nil {
				t.Fatalf("recovery accepted a %s record", name)
			}
		})
	}
}

// TestMalformedSnapshotFailsRecovery: snapshots that frame correctly but
// cannot restore — wrong format version, wrong kind, invalid slots, match
// edges into dead slots, a meta configuration without its weighted graph —
// fail recovery loudly.
func TestMalformedSnapshotFailsRecovery(t *testing.T) {
	blockerNm := (&blocking.TokenBlocking{}).Name()
	matcherNm := (&matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}).Name()
	head := fmt.Sprintf(`"blocker":%q,"matcher":%q`, blockerNm, matcherNm)
	stats := `"stats":{"inserts":1,"updates":0,"deletes":0,"comparisons":0}`
	cases := map[string]string{
		"bad json":     `{`,
		"bad format":   `{"format":99}`,
		"wrong kind":   fmt.Sprintf(`{"format":1,"kind":1,%s,%s}`, head, stats),
		"dead match":   fmt.Sprintf(`{"format":1,"kind":0,%s,"slots":[{"live":true,"uri":"u:a"}],"matches":[[0,1]],%s}`, head, stats),
		"bad source":   fmt.Sprintf(`{"format":1,"kind":0,%s,"slots":[{"live":true,"uri":"u:a","source":7}],%s}`, head, stats),
		"dup uri":      fmt.Sprintf(`{"format":1,"kind":0,%s,"slots":[{"live":true,"uri":"u:a"},{"live":true,"uri":"u:a"}],%s}`, head, stats),
		"meta missing": fmt.Sprintf(`{"format":1,"kind":0,%s,"meta":"meta(CBS,WEP)",%s}`, head, stats),
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig()
			if name == "meta missing" {
				cfg.Meta = &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}
			}
			r, err := incremental.OpenResolver(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
			if err != nil || len(snaps) != 1 {
				t.Fatalf("snapshot files = %v (%v)", snaps, err)
			}
			if err := wal.WriteFileAtomic(snaps[0], []byte(payload)); err != nil {
				t.Fatal(err)
			}
			if _, err := incremental.OpenResolver(dir, cfg); err == nil {
				t.Fatalf("recovery accepted a %s snapshot", name)
			}
		})
	}
}

// TestCancelledUpdateRollsBackCompletely: a failed Update must leave no
// trace — previous attributes, block membership and matches restored, the
// journal record retracted — so memory, the journal and crash recovery
// agree on exactly the acknowledged operations (the review found the old
// "live but unresolved" halfway state diverging from its own journal).
func TestCancelledUpdateRollsBackCompletely(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Insert(ctx, desc("u:a", "bob jones")); err != nil {
		t.Fatal(err)
	}
	idB, err := r.Insert(ctx, desc("u:b", "bob jones"))
	if err != nil {
		t.Fatal(err)
	}
	preStats := mustStats(t, r)
	preMatches := renderState(mustMatches(t, r))
	preBlocks := renderBlocks(r.Blocks())

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := r.Update(cancelled, idB, []entity.Attribute{{Name: "name", Value: "someone else"}}); err == nil {
		t.Fatal("cancelled update succeeded")
	}
	// In memory: exact pre-op state, including b's old attributes.
	if st := mustStats(t, r); st != preStats {
		t.Fatalf("stats after rollback %+v, want %+v", st, preStats)
	}
	if got := renderState(mustMatches(t, r)); got != preMatches {
		t.Fatalf("matches after rollback:\n%s\nwant:\n%s", got, preMatches)
	}
	if got := renderBlocks(r.Blocks()); got != preBlocks {
		t.Fatalf("blocks after rollback:\n%s\nwant:\n%s", got, preBlocks)
	}
	if d, ok := r.Get(idB); !ok || d.Attrs[0].Value != "bob jones" {
		t.Fatalf("description after rollback: %v", d)
	}
	// A later acknowledged op still resolves against the restored b.
	if _, err := r.Insert(ctx, desc("u:c", "bob jones")); err != nil {
		t.Fatal(err)
	}
	wantStats := mustStats(t, r)
	wantMatches := renderState(mustMatches(t, r))
	// Crash and recover: the journal never saw the failed update, and the
	// replayed state matches memory bit for bit.
	r.Abandon()
	got, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if st := mustStats(t, got); st != wantStats {
		t.Fatalf("recovered stats %+v, want %+v", st, wantStats)
	}
	if g := renderState(mustMatches(t, got)); g != wantMatches {
		t.Fatalf("recovered matches:\n%s\nwant:\n%s", g, wantMatches)
	}
}
