package incremental

import (
	"encoding/json"
	"fmt"
	"sort"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/metablocking"
)

// The resolver snapshot codec: the full serialized state a compaction
// checkpoint writes and crash recovery restores. The snapshot stores
// everything recovery would otherwise have to recompute —
//
//   - every collection slot in handle order (dead slots as placeholders, so
//     recovered handles equal the original run's), with each live
//     description's attributes AND its indexed blocking keys, so restore
//     never re-runs the blocker's tokenization;
//   - the match graph's edges (graph.Dynamic's snapshot codec);
//   - with meta-blocking, the weighted blocking graph's co-occurrence
//     statistics (metablocking's snapshot codec — far cheaper to reload
//     than to re-derive from posting lists), the cached matcher decisions
//     (so recovered reconciles re-evaluate exactly the pairs an
//     uninterrupted resolver would, keeping comparison counters bit-exact),
//     the last pruning result and the deferred-work flag;
//   - the operation and comparison counters.
//
// A configuration fingerprint (kind, blocker, matcher, meta-blocker names)
// guards restore: state written under one configuration refuses to load
// under another instead of silently diverging from the differential
// contract.

// snapshotFormat versions the snapshot layout.
const snapshotFormat = 1

type snapshotJSON struct {
	Format  int    `json:"format"`
	Kind    int    `json:"kind"`
	Blocker string `json:"blocker"`
	Matcher string `json:"matcher"`
	Meta    string `json:"meta,omitempty"`

	Slots   []slotJSON     `json:"slots,omitempty"`
	Stats   statsJSON      `json:"stats"`
	Matches [][2]entity.ID `json:"matches,omitempty"`
	// LastRecord is the most recently applied operation, preserved across
	// compaction so a sharded fan-out-tear donor (Resolver.LastRecord) can
	// always produce it even when the WAL tail is empty.
	LastRecord *recordJSON `json:"last_record,omitempty"`
	// LastSeq is the acknowledged routed-stream sequence number (routed.go);
	// 0 for resolvers fed through the direct methods.
	LastSeq uint64 `json:"last_seq,omitempty"`

	Weighted  *metablocking.WeightedGraphSnapshot `json:"weighted,omitempty"`
	SimCache  []simCacheJSON                      `json:"sim_cache,omitempty"`
	LastKept  []keptJSON                          `json:"last_kept,omitempty"`
	MetaDirty bool                                `json:"meta_dirty,omitempty"`
}

// slotJSON is one collection slot in handle order. Dead slots (deleted
// descriptions, burned inserts) serialize as the zero value: their content
// is unobservable, only the handle they occupy matters.
type slotJSON struct {
	Live   bool       `json:"live,omitempty"`
	URI    string     `json:"uri,omitempty"`
	Source int        `json:"source,omitempty"`
	Attrs  []attrJSON `json:"attrs,omitempty"`
	// Keys is the slot's distinct sorted blocking key set, exactly as
	// indexed — restore feeds it straight back into the block index.
	Keys []string `json:"keys,omitempty"`
}

type statsJSON struct {
	Inserts     int64 `json:"inserts"`
	Updates     int64 `json:"updates"`
	Deletes     int64 `json:"deletes"`
	Comparisons int64 `json:"comparisons"`
}

type simCacheJSON struct {
	A     entity.ID `json:"a"`
	B     entity.ID `json:"b"`
	Match bool      `json:"match,omitempty"`
}

type keptJSON struct {
	A entity.ID `json:"a"`
	B entity.ID `json:"b"`
	W float64   `json:"w"`
}

// Abandon hard-stops the resolver, simulating a process crash: the
// journal's file handles — and with them the WAL directory lock, which the
// kernel would release when a crashed process exits — are dropped with
// none of the graceful shutdown work (no checkpoint, no reconcile, no
// final compaction). The on-disk state is exactly what the journaled
// operations left there, which is what crash recovery must reopen from.
// It is the kill -9 of the shard lifecycle: sharded.Resolver.StopShard
// hard-stops a shard with it, and the crash test suites reopen abandoned
// directories with OpenResolver. Abandoning an in-memory resolver only
// disables further mutation.
func (r *Resolver) Abandon() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.journal.(*walJournal); ok {
		// Close releases the fds and the flock without writing any record;
		// the fsync it performs only hardens bytes the journal already
		// acknowledged, so the logical file content is untouched.
		j.log.Close()
	}
	r.broken = errClosed
}

// fingerprintMeta renders the configured meta-blocker for the snapshot
// fingerprint ("" without one).
func (r *Resolver) fingerprintMeta() string {
	if r.cfg.Meta == nil {
		return ""
	}
	return r.cfg.Meta.Name()
}

// encodeSnapshot serializes the resolver's full state and — like the delta
// encoder — drains the snapshot tracker: the changes it accumulated are
// subsumed by the full image. It returns the payload plus the serialized
// slot and weighted-pair counts (the compaction-cost counters). Callers
// hold r.mu.
func (r *Resolver) encodeSnapshot() ([]byte, int, int, error) {
	s := snapshotJSON{
		Format:  snapshotFormat,
		Kind:    int(r.cfg.Kind),
		Blocker: r.cfg.Blocker.Name(),
		Matcher: r.cfg.Matcher.Name(),
		Meta:    r.fingerprintMeta(),
		Stats: statsJSON{
			Inserts:     r.stats.Inserts,
			Updates:     r.stats.Updates,
			Deletes:     r.stats.Deletes,
			Comparisons: r.stats.Comparisons,
		},
	}
	for _, d := range r.coll.All() {
		sl := slotJSON{Live: r.live[d.ID]}
		if sl.Live {
			sl.URI, sl.Source = d.URI, d.Source
			for _, a := range d.Attrs {
				sl.Attrs = append(sl.Attrs, attrJSON{Name: a.Name, Value: a.Value})
			}
			sl.Keys = r.blocks.Keys(d.ID)
		}
		s.Slots = append(s.Slots, sl)
	}
	for _, e := range r.dyn.SnapshotEdges() {
		s.Matches = append(s.Matches, [2]entity.ID{e.A, e.B})
	}
	s.LastSeq = r.lastSeq
	if r.lastRecord != nil {
		j := recordToJSON(*r.lastRecord)
		s.LastRecord = &j
	}
	if r.weighted != nil {
		s.Weighted = r.weighted.Snapshot()
		s.SimCache = encodeSimCache(r.simCache)
		for _, e := range r.lastKept {
			s.LastKept = append(s.LastKept, keptJSON{A: e.A, B: e.B, W: e.Weight})
		}
		s.MetaDirty = r.metaDirty
	}
	if r.snapTrack != nil {
		r.snapTrack.reset()
		if r.snapTrack.wg != nil {
			r.snapTrack.wg.Reset()
		}
	}
	payload, err := json.Marshal(&s)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("incremental: %w", err)
	}
	pairs := 0
	if s.Weighted != nil {
		pairs = len(s.Weighted.Pairs)
	}
	return payload, len(s.Slots), pairs, nil
}

// encodeSimCache flattens the bidirectional decision cache into canonical
// (A < B) entries, sorted for a deterministic layout.
func encodeSimCache(cache *DecisionCache) []simCacheJSON {
	var out []simCacheJSON
	cache.Each(func(a, b entity.ID, sim bool) bool {
		out = append(out, simCacheJSON{A: a, B: b, Match: sim})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// restoreSnapshot loads a full snapshot into a freshly-constructed
// resolver and attaches the membership observer. Callers need not hold
// r.mu (the resolver is not yet published). OpenResolver restores a chain
// through restoreFull + applyDeltaSnapshot + finishRestore instead, so the
// delta links apply with the observer still detached.
func (r *Resolver) restoreSnapshot(payload []byte) error {
	if err := r.restoreFull(payload); err != nil {
		return err
	}
	r.finishRestore()
	return nil
}

// finishRestore attaches the restored weighted graph to the block index's
// membership feed — the last restore step, after every snapshot chain link
// has applied (the links carry the statistics deltas explicitly; observing
// during their membership rebuild would double-count).
func (r *Resolver) finishRestore() {
	if r.weighted != nil {
		r.blocks.Observe(r.weighted)
	}
}

// restoreFull loads a full snapshot WITHOUT attaching the membership
// observer; see restoreSnapshot.
func (r *Resolver) restoreFull(payload []byte) error {
	var s snapshotJSON
	if err := json.Unmarshal(payload, &s); err != nil {
		return fmt.Errorf("incremental: decoding snapshot: %w", err)
	}
	if s.Format != snapshotFormat {
		return fmt.Errorf("incremental: snapshot format %d is not supported (want %d)", s.Format, snapshotFormat)
	}
	// The configuration fingerprint: recovering under a different blocker,
	// matcher or meta-blocker would silently break the differential
	// contract, so refuse loudly instead.
	if entity.Kind(s.Kind) != r.cfg.Kind {
		return fmt.Errorf("incremental: snapshot resolves %v collections, resolver configured for %v", entity.Kind(s.Kind), r.cfg.Kind)
	}
	if s.Blocker != r.cfg.Blocker.Name() {
		return fmt.Errorf("incremental: snapshot was written under blocker %q, resolver configured with %q", s.Blocker, r.cfg.Blocker.Name())
	}
	if s.Matcher != r.cfg.Matcher.Name() {
		return fmt.Errorf("incremental: snapshot was written under matcher %q, resolver configured with %q", s.Matcher, r.cfg.Matcher.Name())
	}
	if meta := r.fingerprintMeta(); s.Meta != meta {
		return fmt.Errorf("incremental: snapshot was written under meta-blocking %q, resolver configured with %q", s.Meta, meta)
	}

	// Rebuild the collection slot-for-slot and the block index from the
	// stored key sets. The index is rebuilt WITHOUT observers so the
	// restored weighted graph (loaded whole below) is not double-counted;
	// it starts observing once membership is in place.
	blocks := blocking.NewBlockIndex(r.cfg.Kind)
	for i, sl := range s.Slots {
		d := &entity.Description{ID: -1}
		if sl.Live {
			d.URI, d.Source = sl.URI, sl.Source
			for _, a := range sl.Attrs {
				d.Attrs = append(d.Attrs, entity.Attribute{Name: a.Name, Value: a.Value})
			}
		}
		id, err := r.coll.Add(d)
		if err != nil {
			return fmt.Errorf("incremental: snapshot slot %d: %w", i, err)
		}
		if id != i {
			return fmt.Errorf("incremental: snapshot slot %d restored at handle %d", i, id)
		}
		r.live = append(r.live, sl.Live)
		if !sl.Live {
			continue
		}
		r.liveCount++
		if d.URI != "" {
			if _, dup := r.byURI[d.URI]; dup {
				return fmt.Errorf("incremental: snapshot lists URI %q twice", d.URI)
			}
			r.byURI[d.URI] = id
		}
		if err := blocks.Add(id, d.Source, sl.Keys); err != nil {
			return fmt.Errorf("incremental: snapshot slot %d: %w", i, err)
		}
	}
	r.blocks = blocks

	edges := make([]graph.Edge, 0, len(s.Matches))
	for _, m := range s.Matches {
		if !r.isLive(m[0]) || !r.isLive(m[1]) {
			return fmt.Errorf("incremental: snapshot match (%d,%d) references a dead slot", m[0], m[1])
		}
		edges = append(edges, graph.Edge{A: m[0], B: m[1], Weight: 1})
	}
	r.dyn = graph.DynamicFromEdges(edges)

	if r.cfg.Meta != nil {
		if s.Weighted == nil {
			return fmt.Errorf("incremental: snapshot lacks the weighted blocking graph the meta configuration requires")
		}
		wg, err := metablocking.WeightedGraphFromSnapshot(s.Weighted)
		if err != nil {
			return fmt.Errorf("incremental: %w", err)
		}
		if wg.Kind() != r.cfg.Kind {
			return fmt.Errorf("incremental: snapshot weighted graph resolves %v collections, resolver configured for %v", wg.Kind(), r.cfg.Kind)
		}
		r.weighted = wg
		r.simCache = NewDecisionCache()
		for _, e := range s.SimCache {
			r.simCache.Set(e.A, e.B, e.Match)
		}
		r.lastKept = r.lastKept[:0]
		for _, k := range s.LastKept {
			r.lastKept = append(r.lastKept, graph.Edge{A: k.A, B: k.B, Weight: k.W})
		}
		r.metaDirty = s.MetaDirty
	}

	if s.LastRecord != nil {
		rec, err := recordFromJSON(*s.LastRecord)
		if err != nil {
			return fmt.Errorf("incremental: snapshot last record: %w", err)
		}
		r.lastRecord = &rec
	}

	r.stats.Inserts = s.Stats.Inserts
	r.stats.Updates = s.Stats.Updates
	r.stats.Deletes = s.Stats.Deletes
	r.stats.Comparisons = s.Stats.Comparisons
	r.lastSeq = s.LastSeq
	return nil
}
