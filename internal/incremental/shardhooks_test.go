package incremental_test

import (
	"context"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// The sharding hooks on the single-node resolver: the DeltaFilter pair
// ownership rule and the non-reconciling coordinator accessors
// (Counters, MatchNeighbors, MatchEdges, MergeWeightedInto, EachSlot).

func hookConfig(filter func(d *entity.Description) func(key string, other *entity.Description) bool) incremental.Config {
	return incremental.Config{
		Kind:        entity.Dirty,
		Blocker:     &blocking.TokenBlocking{},
		Matcher:     &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		DeltaFilter: filter,
	}
}

func hookDesc(uri, name string) *entity.Description {
	return &entity.Description{ID: -1, URI: uri, Attrs: []entity.Attribute{{Name: "name", Value: name}}}
}

// TestDeltaFilterOwnership: a filter that claims every pair reproduces the
// unfiltered resolver exactly; a filter that claims none evaluates nothing;
// a first-shared-key filter (the sharded ownership rule) still counts every
// distinct pair exactly once.
func TestDeltaFilterOwnership(t *testing.T) {
	feed := func(r *incremental.Resolver) {
		t.Helper()
		ctx := context.Background()
		for _, d := range []*entity.Description{
			hookDesc("u:a", "alice smith berlin"),
			hookDesc("u:b", "alice smith berlin"),
			hookDesc("u:c", "carol jones paris"),
			hookDesc("u:d", "alice jones berlin"),
		} {
			if _, err := r.Insert(ctx, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	plain, err := incremental.New(hookConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	feed(plain)

	all, err := incremental.New(hookConfig(func(*entity.Description) func(string, *entity.Description) bool {
		return func(string, *entity.Description) bool { return true }
	}))
	if err != nil {
		t.Fatal(err)
	}
	feed(all)
	if ps, as := mustStats(t, plain), mustStats(t, all); ps != as {
		t.Fatalf("claim-everything filter diverges: %+v vs %+v", as, ps)
	}

	none, err := incremental.New(hookConfig(func(*entity.Description) func(string, *entity.Description) bool {
		return func(string, *entity.Description) bool { return false }
	}))
	if err != nil {
		t.Fatal(err)
	}
	feed(none)
	if st := mustStats(t, none); st.Comparisons != 0 || st.Matches != 0 {
		t.Fatalf("claim-nothing filter still evaluated pairs: %+v", st)
	}

	// The sharded ownership rule with a single owner (everything shares the
	// first key owner) must also equal the unfiltered run: each distinct
	// pair is claimed exactly once, under its first shared key.
	keyer := (&blocking.TokenBlocking{}).StreamKeyer()
	firstShared := func(a, b []string) (string, bool) {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] == b[j]:
				return a[i], true
			case a[i] < b[j]:
				i++
			default:
				j++
			}
		}
		return "", false
	}
	owned, err := incremental.New(hookConfig(func(d *entity.Description) func(string, *entity.Description) bool {
		dKeys := blocking.DistinctKeys(keyer(d))
		return func(key string, other *entity.Description) bool {
			first, ok := firstShared(dKeys, blocking.DistinctKeys(keyer(other)))
			return ok && first == key
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	feed(owned)
	if ps, os := mustStats(t, plain), mustStats(t, owned); ps != os {
		t.Fatalf("first-shared-key filter diverges: %+v vs %+v", os, ps)
	}
}

// TestCoordinatorAccessors: MatchNeighbors/MatchEdges mirror the match
// graph without reconciling, EachSlot walks dead and live slots in handle
// order with early stop, and Counters never reconciles deferred meta work.
func TestCoordinatorAccessors(t *testing.T) {
	r, err := incremental.New(hookConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := r.Insert(ctx, hookDesc("u:a", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Insert(ctx, hookDesc("u:b", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Insert(ctx, hookDesc("u:c", "carol jones"))
	if err != nil {
		t.Fatal(err)
	}
	if nb := r.MatchNeighbors(a); len(nb) != 1 || nb[0] != b {
		t.Fatalf("MatchNeighbors(%d) = %v, want [%d]", a, nb, b)
	}
	if nb := r.MatchNeighbors(c); len(nb) != 0 {
		t.Fatalf("MatchNeighbors(%d) = %v, want none", c, nb)
	}
	edges := r.MatchEdges()
	if len(edges) != 1 || edges[0].A != a || edges[0].B != b {
		t.Fatalf("MatchEdges = %v", edges)
	}
	if err := r.Delete(c); err != nil {
		t.Fatal(err)
	}
	var seen []entity.ID
	var liveness []bool
	r.EachSlot(func(id entity.ID, live bool, d *entity.Description) bool {
		seen = append(seen, id)
		liveness = append(liveness, live)
		return true
	})
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 || !liveness[0] || liveness[2] {
		t.Fatalf("EachSlot walked %v (live %v)", seen, liveness)
	}
	n := 0
	r.EachSlot(func(entity.ID, bool, *entity.Description) bool { n++; return false })
	if n != 1 {
		t.Fatalf("EachSlot ignored early stop: %d slots", n)
	}
	if st := r.Counters(); st.Inserts != 3 || st.Deletes != 1 || st.Live != 2 {
		t.Fatalf("Counters = %+v", st)
	}
}

// TestCountersAndMergeWithoutReconcile: under live meta-blocking, Counters
// and MergeWeightedInto must not trigger the deferred reconcile — that is
// what lets the sharded coordinator aggregate shard state without burning
// shard-local comparisons.
func TestCountersAndMergeWithoutReconcile(t *testing.T) {
	cfg := hookConfig(nil)
	cfg.Meta = &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}
	r, err := incremental.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, d := range []*entity.Description{hookDesc("u:a", "alice smith"), hookDesc("u:b", "alice smith")} {
		if _, err := r.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	// No read has happened: everything is deferred, and the accessors must
	// keep it that way.
	if st := r.Counters(); st.Comparisons != 0 || st.Inserts != 2 {
		t.Fatalf("Counters reconciled deferred meta work: %+v", st)
	}
	merged := metablocking.NewWeightedGraph(entity.Dirty)
	if !r.MergeWeightedInto(merged) {
		t.Fatal("MergeWeightedInto reported no weighted graph on a meta resolver")
	}
	if merged.NumPairs() != 1 {
		t.Fatalf("merged graph holds %d pairs, want 1", merged.NumPairs())
	}
	if st := r.Counters(); st.Comparisons != 0 {
		t.Fatalf("MergeWeightedInto reconciled deferred meta work: %+v", st)
	}
	// Stats DOES reconcile; afterwards the counters agree.
	if st := mustStats(t, r); st.Comparisons != 1 || st.Matches != 1 || st.CandidatePairs != 1 {
		t.Fatalf("Stats after reconcile = %+v", st)
	}
	// A non-meta resolver has nothing to merge.
	plain, err := incremental.New(hookConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if plain.MergeWeightedInto(metablocking.NewWeightedGraph(entity.Dirty)) {
		t.Fatal("MergeWeightedInto reported a weighted graph on a plain resolver")
	}
}

// TestLastRecord: the most recently applied operation is reported in
// journal-record form, survives snapshot compaction, and is absent on a
// fresh resolver.
func TestLastRecord(t *testing.T) {
	r, err := incremental.New(hookConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.LastRecord(); ok {
		t.Fatal("fresh resolver reports a last record")
	}
	ctx := context.Background()
	id, err := r.Insert(ctx, hookDesc("u:a", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := r.LastRecord()
	if !ok || rec.Kind != incremental.OpInsert || rec.ID != id || rec.URI != "u:a" {
		t.Fatalf("LastRecord after insert = %+v, %v", rec, ok)
	}
	if err := r.Delete(id); err != nil {
		t.Fatal(err)
	}
	if rec, _ := r.LastRecord(); rec.Kind != incremental.OpDelete || rec.ID != id {
		t.Fatalf("LastRecord after delete = %+v", rec)
	}

	// Durable: compaction folds the record into the snapshot, and a reopen
	// with an empty WAL tail still reports it — the fan-out-tear donor's
	// compaction-boundary guarantee.
	dir := t.TempDir()
	cfg := hookConfig(nil)
	cfg.Durable = incremental.DurableOptions{NoSync: true, SnapshotEvery: 1}
	pr, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uid, err := pr.Insert(ctx, hookDesc("u:b", "bob jones"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Update(ctx, uid, []entity.Attribute{{Name: "name", Value: "bob j"}}); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovery().ReplayedRecords != 0 {
		t.Fatalf("tail not empty: %d records", re.Recovery().ReplayedRecords)
	}
	if rec, ok := re.LastRecord(); !ok || rec.Kind != incremental.OpUpdate || rec.ID != uid {
		t.Fatalf("LastRecord after snapshot-only reopen = %+v, %v", rec, ok)
	}
}
