package incremental

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"entityres/internal/entity"
)

// OpKind enumerates streaming operations.
type OpKind int

const (
	// OpInsert adds a new description.
	OpInsert OpKind = iota
	// OpUpdate replaces the attributes of an existing description.
	OpUpdate
	// OpDelete removes an existing description.
	OpDelete
	// OpReconcile marks an effective deferred meta-blocking reconcile in a
	// durable resolver's journal. Reads mutate state under live
	// meta-blocking — matcher decisions are evaluated, cached and counted —
	// so the journal records them and recovery replays them, keeping
	// comparison counters and decision caches bit-exact across a crash.
	// OpReconcile never appears in URI operation logs (ReadOps rejects it).
	OpReconcile
	// OpBatch is a multi-op journal record: the sub-records of one
	// ApplyBatch call, journaled as a single append so crash recovery
	// replays the batch atomically or not at all. Like OpReconcile it is a
	// journal-only kind — it never appears in URI operation logs.
	OpBatch
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpReconcile:
		return "reconcile"
	case OpBatch:
		return "batch"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one streaming operation addressed by URI — the exchange form of the
// operation log that erctl watch replays. Handle-level callers use the
// Resolver methods directly.
type Op struct {
	Kind   OpKind
	URI    string
	Source int
	// Attrs is the full attribute set of the description (insert, update).
	Attrs []entity.Attribute
}

// Apply executes one URI-addressed operation on the resolver.
func (r *Resolver) Apply(ctx context.Context, op Op) error {
	switch op.Kind {
	case OpInsert:
		d := &entity.Description{ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
		_, err := r.Insert(ctx, d)
		return err
	case OpUpdate:
		id, ok := r.Lookup(op.URI)
		if !ok {
			return fmt.Errorf("incremental: update of unknown URI %q", op.URI)
		}
		return r.Update(ctx, id, op.Attrs)
	case OpDelete:
		id, ok := r.Lookup(op.URI)
		if !ok {
			return fmt.Errorf("incremental: delete of unknown URI %q", op.URI)
		}
		return r.Delete(id)
	default:
		return fmt.Errorf("incremental: unknown op kind %v", op.Kind)
	}
}

// opJSON is the wire form of an Op: one JSON object per line.
type opJSON struct {
	Op     string     `json:"op"`
	URI    string     `json:"uri"`
	Source int        `json:"source,omitempty"`
	Attrs  []attrJSON `json:"attrs,omitempty"`
}

type attrJSON struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// WriteOps serializes operations as JSON lines through a buffered writer.
// The buffer is flushed — and the flush error checked — on every return
// path, including an early return from a mid-stream encoding failure, so a
// sink error can never be silently swallowed by buffering.
func WriteOps(w io.Writer, ops []Op) (err error) {
	bw := bufio.NewWriter(w)
	defer func() {
		if ferr := bw.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("incremental: flushing ops: %w", ferr)
		}
	}()
	enc := json.NewEncoder(bw)
	for i, op := range ops {
		j := opJSON{Op: op.Kind.String(), URI: op.URI, Source: op.Source}
		for _, a := range op.Attrs {
			j.Attrs = append(j.Attrs, attrJSON{Name: a.Name, Value: a.Value})
		}
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("incremental: op %d: %w", i, err)
		}
	}
	return nil
}

// ReadOps parses a JSON-lines operation log. Blank lines and lines starting
// with '#' are skipped.
func ReadOps(r io.Reader) ([]Op, error) {
	var out []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var j opJSON
		if err := json.Unmarshal([]byte(line), &j); err != nil {
			return nil, fmt.Errorf("incremental: ops line %d: %w", lineNo, err)
		}
		op := Op{URI: j.URI, Source: j.Source}
		switch j.Op {
		case "insert":
			op.Kind = OpInsert
		case "update":
			op.Kind = OpUpdate
		case "delete":
			op.Kind = OpDelete
		default:
			return nil, fmt.Errorf("incremental: ops line %d: unknown op %q", lineNo, j.Op)
		}
		for _, a := range j.Attrs {
			op.Attrs = append(op.Attrs, entity.Attribute{Name: a.Name, Value: a.Value})
		}
		out = append(out, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("incremental: %w", err)
	}
	return out, nil
}
