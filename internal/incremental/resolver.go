// Package incremental implements streaming entity resolution: a long-lived
// Resolver that accepts a stream of insert, update and delete operations
// and maintains the resolved state — blocks, candidate comparisons, match
// graph and entity clusters — incrementally, touching only the state the
// operation reaches instead of re-running the pipeline from scratch.
//
// This is the paper's §III iteration model pushed to its serving-time
// conclusion: the comparison "queue" is re-derived per operation from the
// blocks the operation changed (the delta frontier of
// blocking.BlockIndex.DeltaBlocks), matcher execution reuses the batch
// engine's worker pool (matching.ResolveBlocksParallel over a streaming
// blocking.CompareIterator), and the match graph and its connected
// components are maintained by graph.Dynamic with targeted recomputation.
//
// The Resolver's contract is differential equivalence: after any sequence
// of operations, its match set and clusters are identical to a from-scratch
// batch core.Pipeline run over the surviving descriptions. That holds
// because (1) the blocker is a blocking.StreamableBlocker, so a
// description's keys depend only on itself, (2) the matcher similarity is a
// pure function of the two descriptions, and (3) every pair's co-occurrence
// and contents are unchanged by operations that touch neither endpoint.
// Corpus-dependent matchers (TFIDFCosine) and collection-dependent blockers
// are rejected by construction — their decisions shift with every arrival,
// which is incompatible with incremental maintenance (see ROADMAP open
// items for the re-weighting follow-on).
//
// With a MetaBlocker configured (stream-safe subset: WEP/WNP pruning of
// CBS/ECBS/JS weights), the resolver additionally maintains the weighted
// blocking graph incrementally — a metablocking.WeightedGraph observing
// the block index's membership changes — and prunes the comparison
// frontier through it before anything reaches the matcher pool: see
// meta.go. The differential contract extends to meta-blocking: at every
// read, matches and clusters equal a batch run with the same MetaBlocker
// over the surviving descriptions.
package incremental

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// Config parameterizes a Resolver.
type Config struct {
	// Kind is the resolution setting of the stream (default Dirty).
	Kind entity.Kind
	// Blocker derives the blocking keys (required). It must be a
	// collection-independent keyed blocker; see blocking.StreamableBlocker.
	Blocker blocking.StreamableBlocker
	// Matcher is the thresholded match decision (required). Its similarity
	// must depend only on the two descriptions — corpus-weighted measures
	// like TFIDFCosine drift as the corpus changes and are not supported.
	Matcher *matching.Matcher
	// Workers sizes the delta-matching worker pool; <= 0 means 1. The
	// match output is worker-count independent.
	Workers int
	// Meta, when set, prunes the comparison frontier through the live
	// weighted blocking graph before it reaches the matcher. Only the
	// stream-safe subset is accepted — WEP or WNP pruning of CBS, ECBS or
	// JS weights (metablocking.MetaBlocker.ValidateStreaming); EJS, ARCS,
	// CEP and CNP are batch-only and rejected with a specific error.
	Meta *metablocking.MetaBlocker
	// Durable tunes the WAL-backed journal of a resolver opened with
	// OpenResolver — segment rotation size, snapshot-compaction cadence and
	// fsync policy. New ignores it: in-memory resolvers run on the no-op
	// journal.
	Durable DurableOptions
	// DeltaFilter, when set, restricts delta matching to the candidate
	// pairs the filter claims for this resolver. It is invoked once per
	// operation with the operated-on description d and returns the claim
	// function for d's frontier: a candidate `other` suggested under
	// blocking key `key` is evaluated only when claim(key, other) returns
	// true — the two-level shape lets the filter derive d's state once and
	// memoize per-candidate work across d's keys. The sharded coordinator
	// (package sharded) uses it to assign every cross-shard candidate pair
	// to exactly one shard — the owner of the pair's first shared blocking
	// key — so the shard comparison counts sum to the single-node
	// resolver's count bit for bit. The filter must be a deterministic pure
	// function of the descriptions' current attributes and must not retain
	// them; it is not captured by snapshots, so a resolver recovered by
	// OpenResolver must be configured with an identical filter or replay
	// diverges. The claim function is only used until filterDelta returns,
	// from one goroutine. Nil evaluates every suggested pair (the
	// single-node behavior).
	DeltaFilter func(d *entity.Description) func(key string, other *entity.Description) bool
}

// Stats summarizes the work a resolver has performed.
type Stats struct {
	// Ops counts applied operations by kind.
	Inserts, Updates, Deletes int64
	// Comparisons counts matcher invocations across all operations.
	Comparisons int64
	// Live is the number of live descriptions.
	Live int
	// Matches is the number of current match pairs.
	Matches int
	// Clusters is the number of current non-singleton entity clusters.
	Clusters int
	// CandidatePairs is the number of distinct co-occurring pairs in the
	// live weighted blocking graph, and KeptPairs the number that survived
	// the latest pruning pass — their ratio is the live comparisons-saved
	// measure of meta-blocking. Both are zero without a Meta configuration.
	CandidatePairs, KeptPairs int
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("ops=%d/%d/%d live=%d comparisons=%d matches=%d clusters=%d",
		s.Inserts, s.Updates, s.Deletes, s.Live, s.Comparisons, s.Matches, s.Clusters)
}

// Resolver is a long-lived streaming entity resolver. All methods are safe
// for concurrent use: mutating operations are serialized internally, reads
// run concurrently under a shared lock (see the mu field), and a read
// racing a write observes either the full pre-op or the full post-op state,
// never a partial one.
type Resolver struct {
	cfg   Config
	keyer blocking.KeyFunc

	// journal persists every operation before it is applied (see
	// journal.go). New installs the no-op journal; OpenResolver the
	// WAL-backed one.
	journal Journal
	// snapEvery > 0 compacts the journal every snapEvery operations;
	// sinceSnap counts operations since the last checkpoint.
	snapEvery int
	sinceSnap int
	// snapTrack accumulates the state dirtied since the last checkpoint —
	// the contents of the next delta snapshot (deltasnap.go); nil for
	// in-memory resolvers. snapParent is the newest durable snapshot's
	// sequence (the next delta's parent; 0 before any), chainAnchor the
	// chain's full snapshot and chainLen the delta links since it.
	snapTrack   *snapTracker
	snapParent  uint64
	chainAnchor uint64
	chainLen    int
	// recovery describes what OpenResolver restored; lastRecord is the
	// most recently applied operation in journal-record form (kept across
	// snapshots, so a fan-out-tear donor never loses it to compaction —
	// see LastRecord).
	recovery   RecoveryInfo
	lastRecord *Record
	// broken, once set, fails every further mutating operation: the
	// resolver was closed, or a journal rollback failed and the log no
	// longer mirrors memory.
	broken error

	// mu is a reader/writer lock: mutating operations hold it exclusively,
	// reads share it. Reads that must reconcile deferred meta-blocking work
	// first follow the reconcile-then-share discipline of lockShared; plain
	// reads take the read lock directly (rlock). Every read-side method is
	// pure under the shared lock — the block index, dynamic match graph and
	// weighted graph maintain their derived state eagerly on the write path,
	// so concurrent readers never mutate.
	mu sync.RWMutex
	// readLocks counts shared-lock acquisitions across the read surface and
	// sharedReads the read operations served entirely under the shared lock
	// (without paying a reconcile themselves) — the scaling evidence Perf
	// folds into PerfCounters. Atomics: incremented while holding only the
	// read lock.
	readLocks   atomic.Int64
	sharedReads atomic.Int64
	// coll holds every description ever inserted, at its internal ID
	// (slot). Deleted slots keep their tombstone description so the slot
	// space stays dense for the matcher's Get path; live tracks liveness
	// and liveCount the number of true entries.
	coll      *entity.Collection
	live      []bool
	liveCount int
	// byURI maps the URI of each live description to its slot.
	byURI map[string]entity.ID

	blocks *blocking.BlockIndex
	dyn    *graph.Dynamic

	// lastSeq is the sequence number of the last applied routed-stream
	// record (routed.go); 0 for resolvers fed through the direct methods.
	lastSeq uint64

	// Live meta-blocking state (nil / unused without cfg.Meta): the
	// incrementally weighted blocking graph, the cached pairwise matcher
	// decisions, the edges retained by the latest pruning pass, the delta
	// pruner re-deriving fates proportionally to the changes (created at
	// first reconcile, seeded from lastKept), and the dirty flag driving
	// the deferred reconcile (see meta.go).
	weighted  *metablocking.WeightedGraph
	simCache  *DecisionCache
	lastKept  []graph.Edge
	pruner    *metablocking.DeltaPruner
	metaDirty bool

	stats Stats
	perf  PerfCounters
}

// New validates the configuration and returns an empty resolver.
func New(cfg Config) (*Resolver, error) {
	if cfg.Blocker == nil {
		return nil, fmt.Errorf("incremental: resolver requires a streamable Blocker")
	}
	if _, refines := cfg.Blocker.(blocking.BlockRefiner); refines {
		return nil, fmt.Errorf("incremental: blocker %q refines its block collection globally and cannot stream", cfg.Blocker.Name())
	}
	if cfg.Matcher == nil {
		return nil, fmt.Errorf("incremental: resolver requires a Matcher")
	}
	if _, corpus := cfg.Matcher.Sim.(*matching.TFIDFCosine); corpus {
		return nil, fmt.Errorf("incremental: matcher %q depends on corpus statistics and cannot stream", cfg.Matcher.Sim.Name())
	}
	if cfg.Meta != nil {
		if err := cfg.Meta.ValidateStreaming(); err != nil {
			return nil, fmt.Errorf("incremental: %w", err)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	r := &Resolver{
		cfg:     cfg,
		keyer:   cfg.Blocker.StreamKeyer(),
		journal: nopJournal{},
		coll:    entity.NewCollection(cfg.Kind),
		byURI:   make(map[string]entity.ID),
		blocks:  blocking.NewBlockIndex(cfg.Kind),
		dyn:     graph.NewDynamic(),
	}
	if cfg.Meta != nil {
		// The weighted blocking graph rides the block index's membership
		// notifications, so every Add/Remove below keeps it current.
		r.weighted = metablocking.NewWeightedGraph(cfg.Kind)
		r.blocks.Observe(r.weighted)
		r.simCache = NewDecisionCache()
	}
	return r, nil
}

// Kind returns the resolution setting of the stream.
func (r *Resolver) Kind() entity.Kind { return r.cfg.Kind }

// Insert adds a new description and resolves it against its delta frontier:
// only the pairs its blocking keys suggest are compared. The description is
// cloned; the caller keeps ownership of d. It returns the internal handle
// of the description. Non-empty URIs must be unique across live
// descriptions. The operation is journaled before it is applied; a failed
// apply retracts the journal record, so the journal always holds exactly
// the acknowledged operations.
func (r *Resolver) Insert(ctx context.Context, d *entity.Description) (entity.ID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return -1, r.broken
	}
	if d == nil {
		return -1, fmt.Errorf("incremental: insert of nil description")
	}
	if d.URI != "" {
		if _, taken := r.byURI[d.URI]; taken {
			return -1, fmt.Errorf("incremental: URI %q already live", d.URI)
		}
	}
	// The next collection slot is deterministic, so the record can carry
	// the handle the apply below will assign.
	rec := Record{Kind: OpInsert, ID: r.coll.Len(), URI: d.URI, Source: d.Source, Attrs: d.Attrs}
	if err := r.journal.Record(rec); err != nil {
		return -1, err
	}
	r.perf.JournalAppends++
	id, err := r.applyInsert(ctx, d)
	if err != nil {
		r.retractRecord()
		return -1, err
	}
	return id, r.maybeCompact()
}

// applyInsert is Insert's state mutation, shared with journal replay.
// Callers hold r.mu and have validated the description.
func (r *Resolver) applyInsert(ctx context.Context, d *entity.Description) (entity.ID, error) {
	cp := d.Clone()
	id, err := r.coll.Add(cp)
	if err != nil {
		return -1, fmt.Errorf("incremental: %w", err)
	}
	// The new slot is snapshot dirt whether the insert lands or burns.
	r.markSlot(id)
	r.live = append(r.live, true)
	if cp.URI != "" {
		r.byURI[cp.URI] = id
	}
	if err := r.index(ctx, id); err != nil {
		// Roll the insert back to a tombstone: the slot is burned but the
		// resolved state is exactly what it was before the operation.
		r.live[id] = false
		if cp.URI != "" {
			delete(r.byURI, cp.URI)
		}
		return -1, err
	}
	r.liveCount++
	r.stats.Inserts++
	r.lastRecord = &Record{Kind: OpInsert, ID: id, URI: cp.URI, Source: cp.Source, Attrs: cp.Attrs}
	return id, nil
}

// Update replaces the attributes of the live description with the given
// handle and re-resolves it: its old matches are retired, its block
// membership is re-keyed, and only pairs in the new delta frontier are
// compared. The source of a description is immutable. If the context is
// cancelled mid-operation the update is rolled back entirely — previous
// attributes, block membership and matches restored — and its journal
// record retracted, so memory, journal and crash recovery keep agreeing on
// exactly the acknowledged operations.
func (r *Resolver) Update(ctx context.Context, id entity.ID, attrs []entity.Attribute) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	if !r.isLive(id) {
		return fmt.Errorf("incremental: update of unknown description %d", id)
	}
	rec := Record{Kind: OpUpdate, ID: id, Attrs: attrs}
	if err := r.journal.Record(rec); err != nil {
		return err
	}
	r.perf.JournalAppends++
	if err := r.applyUpdate(ctx, id, attrs); err != nil {
		r.retractRecord()
		return err
	}
	return r.maybeCompact()
}

// applyUpdate is Update's state mutation, shared with journal replay.
// Callers hold r.mu and have checked liveness.
func (r *Resolver) applyUpdate(ctx context.Context, id entity.ID, attrs []entity.Attribute) error {
	// Capture what retire destroys, so a failed re-index (cancellation
	// inside delta matching — only reachable without meta-blocking, whose
	// deferred path never matches here) can restore the exact pre-op state.
	// The old key slice stays valid after the index drops its map entry.
	d := r.coll.Get(id)
	oldAttrs := d.Attrs
	oldKeys := r.blocks.Keys(id)
	oldEdges := r.dyn.Graph().Neighbors(id)
	r.markSlot(id)
	r.retire(id)
	d.Attrs = append([]entity.Attribute(nil), attrs...)
	if err := r.index(ctx, id); err != nil {
		d.Attrs = oldAttrs
		if aerr := r.blocks.Add(id, d.Source, oldKeys); aerr != nil {
			// Cannot happen for a just-retired live description; if it ever
			// does, memory no longer matches the journal — stop mutating.
			r.broken = fmt.Errorf("%w: update rollback failed: %v", ErrBroken, aerr)
			return err
		}
		for _, nb := range oldEdges {
			r.dyn.AddEdge(id, nb, 1)
			r.markMatchEdge(id, nb)
		}
		return err
	}
	r.stats.Updates++
	r.lastRecord = &Record{Kind: OpUpdate, ID: id, Attrs: d.Attrs}
	return nil
}

// Delete removes the live description with the given handle: its blocks
// shed the member, its match edges disappear, and its cluster is split by
// targeted recomputation. No comparisons are executed.
func (r *Resolver) Delete(id entity.ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	if !r.isLive(id) {
		return fmt.Errorf("incremental: delete of unknown description %d", id)
	}
	if err := r.journal.Record(Record{Kind: OpDelete, ID: id}); err != nil {
		return err
	}
	r.perf.JournalAppends++
	r.applyDelete(id)
	return r.maybeCompact()
}

// applyDelete is Delete's state mutation, shared with journal replay; it
// cannot fail. Callers hold r.mu and have checked liveness.
func (r *Resolver) applyDelete(id entity.ID) {
	r.markSlot(id)
	r.retire(id)
	d := r.coll.Get(id)
	if d.URI != "" {
		delete(r.byURI, d.URI)
	}
	r.live[id] = false
	r.liveCount--
	r.stats.Deletes++
	r.lastRecord = &Record{Kind: OpDelete, ID: id}
}

// ApplyBatch applies a batch of insert, update and delete records as one
// amortized operation: one lock acquisition, one journal append carrying
// the whole batch (one fsync instead of N — crash recovery replays the
// batch atomically or not at all), and, under live meta-blocking, one
// merged graph delta for the next read's reconcile to prune instead of N
// per-op deltas. The resolved state after ApplyBatch is bit-identical to
// applying the same records one at a time through Insert, Update and
// Delete.
//
// Records are validated up front against the sequential state the batch
// builds — later records see earlier ones, so a batch may insert a
// description and update or delete it — and any invalid record rejects
// the whole batch before anything is journaled or applied. Updates and
// deletes address their target by handle, or by URI when ID is negative;
// the resolved handles (and the handles assigned to inserts) are written
// back into recs. The caller's context gates admission only: once the
// batch is journaled it applies to completion, mirroring the sharded
// coordinator's admission rule, so journal and memory cannot split inside
// a batch. An empty batch is a no-op.
func (r *Resolver) ApplyBatch(ctx context.Context, recs []Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	if len(recs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("incremental: batch admission: %w", err)
	}
	if err := r.validateBatch(recs); err != nil {
		return err
	}
	batch := Record{Kind: OpBatch, Batch: make([]Record, len(recs))}
	for i, rec := range recs {
		rec.Attrs = append([]entity.Attribute(nil), rec.Attrs...)
		rec.Batch = nil
		batch.Batch[i] = rec
	}
	if err := r.journal.Record(batch); err != nil {
		return err
	}
	r.perf.JournalAppends++
	for i := range batch.Batch {
		if err := r.applyBatchRecord(&batch.Batch[i]); err != nil {
			if i == 0 {
				// Nothing applied yet — the single append retracts cleanly.
				r.retractRecord()
				return err
			}
			// A mid-batch failure cannot be rolled back op by op: the journal
			// holds the whole batch while memory holds a prefix. Validation
			// makes this unreachable; if it ever happens, refuse further
			// mutation rather than let the divergence reach a snapshot.
			r.broken = fmt.Errorf("%w: batch record %d failed mid-apply: %v", ErrBroken, i, err)
			return r.broken
		}
	}
	r.lastRecord = &batch
	return r.maybeCompact()
}

// validateBatch checks every record of a batch against the sequential
// state the batch will build, resolving URI-addressed updates and deletes
// and assigning insert handles into recs. Nothing is mutated; any error
// rejects the whole batch. Callers hold r.mu.
func (r *Resolver) validateBatch(recs []Record) error {
	err := PlanBatch(r.cfg.Kind, r.coll.Len(),
		func(uri string) (entity.ID, bool) { id, ok := r.byURI[uri]; return id, ok },
		r.isLive,
		func(id entity.ID) string { return r.coll.Get(id).URI },
		recs)
	if err != nil {
		return fmt.Errorf("incremental: %w", err)
	}
	return nil
}

// PlanBatch validates a batch of insert, update and delete records against
// the sequential state the batch will build over a committed base — the
// shared admission check of ApplyBatch and the sharded coordinator's batch
// fan-out, so the deployment forms cannot drift on what a valid batch is.
// The base is abstract: kind is the stream's resolution setting, next the
// first unused handle, lookup resolves a live URI, isLive reports a
// committed slot's liveness and uriOf its URI. Later records see earlier
// ones (a batch may insert a description and then update or delete it),
// resolved handles — and the handles assigned to inserts — are written back
// into recs, and any invalid record rejects the whole batch. Errors carry
// no package prefix; callers wrap.
func PlanBatch(kind entity.Kind, next entity.ID, lookup func(string) (entity.ID, bool), isLive func(entity.ID) bool, uriOf func(entity.ID) string, recs []Record) error {
	// Overlays over the committed state: URIs the batch has bound or freed
	// so far, slots whose liveness it has changed, and the URIs of its own
	// inserts (for a later delete to free).
	nextID := next
	bound := make(map[string]entity.ID)
	freed := make(map[string]bool)
	liveOv := make(map[entity.ID]bool)
	slotURI := make(map[entity.ID]string)
	lookupOv := func(uri string) (entity.ID, bool) {
		if id, ok := bound[uri]; ok {
			return id, true
		}
		if freed[uri] {
			return -1, false
		}
		return lookup(uri)
	}
	isLiveOv := func(id entity.ID) bool {
		if v, ok := liveOv[id]; ok {
			return v
		}
		return isLive(id)
	}
	for i := range recs {
		rec := &recs[i]
		if rec.Seq != 0 {
			return fmt.Errorf("batch record %d carries a routed sequence number; routed streams batch through the transport frame", i)
		}
		switch rec.Kind {
		case OpInsert:
			// Mirror entity.Collection.Add's source validation so the apply
			// after journaling cannot fail.
			switch kind {
			case entity.CleanClean:
				if rec.Source != 0 && rec.Source != 1 {
					return fmt.Errorf("batch record %d: clean-clean stream requires source 0 or 1, got %d", i, rec.Source)
				}
			default:
				if rec.Source != 0 {
					return fmt.Errorf("batch record %d: dirty stream requires source 0, got %d", i, rec.Source)
				}
			}
			if rec.URI != "" {
				if _, taken := lookupOv(rec.URI); taken {
					return fmt.Errorf("batch record %d: URI %q already live", i, rec.URI)
				}
			}
			rec.ID = nextID
			nextID++
			liveOv[rec.ID] = true
			slotURI[rec.ID] = rec.URI
			if rec.URI != "" {
				bound[rec.URI] = rec.ID
			}
		case OpUpdate, OpDelete:
			if rec.ID < 0 {
				id, ok := lookupOv(rec.URI)
				if !ok {
					return fmt.Errorf("batch record %d: %s of unknown URI %q", i, rec.Kind, rec.URI)
				}
				rec.ID = id
			}
			if !isLiveOv(rec.ID) {
				return fmt.Errorf("batch record %d: %s of unknown description %d", i, rec.Kind, rec.ID)
			}
			if rec.Kind == OpDelete {
				liveOv[rec.ID] = false
				uri, ok := slotURI[rec.ID]
				if !ok {
					uri = uriOf(rec.ID)
				}
				if uri != "" {
					if id, bnd := bound[uri]; bnd && id == rec.ID {
						delete(bound, uri)
					}
					freed[uri] = true
				}
			}
		default:
			return fmt.Errorf("batch record %d has kind %v; batches hold inserts, updates and deletes", i, rec.Kind)
		}
	}
	return nil
}

// applyBatchRecord applies one validated batch sub-record. An admitted
// batch completes — application runs under the never-cancelled replay
// context — so the only failures are "cannot happen" divergences the
// caller escalates. Callers hold r.mu.
func (r *Resolver) applyBatchRecord(rec *Record) error {
	switch rec.Kind {
	case OpInsert:
		if rec.ID != r.coll.Len() {
			return fmt.Errorf("incremental: batch insert assigned handle %d but %d slots exist", rec.ID, r.coll.Len())
		}
		d := &entity.Description{ID: -1, URI: rec.URI, Source: rec.Source, Attrs: rec.Attrs}
		_, err := r.applyInsert(replayCtx, d)
		return err
	case OpUpdate:
		return r.applyUpdate(replayCtx, rec.ID, rec.Attrs)
	case OpDelete:
		r.applyDelete(rec.ID)
		return nil
	default:
		return fmt.Errorf("incremental: batch record has kind %v", rec.Kind)
	}
}

// Lookup returns the handle of the live description with the given URI.
func (r *Resolver) Lookup(uri string) (entity.ID, bool) {
	r.rlock()
	defer r.mu.RUnlock()
	id, ok := r.byURI[uri]
	return id, ok
}

// isLive reports whether id is a live slot. Callers hold r.mu.
func (r *Resolver) isLive(id entity.ID) bool {
	return id >= 0 && id < len(r.live) && r.live[id]
}

// retire removes id's block membership and match edges, splitting its
// cluster if it was an articulation point. With meta-blocking the removal
// also flows into the weighted graph (through the membership observer) and
// invalidates the cached matcher decisions of id's pairs, since a later
// update may re-key the same handle with different content. Callers hold
// r.mu.
func (r *Resolver) retire(id entity.ID) {
	// Capture the edges RemoveNode is about to drop — they are match-graph
	// presence changes the next delta snapshot must carry.
	if r.snapTrack != nil {
		for _, nb := range r.dyn.Graph().Neighbors(id) {
			r.markMatchEdge(id, nb)
		}
	}
	r.blocks.Remove(id)
	r.dyn.RemoveNode(id)
	if r.weighted != nil {
		dropped := r.simCache.Invalidate(id)
		if r.snapTrack != nil {
			for _, other := range dropped {
				r.markCachePair(entity.NewPair(id, other))
			}
		}
		r.metaDirty = true
	}
}

// index keys the (live, current) description id into the block index and
// resolves its delta frontier through the matching worker pool, folding the
// positives into the match graph. With meta-blocking configured the delta
// instead flows into the weighted blocking graph (via the membership
// observer) and matching is deferred to the next read's reconcile, which
// prunes the accumulated frontier before the matcher sees it — see
// meta.go. Callers hold r.mu.
func (r *Resolver) index(ctx context.Context, id entity.ID) error {
	d := r.coll.Get(id)
	if err := r.blocks.Add(id, d.Source, r.keyer(d)); err != nil {
		return fmt.Errorf("incremental: %w", err)
	}
	if r.weighted != nil {
		r.metaDirty = true
		return nil
	}
	delta := r.blocks.DeltaBlocks(id)
	if r.cfg.DeltaFilter != nil {
		delta = r.filterDelta(d, delta)
	}
	// Small frontiers skip the worker pool: a pool spin-up costs more than
	// matching a handful of pairs, and most per-op deltas are far below one
	// scheduling chunk.
	workers := r.cfg.Workers
	if delta.TotalComparisons() < sequentialDeltaMax {
		workers = 1
	}
	out, err := matching.ResolveBlocksParallel(ctx, r.coll, delta, r.cfg.Matcher, workers)
	if err != nil {
		// The context fired mid-delta: some candidate pairs of id were
		// never evaluated. Roll the description back out so the maintained
		// state never holds a partially resolved member; the caller can
		// retry the operation. The aborted delta's partial comparisons are
		// not counted — Stats.Comparisons sums successful operations only,
		// keeping it equal to a batch run's count on insert-only streams.
		r.blocks.Remove(id)
		r.dyn.RemoveNode(id)
		return fmt.Errorf("incremental: delta matching: %w", err)
	}
	r.stats.Comparisons += out.Comparisons
	out.Matches.Each(func(p entity.Pair) bool {
		r.dyn.AddEdge(p.A, p.B, 1)
		r.markMatchEdge(p.A, p.B)
		return true
	})
	return nil
}

// filterDelta rebuilds d's comparison frontier keeping only the candidates
// the configured DeltaFilter claims for this resolver. The frontier keeps
// DeltaBlocks' shape — one CleanClean block per key, candidates ascending —
// so the downstream dedup and ordering behavior is unchanged; blocks whose
// candidates are all claimed elsewhere are dropped like any comparison-free
// block. Callers hold r.mu.
func (r *Resolver) filterDelta(d *entity.Description, delta *blocking.Blocks) *blocking.Blocks {
	claim := r.cfg.DeltaFilter(d)
	out := blocking.NewBlocks(entity.CleanClean)
	for _, b := range delta.All() {
		var kept []entity.ID
		for _, other := range b.S1 {
			if claim(b.Key, r.coll.Get(other)) {
				kept = append(kept, other)
			}
		}
		if len(kept) == 0 {
			continue
		}
		out.Add(&blocking.Block{Key: b.Key, S0: b.S0, S1: kept})
	}
	return out
}

// sequentialDeltaMax is the frontier size (suggested comparisons,
// redundancy included) below which delta matching runs sequentially even
// when the resolver has a worker budget; it matches the matcher pool's
// chunk size, the point where fan-out can begin to pay for itself.
const sequentialDeltaMax = 256

// rlock takes the shared lock for a read that needs no reconcile. The
// caller must release with r.mu.RUnlock.
func (r *Resolver) rlock() {
	r.mu.RLock()
	r.readLocks.Add(1)
	r.sharedReads.Add(1)
}

// lockShared acquires the lock in shared mode with the reconcile-then-share
// discipline: on nil return the caller holds the read lock over clean state
// (no deferred meta-blocking work pending) and must release with
// r.mu.RUnlock. When the graph is dirty the reader upgrades — releases the
// read lock, reconciles under the write lock, retries. The upgrade is
// single-flight in effect: a read stampede on a dirty graph queues on the
// write lock, the first holder pays the one delta-proportional reconcile
// (riding the DeltaPruner), and everyone behind it finds the graph clean
// and proceeds under the shared lock, so N concurrent readers cost one
// reconcile, not N.
func (r *Resolver) lockShared(ctx context.Context) error {
	reconciled := false
	for {
		r.mu.RLock()
		r.readLocks.Add(1)
		// A diverged journal poisons reconciling reads (mirror reconcile's
		// rule); graceful closure does not — a closed resolver still serves.
		if r.broken != nil && r.broken != errClosed {
			err := r.broken
			r.mu.RUnlock()
			return err
		}
		if r.weighted == nil || !r.metaDirty {
			if !reconciled {
				r.sharedReads.Add(1)
			}
			return nil
		}
		r.mu.RUnlock()
		r.mu.Lock()
		err := r.reconcile(ctx)
		r.mu.Unlock()
		if err != nil {
			return err
		}
		reconciled = true
	}
}

// Stats returns a snapshot of the resolver's counters, reconciling any
// deferred meta-blocking work first. The error is the reconcile's — a
// poisoned journal surfaces as ErrBroken.
func (r *Resolver) Stats() (Stats, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return Stats{}, err
	}
	defer r.mu.RUnlock()
	st := r.stats
	st.Live = r.liveCount
	st.Matches = r.dyn.NumEdges()
	st.Clusters = len(r.dyn.Clusters())
	if r.weighted != nil {
		st.CandidatePairs = r.weighted.NumPairs()
		st.KeptPairs = len(r.lastKept)
	}
	return st, nil
}

// Matches returns the current match pairs over internal handles,
// reconciling any deferred meta-blocking work first.
func (r *Resolver) Matches() (*entity.Matches, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	return r.dyn.Matches(), nil
}

// Clusters returns the current non-singleton entity clusters over internal
// handles, in the deterministic order of entity.UnionFind.Clusters,
// reconciling any deferred meta-blocking work first.
func (r *Resolver) Clusters() ([][]entity.ID, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	return r.dyn.Clusters(), nil
}

// Blocks materializes the current block collection — identical to what the
// configured blocker would build over the live descriptions.
func (r *Resolver) Blocks() *blocking.Blocks {
	r.rlock()
	defer r.mu.RUnlock()
	return r.blocks.Blocks()
}

// Get returns a copy of the live description with the given handle.
func (r *Resolver) Get(id entity.ID) (*entity.Description, bool) {
	r.rlock()
	defer r.mu.RUnlock()
	if !r.isLive(id) {
		return nil, false
	}
	return r.coll.Get(id).Clone(), true
}

// Counters returns the resolver's raw operation and comparison counters
// plus the live-description count WITHOUT reconciling deferred
// meta-blocking work — unlike Stats it never mutates state, so a
// coordinator can aggregate shard counters without triggering shard-local
// pruning. The reconcile-dependent fields (Matches, Clusters,
// CandidatePairs, KeptPairs) are left zero.
func (r *Resolver) Counters() Stats {
	r.rlock()
	defer r.mu.RUnlock()
	st := r.stats
	st.Live = r.liveCount
	return st
}

// Slots returns the number of handle slots the resolver has assigned —
// live, dead and burned alike. This is the next insert's handle, which is
// NOT derivable from Counters(): a cancelled insert burns its slot without
// counting as an insert.
func (r *Resolver) Slots() int {
	r.rlock()
	defer r.mu.RUnlock()
	return r.coll.Len()
}

// MatchNeighbors returns the descriptions currently matched to id in this
// resolver's match graph, sorted ascending (nil when it has none), without
// reconciling deferred meta-blocking work. It is the per-operation edge
// feed of the sharded coordinator: after an operation on id, the union of
// the shards' neighbors of id is exactly the global match delta.
func (r *Resolver) MatchNeighbors(id entity.ID) []entity.ID {
	r.rlock()
	defer r.mu.RUnlock()
	return r.dyn.Graph().Neighbors(id)
}

// MatchEdges returns the resolver's current match edges sorted by (A, B),
// without reconciling deferred meta-blocking work — the raw shard-local
// edge set a coordinator unions into its global match graph.
func (r *Resolver) MatchEdges() []graph.Edge {
	r.rlock()
	defer r.mu.RUnlock()
	return r.dyn.SnapshotEdges()
}

// MergeWeightedInto folds this resolver's live weighted blocking graph
// into dst and reports whether the resolver maintains one (Meta
// configured). The fold is purely additive, so a coordinator that merges
// shards owning disjoint key spaces reconstructs exactly the weighted
// graph a single resolver over the whole key space would hold.
func (r *Resolver) MergeWeightedInto(dst *metablocking.WeightedGraph) bool {
	r.rlock()
	defer r.mu.RUnlock()
	if r.weighted == nil {
		return false
	}
	dst.Merge(r.weighted)
	return true
}

// EachSlot enumerates every collection slot in handle order — dead slots
// (deleted descriptions, burned inserts) included, with live=false and the
// description's content unspecified — stopping early if fn returns false.
// The description handed to fn is the resolver's own; callers must not
// retain or mutate it. No deferred work is reconciled. This is the bulk
// state feed a coordinator rebuilds its replica from when reopening a
// sharded directory.
func (r *Resolver) EachSlot(fn func(id entity.ID, live bool, d *entity.Description) bool) {
	r.rlock()
	defer r.mu.RUnlock()
	for _, d := range r.coll.All() {
		if !fn(d.ID, r.live[d.ID], d) {
			return
		}
	}
}

// Snapshot materializes the resolver's state as a fresh batch-shaped
// result: a collection holding clones of the live descriptions with dense
// IDs in insertion order, and the match set remapped into that ID space.
// Running a batch pipeline with the same blocker and matcher over the
// returned collection produces exactly the returned matches — the
// differential-equivalence contract the test suite enforces.
func (r *Resolver) Snapshot() (*entity.Collection, *entity.Matches, error) {
	if err := r.lockShared(context.Background()); err != nil {
		return nil, nil, err
	}
	defer r.mu.RUnlock()
	out := entity.NewCollection(r.cfg.Kind)
	remap := make(map[entity.ID]entity.ID, r.liveCount)
	for _, d := range r.coll.All() {
		if !r.live[d.ID] {
			continue
		}
		cp := d.Clone()
		remap[d.ID] = out.MustAdd(cp)
	}
	matches := entity.NewMatches()
	r.dyn.Graph().EachEdge(func(e graph.Edge) bool {
		matches.Add(remap[e.A], remap[e.B])
		return true
	})
	return out, matches, nil
}
