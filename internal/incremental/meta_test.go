package incremental_test

import (
	"context"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/core"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

func metaResolver(t *testing.T, workers int) (*incremental.Resolver, *entity.Collection, *core.Pipeline) {
	t.Helper()
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: 31, Entities: 60, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	meta := &metablocking.MetaBlocker{Weight: metablocking.JS, Prune: metablocking.WNP}
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	r, err := incremental.New(incremental.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: matcher,
		Workers: workers,
		Meta:    meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := &core.Pipeline{Blocker: &blocking.TokenBlocking{}, Meta: meta, Matcher: matcher, Mode: core.Batch}
	return r, c, batch
}

// TestMetaFlushCancellation: a cancelled Flush leaves the resolved state
// exactly as it was — no partial matches, no counted comparisons — and the
// deferred work stays pending until a later read settles it.
func TestMetaFlushCancellation(t *testing.T) {
	r, c, batch := metaResolver(t, 4)
	ctx := context.Background()
	for _, d := range c.All() {
		if _, err := r.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := r.Flush(cancelled); err == nil {
		t.Fatal("cancelled Flush succeeded")
	}
	// Reads reconcile lazily, so the first Stats call settles the pending
	// work and the result equals the batch meta pipeline.
	want, err := batch.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, r)
	if st.Comparisons != want.Comparisons {
		t.Fatalf("comparisons after retry = %d, batch = %d", st.Comparisons, want.Comparisons)
	}
	if st.Matches != want.Matches.Len() {
		t.Fatalf("matches after retry = %d, batch = %d", st.Matches, want.Matches.Len())
	}
	// A second Flush with nothing pending is a no-op.
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// The restructured rendering equals batch meta-blocking's emission:
	// same pair blocks, same descending-weight order (handles are dense
	// insert-order IDs, so they line up with the batch collection).
	got, wantBs := mustRestructuredBlocks(t, r), want.Blocks
	if got.Len() != wantBs.Len() {
		t.Fatalf("restructured blocks = %d, batch = %d", got.Len(), wantBs.Len())
	}
	for i, b := range got.All() {
		w := wantBs.Get(i)
		if b.Key != w.Key {
			t.Fatalf("restructured block %d key = %q, batch = %q", i, b.Key, w.Key)
		}
	}
}

// TestMetaDeferredReads: every read accessor settles the deferred state;
// deletes retire pruned-in matches that the shrunken graph no longer
// keeps.
func TestMetaDeferredReads(t *testing.T) {
	r, c, _ := metaResolver(t, 1)
	ctx := context.Background()
	ids := make([]entity.ID, 0, c.Len())
	for _, d := range c.All() {
		id, err := r.Insert(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if n := mustMatches(t, r).Len(); n <= 0 {
		t.Fatal("no matches after replay")
	}
	st := mustStats(t, r)
	if st.CandidatePairs < st.KeptPairs || st.KeptPairs <= 0 {
		t.Fatalf("counters kept=%d candidates=%d", st.KeptPairs, st.CandidatePairs)
	}
	// Delete half the stream; the maintained state must still equal a
	// from-scratch batch run (checked exhaustively by the differential
	// suite; here: clusters readable and consistent with matches).
	for _, id := range ids[:len(ids)/2] {
		if err := r.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	m := mustMatches(t, r)
	clusters := mustClusters(t, r)
	total := 0
	for _, cl := range clusters {
		total += len(cl)
	}
	if m.Len() > 0 && total == 0 {
		t.Fatalf("matches=%d but no clusters", m.Len())
	}
}

// TestRestructuredBlocksWithoutMeta: nil without a Meta configuration.
func TestRestructuredBlocksWithoutMeta(t *testing.T) {
	r, err := incremental.New(incremental.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs := mustRestructuredBlocks(t, r); bs != nil {
		t.Fatalf("RestructuredBlocks without meta = %v", bs)
	}
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("Flush without meta: %v", err)
	}
}
