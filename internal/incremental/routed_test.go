package incremental

import (
	"context"
	"reflect"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/matching"
)

func routedInsert(seq uint64, id entity.ID, uri, name string) RoutedOp {
	return RoutedOp{Seq: seq, Kind: OpInsert, ID: id, URI: uri,
		Attrs: []entity.Attribute{{Name: "name", Value: name}}}
}

// TestApplyRoutedStream drives the shard-side routed apply path directly:
// full payloads, slot-advance records, idempotent replay, gap refusal and
// the materializing update of a slot-advanced description.
func TestApplyRoutedStream(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()

	// Two owned inserts that match, then a slot-advance for a third this
	// "shard" owns no keys of.
	for _, op := range []RoutedOp{
		routedInsert(1, 0, "u:a", "alice smith"),
		routedInsert(2, 1, "u:b", "alice smith"),
		{Seq: 3, Kind: OpInsert, Advance: true, ID: 2},
	} {
		if err := r.ApplyRouted(ctx, op); err != nil {
			t.Fatalf("ApplyRouted(%d): %v", op.Seq, err)
		}
	}
	if got := r.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	st := mustStats(t, r)
	if st.Inserts != 3 || st.Live != 2 || st.Matches != 1 {
		t.Fatalf("stats after routed inserts = %s", st)
	}
	if got := mustMatchedWith(t, r, 0); !reflect.DeepEqual(got, []entity.ID{1}) {
		t.Fatalf("MatchedWith(0) = %v", got)
	}
	if got := mustMatchedWith(t, r, 2); got != nil {
		t.Fatalf("MatchedWith(placeholder) = %v", got)
	}

	// Idempotent replay: a re-sent record is acknowledged without applying.
	if err := r.ApplyRouted(ctx, routedInsert(2, 1, "u:b", "alice smith")); err != nil {
		t.Fatalf("replayed record refused: %v", err)
	}
	if st2 := mustStats(t, r); st2.Inserts != 3 {
		t.Fatalf("replayed record re-applied: %s", st2)
	}
	// A gap is refused, as is a zero sequence number.
	if err := r.ApplyRouted(ctx, routedInsert(6, 3, "u:z", "zoe")); err == nil {
		t.Fatal("gapped record accepted")
	}
	if err := r.ApplyRouted(ctx, RoutedOp{Seq: 0, Kind: OpInsert}); err == nil {
		t.Fatal("zero-sequence record accepted")
	}

	// Validation: wrong insert handle, out-of-range target, unknown kind,
	// URI collision with a live handle.
	for _, bad := range []RoutedOp{
		routedInsert(4, 7, "u:x", "xena"),
		{Seq: 4, Kind: OpUpdate, ID: 9},
		{Seq: 4, Kind: OpKind(99)},
		routedInsert(4, 3, "u:a", "impostor"),
	} {
		if err := r.ApplyRouted(ctx, bad); err == nil {
			t.Fatalf("invalid record %+v accepted", bad)
		}
	}
	if got := r.LastSeq(); got != 3 {
		t.Fatalf("refused records advanced LastSeq to %d", got)
	}

	// A routed update materializes the slot-advanced placeholder: it joins
	// the live set, the URI table and the match graph.
	up := RoutedOp{Seq: 4, Kind: OpUpdate, ID: 2, URI: "u:c",
		Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}}}
	if err := r.ApplyRouted(ctx, up); err != nil {
		t.Fatalf("materializing update: %v", err)
	}
	if id, ok := r.Lookup("u:c"); !ok || id != 2 {
		t.Fatalf("materialized URI lookup = %d, %v", id, ok)
	}
	if got := mustMatchedWith(t, r, 2); !reflect.DeepEqual(got, []entity.ID{0, 1}) {
		t.Fatalf("MatchedWith(materialized) = %v", got)
	}

	// An advance update only moves the counter; an owned update re-resolves.
	if err := r.ApplyRouted(ctx, RoutedOp{Seq: 5, Kind: OpUpdate, Advance: true, ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyRouted(ctx, RoutedOp{Seq: 6, Kind: OpUpdate, ID: 1,
		Attrs: []entity.Attribute{{Name: "name", Value: "someone else entirely"}}}); err != nil {
		t.Fatal(err)
	}
	if got := mustMatchedWith(t, r, 1); len(got) != 0 {
		t.Fatalf("re-keyed update still matched: %v", got)
	}

	// Deletes clear live slots (advance or not) and count on dead ones.
	if err := r.ApplyRouted(ctx, RoutedOp{Seq: 7, Kind: OpDelete, Advance: true, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("u:b"); ok {
		t.Fatal("advance delete left the slot live")
	}
	if err := r.ApplyRouted(ctx, RoutedOp{Seq: 8, Kind: OpDelete, ID: 1}); err != nil {
		t.Fatal(err)
	}
	st = mustStats(t, r)
	if st.Inserts != 3 || st.Updates != 3 || st.Deletes != 2 || st.Live != 2 {
		t.Fatalf("final stats = %s", st)
	}
	if got := r.LastSeq(); got != 8 {
		t.Fatalf("LastSeq = %d, want 8", got)
	}
}

// TestEachDeltaCandidate checks the candidate enumeration a networked
// coordinator uses to reconstruct per-shard comparison counts: each
// candidate pair exactly once, under its first shared blocking key.
func TestEachDeltaCandidate(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()
	a, _ := r.Insert(ctx, person("u:a", "alice smith", "berlin"))
	b, _ := r.Insert(ctx, person("u:b", "alice smith", "berlin"))
	c, _ := r.Insert(ctx, person("u:c", "carol jones", "nowhere"))

	seen := map[entity.ID]string{}
	r.EachDeltaCandidate(b, func(other entity.ID, claimKey string) bool {
		if _, dup := seen[other]; dup {
			t.Fatalf("candidate %d visited twice", other)
		}
		seen[other] = claimKey
		return true
	})
	key, ok := seen[a]
	if len(seen) != 1 || !ok || key == "" {
		t.Fatalf("candidates of %d = %v, want exactly {%d}", b, seen, a)
	}
	// The claim key is the smallest shared key of the pair.
	ka, kb := r.blocks.Keys(a), r.blocks.Keys(b)
	if fs, shared := firstSharedSorted(ka, kb); !shared || fs != key {
		t.Fatalf("claim key %q, first shared of %v and %v is %q", key, ka, kb, fs)
	}
	if fs, shared := firstSharedSorted(r.blocks.Keys(c), kb); shared {
		t.Fatalf("disjoint key sets share %q", fs)
	}

	// Early stop and the not-live guard.
	calls := 0
	r.EachDeltaCandidate(a, func(entity.ID, string) bool { calls++; return false })
	if calls > 1 {
		t.Fatalf("enumeration continued after false: %d calls", calls)
	}
	r.EachDeltaCandidate(99, func(entity.ID, string) bool {
		t.Fatal("candidates enumerated for a dead handle")
		return false
	})
}

// TestRoutedReplay journals a routed stream durably, crashes past a
// snapshot boundary, and recovers: LastSeq and the counters must restore
// exactly, and the next record in sequence must still apply.
func TestRoutedReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Durable: DurableOptions{SnapshotEvery: 2, NoSync: true},
	}
	r, err := OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ops := []RoutedOp{
		routedInsert(1, 0, "u:a", "alice smith"),
		{Seq: 2, Kind: OpInsert, Advance: true, ID: 1},
		routedInsert(3, 2, "u:c", "alice smith"),
		{Seq: 4, Kind: OpUpdate, Advance: true, ID: 1},
		{Seq: 5, Kind: OpDelete, ID: 0},
	}
	for _, op := range ops {
		if err := r.ApplyRouted(ctx, op); err != nil {
			t.Fatalf("ApplyRouted(%d): %v", op.Seq, err)
		}
	}
	want := mustStats(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenResolver(dir, cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := re.LastSeq(); got != 5 {
		t.Fatalf("recovered LastSeq = %d, want 5", got)
	}
	if got := mustStats(t, re); got != want {
		t.Fatalf("recovered stats = %s, want %s", got, want)
	}
	if err := re.ApplyRouted(ctx, routedInsert(6, 3, "u:d", "dora")); err != nil {
		t.Fatalf("post-recovery record: %v", err)
	}
	// Replay is as strict about sequence as the live path: hand-feeding a
	// gapped record through the replay entry point is refused.
	if err := re.replayRouted(Record{Kind: OpInsert, Seq: 9, ID: 4}); err == nil {
		t.Fatal("gapped journal record replayed")
	}
}

// TestBootstrap ships a whole shard state into pristine resolvers — the
// remote-rejoin state transfer — and checks the restored stream position,
// counters, match graph and index, in memory and durably.
func TestBootstrap(t *testing.T) {
	bs := BootstrapState{
		Slots: []BootstrapSlot{
			{Live: true, URI: "u:a", Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}},
				Keys: []string{"alice", "smith"}},
			{}, // placeholder: slot-advanced, content-free
			{Live: true, URI: "u:c", Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}},
				Keys: []string{"alice", "smith"}},
		},
		Edges:   []graph.Edge{{A: 0, B: 2}},
		Inserts: 3, Updates: 2, Deletes: 1, Comparisons: 4,
		Seq: 6,
	}
	check := func(t *testing.T, r *Resolver) {
		t.Helper()
		if got := r.LastSeq(); got != 6 {
			t.Fatalf("bootstrapped LastSeq = %d, want 6", got)
		}
		st := mustStats(t, r)
		if st.Inserts != 3 || st.Updates != 2 || st.Deletes != 1 || st.Comparisons != 4 || st.Live != 2 {
			t.Fatalf("bootstrapped stats = %s", st)
		}
		if got := mustMatchedWith(t, r, 0); !reflect.DeepEqual(got, []entity.ID{2}) {
			t.Fatalf("bootstrapped MatchedWith(0) = %v", got)
		}
		if id, ok := r.Lookup("u:c"); !ok || id != 2 {
			t.Fatalf("bootstrapped Lookup = %d, %v", id, ok)
		}
		// The shipped index is live: the next routed record in sequence
		// resolves against it.
		if err := r.ApplyRouted(context.Background(), routedInsert(7, 3, "u:d", "alice smith")); err != nil {
			t.Fatalf("post-bootstrap record: %v", err)
		}
		if got := mustMatchedWith(t, r, 3); !reflect.DeepEqual(got, []entity.ID{0, 2}) {
			t.Fatalf("post-bootstrap MatchedWith = %v", got)
		}
	}

	t.Run("memory", func(t *testing.T) {
		r := newTestResolver(t, entity.Dirty)
		if err := r.Bootstrap(bs); err != nil {
			t.Fatal(err)
		}
		check(t, r)
		// Bootstrap demands pristine state.
		if err := r.Bootstrap(bs); err == nil {
			t.Fatal("bootstrap over applied state accepted")
		}
	})

	t.Run("durable", func(t *testing.T) {
		dir := t.TempDir()
		cfg := Config{
			Kind:    entity.Dirty,
			Blocker: &blocking.TokenBlocking{},
			Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
			Durable: DurableOptions{NoSync: true},
		}
		r, err := OpenResolver(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Bootstrap(bs); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// The shipped state checkpointed immediately: a reopen recovers it.
		re, err := OpenResolver(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		check(t, re)
	})

	t.Run("invalid", func(t *testing.T) {
		dup := bs
		dup.Slots = append([]BootstrapSlot(nil), bs.Slots...)
		dup.Slots[1] = dup.Slots[0]
		if err := newTestResolver(t, entity.Dirty).Bootstrap(dup); err == nil {
			t.Fatal("duplicate URI accepted")
		}
		dead := bs
		dead.Edges = []graph.Edge{{A: 0, B: 1}}
		if err := newTestResolver(t, entity.Dirty).Bootstrap(dead); err == nil {
			t.Fatal("edge to a dead slot accepted")
		}
	})
}
