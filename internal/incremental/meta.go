// Live meta-blocking: the resolver's deferred weighting-and-pruning path.
//
// With cfg.Meta set, every insert, update and delete flows its membership
// delta into an incrementally maintained metablocking.WeightedGraph (wired
// as a blocking.MembershipObserver of the block index) and defers all
// matching. Reads — Matches, Clusters, Stats, Snapshot, Flush,
// RestructuredBlocks — reconcile: sync the delta pruner over the changes
// since the last read, evaluate the re-fated pairs that have no cached
// matcher decision, and patch the match graph so it equals {kept ∧
// similar}.
//
// Deferral is what makes the batch contract exact. Edge weights (and WEP's
// global mean, WNP's neighborhood means) shift with every arrival, so a
// pair's pruning fate is only settled at read time; an eager per-operation
// decision would compare pairs a batch run over the final collection never
// compares. Deferred, a static replay followed by one read evaluates
// exactly the finally-kept pairs — matches AND comparison counts equal the
// batch pipeline bit for bit.
//
// The reconcile is delta-proportional. A metablocking.DeltaPruner rides
// the weighted graph's change feed and re-derives fates for only the edges
// the changes could have flipped (see metablocking/delta.go for the
// candidate-band argument); because its thresholds are exact sums, the
// fates are bit-identical to a full PruneGraph pass, and the match-graph
// patch below only touches the re-fated pairs. A pair outside the
// candidate set provably kept its fate AND its cached decision (every
// cache invalidation flows through retire, whose membership removal dirties
// the pair), so leaving its match edge alone is exactly what the old
// full-rescan reconcile did.
package incremental

import (
	"context"
	"fmt"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/metablocking"
)

// PerfCounters are the resolver's machine-independent work counters: pure
// functions of the operation stream and configuration, unlike wall-clock
// timings, so committed benchmark baselines can gate on them across
// machines. All counters are cumulative.
type PerfCounters struct {
	// Reconciles counts effective (non-no-op) reconcile passes.
	Reconciles int64
	// ReconcileExamined counts pruning-fate derivations across all
	// reconciles — the delta-proportional work measure (a full rescan per
	// read would grow it by the whole graph every time).
	ReconcileExamined int64
	// ReconcileEvaluated counts matcher invocations spent inside
	// reconciles (cache-missing re-fated pairs).
	ReconcileEvaluated int64
	// FullSnapshots and DeltaSnapshots count checkpoint compactions by
	// kind; SnapshotSlots and SnapshotPairs the cumulative collection
	// slots and weighted-graph pairs they serialized — the compaction-cost
	// measure (full snapshots serialize everything, deltas only the dirty
	// entries).
	FullSnapshots, DeltaSnapshots int64
	SnapshotSlots, SnapshotPairs  int64
	// JournalAppends counts journal append operations (Journal.Record
	// calls, the no-op journal's included — the counter is a pure function
	// of the operation stream, not of durability). A batch of N operations
	// costs one append where per-op application costs N: the write-path
	// amortization measure.
	JournalAppends int64
	// FanOuts counts coordinator shard fan-outs. Shard-local resolvers
	// never increment it; the sharded and networked coordinators add their
	// own count when aggregating (one fan-out per op, or per batch).
	FanOuts int64
	// TransportRoundTrips counts wire request/ack round trips issued to
	// shard servers. Only the networked coordinator increments it: a batch
	// frame carries N routed ops per round trip where the per-op path pays
	// N round trips per shard.
	TransportRoundTrips int64
	// ReadLocks counts shared (read) lock acquisitions across the read
	// surface and SharedReads the read operations served entirely under the
	// shared lock — without paying a reconcile themselves. Their ratio is
	// the concurrent-read-scaling evidence: a fleet of readers on a mostly
	// clean graph shows SharedReads tracking ReadLocks, with the occasional
	// post-write reconcile paid once regardless of reader count. Sequential
	// use keeps both deterministic; under concurrency they depend on
	// scheduling, so benchmark baselines must not gate on them.
	ReadLocks, SharedReads int64
}

// Add folds q's counts into p — the aggregation the sharded and networked
// coordinators use to sum per-shard counters with their own.
func (p *PerfCounters) Add(q PerfCounters) {
	p.Reconciles += q.Reconciles
	p.ReconcileExamined += q.ReconcileExamined
	p.ReconcileEvaluated += q.ReconcileEvaluated
	p.FullSnapshots += q.FullSnapshots
	p.DeltaSnapshots += q.DeltaSnapshots
	p.SnapshotSlots += q.SnapshotSlots
	p.SnapshotPairs += q.SnapshotPairs
	p.JournalAppends += q.JournalAppends
	p.FanOuts += q.FanOuts
	p.TransportRoundTrips += q.TransportRoundTrips
	p.ReadLocks += q.ReadLocks
	p.SharedReads += q.SharedReads
}

// Perf returns the resolver's cumulative work counters. It never
// reconciles or otherwise mutates state.
func (r *Resolver) Perf() PerfCounters {
	// A plain (uncounted) shared lock: Perf observes the counters and must
	// not perturb them — two back-to-back calls on a quiet resolver agree.
	r.mu.RLock()
	defer r.mu.RUnlock()
	p := r.perf
	p.ReadLocks = r.readLocks.Load()
	p.SharedReads = r.sharedReads.Load()
	return p
}

// Flush reconciles any deferred meta-blocking work under the caller's
// context: syncs the delta pruner and resolves the re-fated,
// not-yet-evaluated pairs through the matcher pool. It is a no-op without
// a Meta configuration or when nothing changed since the last reconcile.
// On cancellation the match state is left as it was before the call (the
// evaluated decisions are not folded in) and the deferred work remains
// pending; retrying restores consistency. A resolver whose journal has
// diverged fails with an error wrapping ErrBroken.
func (r *Resolver) Flush(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconcile(ctx)
}

// RestructuredBlocks reconciles and renders the pruned blocking graph the
// way batch meta-blocking emits it: one two-description block per kept
// edge, ordered by descending weight. It is the streaming counterpart of
// MetaBlocker.Restructure over the live descriptions; without a Meta
// configuration it returns nil.
func (r *Resolver) RestructuredBlocks() (*blocking.Blocks, error) {
	// weighted is assigned once in New, before the resolver escapes — safe
	// to check unlocked, and it keeps the no-meta answer error-free the way
	// it always was.
	if r.weighted == nil {
		return nil, nil
	}
	if err := r.lockShared(context.Background()); err != nil {
		return nil, err
	}
	defer r.mu.RUnlock()
	kept := make([]graph.Edge, len(r.lastKept))
	copy(kept, r.lastKept)
	return metablocking.EmitKept(r.coll, r.cfg.Kind, kept), nil
}

// reconcile settles the deferred meta-blocking state: syncs the delta
// pruner over the graph changes since the last read, evaluates the
// re-fated pairs that miss the decision cache, and patches the match graph
// so it equals {kept ∧ similar}. Callers hold r.mu.
func (r *Resolver) reconcile(ctx context.Context) error {
	// A diverged journal poisons reads as well as writes: the in-memory
	// answer may still be derivable, but silently serving it while the log
	// cannot reproduce it hides the divergence until the next crash.
	// Graceful closure is NOT poison — a closed resolver still serves
	// consistent reads below, it just stops journaling reconciles (nothing
	// can mutate after close, and recovery re-derives reconcile state
	// deterministically).
	if r.broken != nil && r.broken != errClosed {
		return r.broken
	}
	if r.weighted == nil || !r.metaDirty {
		return nil
	}
	// An effective reconcile mutates state — decisions are evaluated,
	// cached and counted — so a durable resolver journals it like any
	// operation and recovery replays it at the same point of the stream,
	// keeping the comparison counters and decision cache bit-exact across a
	// crash.
	journaled := false
	if r.broken == nil {
		if err := r.journal.Record(Record{Kind: OpReconcile}); err != nil {
			r.broken = fmt.Errorf("%w: journaling reconcile: %v", ErrBroken, err)
			return r.broken
		}
		journaled = true
		r.perf.JournalAppends++
	}
	// The pruner is created at first reconcile, seeded with the committed
	// kept baseline (lastKept — consistent with the match graph and the
	// decision cache at every quiescent point, including right after a
	// snapshot restore or a shard bootstrap): its first sync then re-derives
	// every live pair against that baseline, exactly like the old full
	// reconcile, and later syncs are delta-proportional.
	if r.pruner == nil {
		r.pruner = metablocking.NewDeltaPruner(r.weighted, *r.cfg.Meta)
		r.pruner.Seed(r.lastKept)
	}
	refates := r.pruner.Sync()
	n, err := r.applyRefates(ctx, refates)
	if err != nil {
		// The candidate pairs return to the pending log and the journal
		// record is retracted with the work still pending; retrying the
		// read re-derives the same refates and restores consistency.
		r.pruner.Requeue(refates)
		if journaled {
			r.retractRecord()
		}
		return fmt.Errorf("incremental: meta reconcile: %w", err)
	}
	r.pruner.Apply(refates)
	r.stats.Comparisons += n
	r.lastKept = r.pruner.KeptEdges()
	r.metaDirty = false
	r.perf.Reconciles++
	r.perf.ReconcileExamined = r.pruner.Examined()
	r.perf.ReconcileEvaluated += n
	return nil
}

// applyRefates evaluates the re-fated pairs that miss the decision cache
// and patches the match graph: a kept ∧ similar pair's edge is ensured
// present, every other re-fated pair's edge ensured absent. Pairs outside
// the refates keep fate, decision and edge — the delta-proportionality of
// the read path. On error nothing is mutated. The fresh decisions are
// discarded by this resolver: its journal replays the OpReconcile record
// by re-running the reconcile at the same stream point, which re-derives
// them deterministically. Callers hold r.mu.
func (r *Resolver) applyRefates(ctx context.Context, refates []metablocking.Refate) (int64, error) {
	var fresh []entity.Pair
	for _, f := range refates {
		if !f.Kept {
			continue
		}
		if _, ok := r.simCache.Get(f.Pair.A, f.Pair.B); !ok {
			fresh = append(fresh, f.Pair)
		}
	}
	n, _, err := evaluateFresh(ctx, r.coll, r.cfg.Matcher, r.cfg.Workers, r.simCache, fresh)
	if err != nil {
		return 0, err
	}
	// Snapshot dirt: the freshly cached decisions, and every re-fated
	// pair's kept-baseline entry and (possibly flipped) match edge.
	if r.snapTrack != nil {
		for _, p := range fresh {
			r.markCachePair(p)
		}
		for _, f := range refates {
			r.markKeptPair(f.Pair)
			r.markMatchEdge(f.Pair.A, f.Pair.B)
		}
	}
	// Mirror ReconcileKept's patch order: retire the stale edges first,
	// then add the surviving ones.
	var stale []entity.Pair
	for _, f := range refates {
		if !f.Kept {
			stale = append(stale, f.Pair)
			continue
		}
		if sim, _ := r.simCache.Get(f.Pair.A, f.Pair.B); !sim {
			stale = append(stale, f.Pair)
		}
	}
	r.dyn.RemoveEdges(stale)
	for _, f := range refates {
		if !f.Kept {
			continue
		}
		if sim, _ := r.simCache.Get(f.Pair.A, f.Pair.B); sim {
			r.dyn.AddEdge(f.Pair.A, f.Pair.B, 1)
		}
	}
	return n, nil
}
