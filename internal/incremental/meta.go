// Live meta-blocking: the resolver's deferred weighting-and-pruning path.
//
// With cfg.Meta set, every insert, update and delete flows its membership
// delta into an incrementally maintained metablocking.WeightedGraph (wired
// as a blocking.MembershipObserver of the block index) and defers all
// matching. Reads — Matches, Clusters, Stats, Snapshot, Flush,
// RestructuredBlocks — reconcile: materialize the current weights, prune
// with the exact batch pruning code, evaluate the surviving pairs that have
// no cached matcher decision through the worker pool, and diff the match
// graph against {kept ∧ similar}.
//
// Deferral is what makes the batch contract exact. Edge weights (and WEP's
// global mean, WNP's neighborhood means) shift with every arrival, so a
// pair's pruning fate is only settled at read time; an eager per-operation
// decision would compare pairs a batch run over the final collection never
// compares. Deferred, a static replay followed by one read evaluates
// exactly the finally-kept pairs — matches AND comparison counts equal the
// batch pipeline bit for bit. Between reads the maintained weighted graph
// is the live frontier; each reconcile only pays for pairs whose decisions
// are not already cached, so a serving workload's reads stay incremental.
package incremental

import (
	"context"
	"fmt"

	"entityres/internal/blocking"
	"entityres/internal/graph"
	"entityres/internal/metablocking"
)

// Flush reconciles any deferred meta-blocking work under the caller's
// context: prunes the live weighted blocking graph and resolves the kept,
// not-yet-evaluated pairs through the matcher pool. It is a no-op without
// a Meta configuration or when nothing changed since the last reconcile.
// On cancellation the match state is left as it was before the call (the
// evaluated decisions are not folded in) and the deferred work remains
// pending; retrying restores consistency.
func (r *Resolver) Flush(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconcile(ctx)
}

// RestructuredBlocks reconciles and renders the pruned blocking graph the
// way batch meta-blocking emits it: one two-description block per kept
// edge, ordered by descending weight. It is the streaming counterpart of
// MetaBlocker.Restructure over the live descriptions; without a Meta
// configuration it returns nil.
func (r *Resolver) RestructuredBlocks() *blocking.Blocks {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.weighted == nil {
		return nil
	}
	r.mustReconcile()
	kept := make([]graph.Edge, len(r.lastKept))
	copy(kept, r.lastKept)
	return metablocking.EmitKept(r.coll, r.cfg.Kind, kept)
}

// mustReconcile is reconcile under a background context, for the read
// accessors that predate meta-blocking and return no error. It cannot
// fail: the matcher pool's only error is context cancellation, and the
// background context never cancels. Callers hold r.mu.
func (r *Resolver) mustReconcile() {
	if err := r.reconcile(context.Background()); err != nil {
		panic(fmt.Sprintf("incremental: reconcile under background context: %v", err))
	}
}

// reconcile settles the deferred meta-blocking state: weights the live
// blocking graph, prunes it, evaluates the kept pairs that miss the
// decision cache, and makes the match graph equal {kept ∧ similar}.
// Callers hold r.mu.
func (r *Resolver) reconcile(ctx context.Context) error {
	if r.weighted == nil || !r.metaDirty {
		return nil
	}
	// An effective reconcile mutates state — decisions are evaluated,
	// cached and counted — so a durable resolver journals it like any
	// operation and recovery replays it at the same point of the stream,
	// keeping the comparison counters and decision cache bit-exact across a
	// crash. If journaling fails the in-memory read below is still correct,
	// but the log can no longer reproduce it: poison further writes rather
	// than diverge silently.
	journaled := false
	if r.broken == nil {
		if err := r.journal.Record(Record{Kind: OpReconcile}); err != nil {
			r.broken = fmt.Errorf("incremental: journaling reconcile failed, resolver disabled: %v", err)
		} else {
			journaled = true
		}
	}
	// Materialize and prune with the exact batch code path
	// (WeightedGraph.Graph + the WEP/WNP pruners), so identical statistics
	// yield bit-identical surviving edges. WEP and WNP never consult the
	// block collection (only the batch-only CEP/CNP budgets do, and
	// ValidateStreaming rejected those), hence the nil. The evaluation of
	// the kept pairs — cache-miss matching, decision caching, diffing the
	// match graph against {kept ∧ similar} — is the shared ReconcileKept
	// core (decisions.go), which the sharded coordinator's global
	// reconcile runs too.
	g := r.weighted.Graph(r.cfg.Meta.Weight)
	kept := r.cfg.Meta.PruneGraph(g, nil)
	// The fresh decisions are discarded: this resolver's journal replays the
	// OpReconcile record by re-running the reconcile at the same stream
	// point, which re-derives them deterministically.
	n, _, err := ReconcileKept(ctx, r.coll, r.cfg.Matcher, r.cfg.Workers, r.simCache, r.dyn, kept)
	if err != nil {
		// The journal record is retracted with the work still pending;
		// retrying the read restores consistency.
		if journaled {
			r.retractRecord()
		}
		return fmt.Errorf("incremental: meta reconcile: %w", err)
	}
	r.stats.Comparisons += n
	r.lastKept = kept
	r.metaDirty = false
	return nil
}
