package incremental_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// The crash-recovery differential property: a resolver hard-stopped at ANY
// operation boundary — no graceful Close, with a torn final record left in
// the WAL by the append the crash interrupted — and reopened with
// OpenResolver is indistinguishable from a resolver that processed the same
// acknowledged operations without interruption: same handles, matches,
// clusters, blocks, restructured blocks and counters, bit for bit. And
// recovery is bounded: replay touches only the records journaled after the
// last snapshot, never the stream's full history.
//
// The tests drive randomized URI-addressed op scripts (fixed seeds) with
// reads at fixed checkpoints (reads mutate state under live meta-blocking,
// so every resolver — crashed, recovered, reference — follows the same read
// schedule), crash at a random op k, tear the WAL tail, recover, finish the
// script, and compare against uninterrupted in-memory references at both
// the crash point and the end.

// crashConfig is one crash-recovery scenario.
type crashConfig struct {
	kind      entity.Kind
	blocker   blocking.StreamableBlocker
	meta      *metablocking.MetaBlocker
	workers   int
	seed      int64
	ops       int
	snapEvery int
	rebase    int // DurableOptions.RebaseEvery (0 default chain, <0 full-only)
	mix       opMix
	sync      bool // fsync per append (slow; one scenario keeps it on)
}

func (cc crashConfig) String() string {
	s := fmt.Sprintf("%s/%s/w%d/%s/seed%d/snap%d", cc.kind, cc.blocker.Name(), cc.workers, cc.mix.name, cc.seed, cc.snapEvery)
	if cc.rebase != 0 {
		s += fmt.Sprintf("/rebase%d", cc.rebase)
	}
	if cc.meta != nil {
		s += "/" + cc.meta.Name()
	}
	if cc.sync {
		s += "/fsync"
	}
	return s
}

// generateScript derives a deterministic URI-addressed op script from the
// pool, honoring the mix the same way runDifferential does.
func generateScript(t *testing.T, kind entity.Kind, seed int64, n int, mix opMix) []incremental.Op {
	t.Helper()
	descs := pool(t, kind, seed)
	rng := rand.New(rand.NewSource(seed * 104729))
	liveIdx := map[int]bool{}
	var liveList []int
	removeLive := func(pos int) {
		liveList[pos] = liveList[len(liveList)-1]
		liveList = liveList[:len(liveList)-1]
	}
	chooseOp := func() incremental.OpKind {
		if len(liveList) == 0 {
			return incremental.OpInsert
		}
		weights := [3]int{mix.insert, mix.update, mix.delete}
		if len(liveList) == len(descs) {
			weights[0] = 0
		}
		roll := rng.Intn(weights[0] + weights[1] + weights[2])
		if roll < weights[0] {
			return incremental.OpInsert
		}
		if roll < weights[0]+weights[1] {
			return incremental.OpUpdate
		}
		return incremental.OpDelete
	}
	ops := make([]incremental.Op, 0, n)
	for len(ops) < n {
		switch chooseOp() {
		case incremental.OpInsert:
			pi := rng.Intn(len(descs))
			if liveIdx[pi] {
				continue
			}
			ops = append(ops, incremental.Op{
				Kind: incremental.OpInsert, URI: descs[pi].URI,
				Source: descs[pi].Source, Attrs: descs[pi].Attrs,
			})
			liveIdx[pi] = true
			liveList = append(liveList, pi)
		case incremental.OpUpdate:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			donor := descs[rng.Intn(len(descs))]
			ops = append(ops, incremental.Op{
				Kind: incremental.OpUpdate, URI: descs[pi].URI,
				Attrs: mutate(rng, descs[pi].Attrs, donor.Attrs),
			})
		default:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			ops = append(ops, incremental.Op{Kind: incremental.OpDelete, URI: descs[pi].URI})
			delete(liveIdx, pi)
			removeLive(pos)
		}
	}
	return ops
}

// tearTail appends a partial frame to the active WAL segment — the bytes a
// crash mid-append leaves behind: a header announcing 100 payload bytes
// with only a few present.
func tearTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to tear in %s: %v", dir, err)
	}
	active := segs[len(segs)-1] // zero-padded names: lexical max = highest seq
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	torn := append([]byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}, []byte(`{"op":"ins`)...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
}

// runCrashRecovery drives one scenario end to end.
func runCrashRecovery(t *testing.T, cc crashConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, cc.kind, cc.seed, cc.ops, cc.mix)
	rng := rand.New(rand.NewSource(cc.seed * 31337))
	k := 1 + rng.Intn(cc.ops-1) // the op boundary the crash hits

	// Reads happen after fixed op counts — plus the crash point, where the
	// recovered resolver is inspected — identically on every resolver.
	readAt := map[int]bool{k: true}
	for i := 60; i <= cc.ops; i += 60 {
		readAt[i] = true
	}
	applyRange := func(r *incremental.Resolver, from, to int) {
		t.Helper()
		ctx := context.Background()
		for i := from; i < to; i++ {
			if err := r.Apply(ctx, script[i]); err != nil {
				t.Fatalf("op %d (%s %s): %v", i, script[i].Kind, script[i].URI, err)
			}
			if readAt[i+1] {
				mustMatches(t, r)
			}
		}
	}
	cfg := incremental.Config{
		Kind: cc.kind, Blocker: cc.blocker, Matcher: matcher,
		Workers: cc.workers, Meta: cc.meta,
		Durable: incremental.DurableOptions{
			SnapshotEvery: cc.snapEvery,
			RebaseEvery:   cc.rebase,
			SegmentBytes:  4096, // small segments so scenarios exercise rotation
			NoSync:        !cc.sync,
		},
	}
	memCfg := cfg
	memCfg.Durable = incremental.DurableOptions{}

	// Run to the crash point; hard-stop (no Close) and tear the WAL tail.
	dir := t.TempDir()
	crashed, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyRange(crashed, 0, k)
	crashed.Abandon() // hard stop: drop the fds and the dir lock, no graceful close
	tearTail(t, dir)

	// Recover and check bounded replay.
	r, err := incremental.OpenResolver(dir, cfg)
	if err != nil {
		t.Fatalf("recovery at op %d: %v", k, err)
	}
	defer r.Close()
	rec := r.Recovery()
	if !rec.Recovered {
		t.Fatalf("recovery at op %d found no state", k)
	}
	if cc.meta == nil {
		if want := k % cc.snapEvery; rec.ReplayedRecords != want {
			t.Fatalf("crash at op %d, cadence %d: replayed %d records, want exactly the %d-record tail",
				k, cc.snapEvery, rec.ReplayedRecords, want)
		}
	} else if bound := 2*cc.snapEvery + 2; rec.ReplayedRecords > bound {
		// With meta-blocking the tail also holds journaled reconciles, at
		// most one per operation.
		t.Fatalf("crash at op %d, cadence %d: replayed %d records, beyond the %d-record tail bound",
			k, cc.snapEvery, rec.ReplayedRecords, bound)
	}
	if k >= cc.snapEvery && rec.SnapshotSegment == 0 {
		t.Fatalf("crash at op %d: recovery replayed the whole stream instead of restoring a snapshot", k)
	}

	// The recovered resolver equals an uninterrupted run of the
	// acknowledged prefix...
	refPrefix, err := incremental.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	applyRange(refPrefix, 0, k)
	assertSameResolverState(t, r, refPrefix)

	// ...and, after finishing the script, an uninterrupted run of the
	// whole of it — including the meta-blocking observables.
	applyRange(r, k, cc.ops)
	refFull, err := incremental.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	applyRange(refFull, 0, cc.ops)
	assertSameResolverState(t, r, refFull)
	if cc.meta != nil {
		if g, w := renderBlocks(mustRestructuredBlocks(t, r)), renderBlocks(mustRestructuredBlocks(t, refFull)); g != w {
			t.Fatalf("restructured blocks diverge after recovery:\ngot  %s\nwant %s", g, w)
		}
	}
	// The batch differential contract holds across the crash too.
	checkDifferential(t, r, diffConfig{kind: cc.kind, blocker: cc.blocker, meta: cc.meta}, matcher, cc.ops)
}

// TestCrashRecoveryDifferential is the durability acceptance matrix.
func TestCrashRecoveryDifferential(t *testing.T) {
	configs := []crashConfig{
		{kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, workers: 4,
			seed: 31, ops: 220, snapEvery: 25, mix: opMixes[1]},
		{kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, workers: 4,
			seed: 32, ops: 180, snapEvery: 20, mix: opMixes[0],
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}},
		{kind: entity.CleanClean, blocker: &blocking.TokenBlocking{}, workers: 4,
			seed: 33, ops: 180, snapEvery: 30, mix: opMixes[1]},
		{kind: entity.Dirty, blocker: &blocking.StandardBlocking{}, workers: 1,
			seed: 34, ops: 160, snapEvery: 15, mix: opMixes[2],
			meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}},
		{kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, workers: 2,
			seed: 35, ops: 60, snapEvery: 10, mix: opMixes[1], sync: true},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			if testing.Short() && cc.seed > 32 {
				t.Skip("short mode runs the first two crash scenarios only")
			}
			t.Parallel()
			runCrashRecovery(t, cc)
		})
	}
}

// TestCrashRecoveryEveryBoundary sweeps every op boundary of one compact
// scenario — not just a sampled crash point — so an off-by-one at a
// snapshot edge (crash exactly at, right before, right after a compaction)
// cannot hide behind a lucky random k.
func TestCrashRecoveryEveryBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("boundary sweep is long")
	}
	const ops, snapEvery = 40, 8
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, 77, ops, opMixes[1])
	cfg := incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 1,
		Durable: incremental.DurableOptions{SnapshotEvery: snapEvery, SegmentBytes: 1024, NoSync: true},
	}
	memCfg := cfg
	memCfg.Durable = incremental.DurableOptions{}
	ctx := context.Background()

	// One reference per prefix, advanced incrementally.
	ref, err := incremental.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= ops; k++ {
		dir := t.TempDir()
		crashed, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := crashed.Apply(ctx, script[i]); err != nil {
				t.Fatalf("boundary %d, op %d: %v", k, i, err)
			}
		}
		crashed.Abandon()
		tearTail(t, dir)
		r, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatalf("boundary %d: recovery: %v", k, err)
		}
		if err := ref.Apply(ctx, script[k-1]); err != nil {
			t.Fatalf("reference op %d: %v", k-1, err)
		}
		if want := k % snapEvery; r.Recovery().ReplayedRecords != want {
			t.Fatalf("boundary %d: replayed %d records, want %d", k, r.Recovery().ReplayedRecords, want)
		}
		assertSameResolverState(t, r, ref)
		r.Close()
	}
}
