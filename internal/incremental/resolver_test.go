package incremental

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/matching"
)

func person(uri, name, city string) *entity.Description {
	d := entity.NewDescription(uri)
	d.Add("name", name).Add("city", city)
	return d
}

func newTestResolver(t *testing.T, kind entity.Kind) *Resolver {
	t.Helper()
	r, err := New(Config{
		Kind:    kind,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResolverInsertMatch(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()
	a, err := r.Insert(ctx, person("u:a", "alice smith", "berlin"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Insert(ctx, person("u:b", "alice smith", "berlin"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, person("u:c", "completely different tokens", "elsewhere")); err != nil {
		t.Fatal(err)
	}
	m := mustMatches(t, r)
	if m.Len() != 1 || !m.Contains(a, b) {
		t.Fatalf("matches = %v, want exactly {%d,%d}", m.Pairs(), a, b)
	}
	if got := mustClusters(t, r); !reflect.DeepEqual(got, [][]entity.ID{{a, b}}) {
		t.Fatalf("clusters = %v", got)
	}
	st := mustStats(t, r)
	if st.Inserts != 3 || st.Live != 3 || st.Matches != 1 || st.Clusters != 1 {
		t.Fatalf("stats = %s", st)
	}
	if s := st.String(); !strings.Contains(s, "live=3") || !strings.Contains(s, "matches=1") {
		t.Fatalf("Stats.String() = %q", s)
	}
	if r.Kind() != entity.Dirty {
		t.Fatalf("Kind = %v", r.Kind())
	}
	// The materialized blocks must equal a batch token-blocking build over
	// the live descriptions (IDs coincide on an insert-only stream).
	snap, _ := mustSnapshot(t, r)
	want, err := (&blocking.TokenBlocking{}).Block(snap)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Blocks()
	if got.Len() != want.Len() || got.TotalComparisons() != want.TotalComparisons() {
		t.Fatalf("Blocks() has %d blocks / %d comparisons, batch build %d / %d",
			got.Len(), got.TotalComparisons(), want.Len(), want.TotalComparisons())
	}
}

func TestResolverDeleteSplitsCluster(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()
	// a-b and b-c match (shared tokens), a-c do not: b is the bridge.
	a, _ := r.Insert(ctx, person("u:a", "alice smith", "berlin"))
	b, err := r.Insert(ctx, person("u:b", "alice smith jones", "berlin paris"))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := r.Insert(ctx, person("u:c", "alice jones", "paris"))
	if !mustMatches(t, r).Contains(a, b) || !mustMatches(t, r).Contains(b, c) {
		t.Fatalf("expected bridge matches, got %v", mustMatches(t, r).Pairs())
	}
	if err := r.Delete(b); err != nil {
		t.Fatal(err)
	}
	m := mustMatches(t, r)
	for _, p := range m.Pairs() {
		if p.Contains(b) {
			t.Fatalf("deleted description still matched: %v", p)
		}
	}
	if _, ok := r.Get(b); ok {
		t.Fatal("deleted description still gettable")
	}
	if _, ok := r.Lookup("u:b"); ok {
		t.Fatal("deleted URI still resolvable")
	}
	// a and c must now be in different clusters (or singletons).
	for _, cl := range mustClusters(t, r) {
		has := func(id entity.ID) bool {
			for _, x := range cl {
				if x == id {
					return true
				}
			}
			return false
		}
		if has(a) && has(c) {
			t.Fatalf("cluster %v survived bridge deletion", cl)
		}
	}
}

func TestResolverUpdateRekeys(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()
	a, _ := r.Insert(ctx, person("u:a", "alice smith", "berlin"))
	b, _ := r.Insert(ctx, person("u:b", "alice smith", "berlin"))
	if !mustMatches(t, r).Contains(a, b) {
		t.Fatal("expected initial match")
	}
	// Rewriting b away from a's tokens must retire the match...
	if err := r.Update(ctx, b, []entity.Attribute{{Name: "name", Value: "totally unrelated"}}); err != nil {
		t.Fatal(err)
	}
	if mustMatches(t, r).Len() != 0 {
		t.Fatalf("matches after divergent update: %v", mustMatches(t, r).Pairs())
	}
	// ...and rewriting it back must rediscover it.
	if err := r.Update(ctx, b, []entity.Attribute{{Name: "name", Value: "alice smith"}, {Name: "city", Value: "berlin"}}); err != nil {
		t.Fatal(err)
	}
	if !mustMatches(t, r).Contains(a, b) {
		t.Fatal("match not rediscovered after convergent update")
	}
	if d, ok := r.Get(b); !ok || len(d.Attrs) != 2 {
		t.Fatalf("updated description = %v", d)
	}
}

func TestResolverErrors(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()
	if _, err := r.Insert(ctx, nil); err == nil {
		t.Fatal("nil insert accepted")
	}
	if _, err := r.Insert(ctx, person("u:a", "x", "y")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(ctx, person("u:a", "z", "w")); err == nil {
		t.Fatal("duplicate URI accepted")
	}
	if err := r.Update(ctx, 99, nil); err == nil {
		t.Fatal("update of unknown handle accepted")
	}
	if err := r.Delete(99); err == nil {
		t.Fatal("delete of unknown handle accepted")
	}
	d := &entity.Description{ID: -1, Source: 1, URI: "u:s1"}
	if _, err := r.Insert(ctx, d); err == nil {
		t.Fatal("dirty resolver accepted source 1")
	}

	if _, err := New(Config{Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}}}); err == nil {
		t.Fatal("nil blocker accepted")
	}
	if _, err := New(Config{Blocker: &blocking.TokenBlocking{}}); err == nil {
		t.Fatal("nil matcher accepted")
	}
	coll := entity.NewCollection(entity.Dirty)
	if _, err := New(Config{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: matching.NewTFIDFCosine(coll, nil), Threshold: 0.5},
	}); err == nil {
		t.Fatal("corpus-dependent matcher accepted")
	}
}

func TestResolverCancelledInsertRollsBack(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()
	if _, err := r.Insert(ctx, person("u:a", "alice smith", "berlin")); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Insert(cancelled, person("u:b", "alice smith", "berlin")); err == nil {
		t.Fatal("cancelled insert succeeded")
	}
	if _, ok := r.Lookup("u:b"); ok {
		t.Fatal("cancelled insert left its URI live")
	}
	if st := mustStats(t, r); st.Live != 1 || st.Matches != 0 {
		t.Fatalf("state after cancelled insert: %s", st)
	}
	// The stream keeps working afterwards, and the aborted attempt left no
	// trace in the comparison count: retrying yields exactly the one
	// comparison a clean insert performs.
	if _, err := r.Insert(ctx, person("u:b", "alice smith", "berlin")); err != nil {
		t.Fatal(err)
	}
	if mustMatches(t, r).Len() != 1 {
		t.Fatalf("matches = %d, want 1", mustMatches(t, r).Len())
	}
	if st := mustStats(t, r); st.Comparisons != 1 {
		t.Fatalf("comparisons = %d, want 1 (aborted deltas must not count)", st.Comparisons)
	}
}

func TestResolverCleanClean(t *testing.T) {
	r := newTestResolver(t, entity.CleanClean)
	ctx := context.Background()
	a, err := r.Insert(ctx, person("kb0:a", "alice smith", "berlin"))
	if err != nil {
		t.Fatal(err)
	}
	// Same-source twin must NOT match even with identical tokens.
	if _, err := r.Insert(ctx, person("kb0:a2", "alice smith", "berlin")); err != nil {
		t.Fatal(err)
	}
	d := person("kb1:a", "alice smith", "berlin")
	d.Source = 1
	b, err := r.Insert(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	m := mustMatches(t, r)
	if !m.Contains(a, b) {
		t.Fatal("cross-source match missing")
	}
	m.Each(func(p entity.Pair) bool {
		da, _ := r.Get(p.A)
		db, _ := r.Get(p.B)
		if da.Source == db.Source {
			t.Fatalf("same-source pair matched: %v", p)
		}
		return true
	})
}

// failingWriter errors after n bytes, covering the encode error path.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n -= len(p); w.n < 0 {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestWriteOpsError(t *testing.T) {
	ops := []Op{{Kind: OpInsert, URI: "u:a", Attrs: []entity.Attribute{{Name: "n", Value: strings.Repeat("x", 4096)}}}}
	if err := WriteOps(&failingWriter{n: 16}, ops); err == nil {
		t.Fatal("WriteOps on a failing writer succeeded")
	}
}

func TestOpLogRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, URI: "u:a", Attrs: []entity.Attribute{{Name: "name", Value: "alice \"quoted\" smith"}}},
		{Kind: OpInsert, URI: "u:b", Source: 0, Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}}},
		{Kind: OpUpdate, URI: "u:a", Attrs: []entity.Attribute{{Name: "name", Value: "alice jones"}}},
		{Kind: OpDelete, URI: "u:b"},
	}
	var buf bytes.Buffer
	if err := WriteOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOps(strings.NewReader("# a comment\n\n" + buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, ops)
	}

	if _, err := ReadOps(strings.NewReader(`{"op":"frobnicate","uri":"u:x"}`)); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	if _, err := ReadOps(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestApplyOps(t *testing.T) {
	r := newTestResolver(t, entity.Dirty)
	ctx := context.Background()
	ops := []Op{
		{Kind: OpInsert, URI: "u:a", Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}, {Name: "city", Value: "berlin"}}},
		{Kind: OpInsert, URI: "u:b", Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}, {Name: "city", Value: "berlin"}}},
		{Kind: OpUpdate, URI: "u:b", Attrs: []entity.Attribute{{Name: "name", Value: "someone else entirely"}}},
		{Kind: OpDelete, URI: "u:a"},
	}
	for i, op := range ops {
		if err := r.Apply(ctx, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if st := mustStats(t, r); st.Live != 1 || st.Matches != 0 || st.Inserts != 2 || st.Updates != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %s", st)
	}
	if err := r.Apply(ctx, Op{Kind: OpUpdate, URI: "u:missing"}); err == nil {
		t.Fatal("update of unknown URI accepted")
	}
	if err := r.Apply(ctx, Op{Kind: OpDelete, URI: "u:missing"}); err == nil {
		t.Fatal("delete of unknown URI accepted")
	}
	if err := r.Apply(ctx, Op{Kind: OpKind(42)}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
}
