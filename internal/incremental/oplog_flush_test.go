package incremental_test

import (
	"fmt"
	"strings"
	"testing"

	"entityres/internal/entity"
	"entityres/internal/incremental"
)

// failingWriter accepts capacity bytes, then errors on every write.
type failingWriter struct{ capacity int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.capacity <= 0 {
		return 0, fmt.Errorf("sink full")
	}
	if len(p) > w.capacity {
		n := w.capacity
		w.capacity = 0
		return n, fmt.Errorf("sink full")
	}
	w.capacity -= len(p)
	return len(p), nil
}

// TestWriteOpsSurfacesSinkErrors: WriteOps buffers through a bufio.Writer,
// so a sink error can only surface at flush time — it must be checked on
// every return path, including the early return of a mid-stream failure.
func TestWriteOpsSurfacesSinkErrors(t *testing.T) {
	op := incremental.Op{Kind: incremental.OpInsert, URI: "u:x",
		Attrs: []entity.Attribute{{Name: "name", Value: strings.Repeat("v", 64)}}}

	// Small batch: every encode lands in the buffer, only the final flush
	// touches the broken sink.
	if err := incremental.WriteOps(&failingWriter{}, []incremental.Op{op}); err == nil {
		t.Fatal("WriteOps swallowed the final-flush error")
	}
	// Large batch: the buffer fills mid-loop, the encoder hits the sink
	// error early, and WriteOps returns it (with the deferred flush not
	// masking it).
	big := make([]incremental.Op, 256)
	for i := range big {
		big[i] = op
	}
	err := incremental.WriteOps(&failingWriter{capacity: 512}, big)
	if err == nil {
		t.Fatal("WriteOps swallowed a mid-stream sink error")
	}
	if !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("sink error not propagated: %v", err)
	}
	// A healthy sink round-trips.
	var sb strings.Builder
	if err := incremental.WriteOps(&sb, []incremental.Op{op}); err != nil {
		t.Fatal(err)
	}
	got, err := incremental.ReadOps(strings.NewReader(sb.String()))
	if err != nil || len(got) != 1 || got[0].URI != "u:x" {
		t.Fatalf("round trip: %v, %v", got, err)
	}
}
