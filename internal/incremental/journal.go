// The resolver's durable storage layer: every Insert, Update and Delete is
// journaled through a pluggable Journal BEFORE it is applied, so a
// WAL-backed journal (wal.Log segments + snapshot compaction) can restore a
// crashed resolver to exactly the state the acknowledged operations built.
//
// The write path is journal-then-apply with retraction: the operation's
// Record is durably appended first; if the apply then fails (the only
// non-validation failure is context cancellation inside delta matching),
// the record is truncated back out of the log, so the journal always holds
// exactly the operations the caller saw succeed. A rolled-back insert still
// burns a collection slot in memory; replay reproduces burned slots from
// the handle gaps the surviving insert records exhibit, keeping recovered
// handles identical to the original run's.
//
// Compaction bounds recovery: every DurableOptions.SnapshotEvery journaled
// records the resolver rotates the log, writes a snapshot of its full state
// (surviving descriptions with their blocking keys, match graph, weighted
// blocking graph, matcher-decision cache, counters) named after the new
// active segment, and deletes the segments the snapshot covers. OpenResolver
// restores the latest snapshot and replays only the tail — the records
// journaled after it.
package incremental

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"entityres/internal/entity"
	"entityres/internal/wal"
)

// replayCtx is the context recovery replays under: replay never cancels,
// so every journaled operation re-applies deterministically.
var replayCtx = context.Background()

// Record is one resolver operation in its journaled, replayable form.
type Record struct {
	// Kind is the operation.
	Kind OpKind
	// Seq, when non-zero, marks a routed-stream record (see routed.go): the
	// coordinator's global operation sequence number, journaled so recovery
	// restores exactly the acknowledged prefix of the stream and replays the
	// record through the routed apply path.
	Seq uint64
	// Advance marks a routed slot-advance record — no payload, only slot
	// space and counter alignment. Meaningful only with Seq set.
	Advance bool
	// ID is the handle the operation targets — for inserts, the handle the
	// resolver is about to assign, which replay verifies (and uses to
	// reproduce slots burned by rolled-back inserts).
	ID entity.ID
	// URI and Source describe an inserted description.
	URI    string
	Source int
	// Attrs is the full attribute set (insert, update).
	Attrs []entity.Attribute
	// Batch holds the sub-records of an OpBatch record — the operations of
	// one ApplyBatch call, journaled as a single append and replayed
	// atomically. Empty for every other kind.
	Batch []Record
}

// Journal persists the resolver's operation stream ahead of application.
// The in-memory resolver runs on the no-op implementation; OpenResolver
// installs the WAL-backed one. Implementations are called with the
// resolver's mutex held and need not be safe for concurrent use.
type Journal interface {
	// Record durably appends rec before the resolver applies it.
	Record(rec Record) error
	// Rollback retracts the most recently recorded record after its apply
	// failed, so the journal holds exactly the acknowledged operations.
	Rollback() error
	// Checkpoint durably persists an encoded snapshot (full, or a delta
	// chain link) and truncates the journal so recovery replays only
	// records appended after this call. It returns the sequence number the
	// snapshot file is named after — the parent a subsequent delta names.
	// keepFrom is the oldest snapshot still needed (the chain's full
	// anchor); 0 means the new snapshot is self-contained and supersedes
	// everything before itself.
	Checkpoint(snapshot []byte, keepFrom uint64) (uint64, error)
	// Close releases the journal. Already-journaled records stay durable.
	Close() error
}

// nopJournal is the in-memory resolver's journal: nothing is persisted,
// nothing is replayed — the pre-durability behavior, at zero cost.
type nopJournal struct{}

func (nopJournal) Record(Record) error                       { return nil }
func (nopJournal) Rollback() error                           { return nil }
func (nopJournal) Checkpoint([]byte, uint64) (uint64, error) { return 0, nil }
func (nopJournal) Close() error                              { return nil }

// DurableOptions tunes the WAL-backed journal behind OpenResolver. New
// ignores it.
type DurableOptions struct {
	// SegmentBytes rotates the active WAL segment once it would exceed this
	// size (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// SnapshotEvery compacts — snapshot plus WAL truncation — after this
	// many journaled operations (default DefaultSnapshotEvery; negative
	// disables automatic compaction, leaving cadence to explicit Compact
	// calls).
	SnapshotEvery int
	// NoSync skips the per-append fsync. A process crash loses nothing (the
	// page cache survives it); a machine crash may lose operations
	// acknowledged since the last sync. For tests, benchmarks and workloads
	// that can afford to replay.
	NoSync bool
	// RebaseEvery bounds the delta-snapshot chain: after this many delta
	// links a checkpoint rebases — writes a full snapshot — so recovery's
	// chain walk and the disk the retained links occupy stay bounded
	// (default DefaultRebaseEvery; negative disables delta snapshots
	// entirely, making every checkpoint full).
	RebaseEvery int
	// GroupCommit batches the fsyncs of concurrent journal appenders into
	// group syncs (wal.Options.GroupCommit): every operation is still
	// durable before it is acknowledged, but one fsync can cover many.
	// Batching requires concurrent appenders on one log; a resolver
	// serializes its own operations, so with a single writer the mode is
	// sync-for-sync identical to per-op fsync. The sharded resolver
	// enables it on every per-shard WAL so concurrent ingestion (the
	// multi-process-transport follow-on) batches automatically.
	GroupCommit bool
}

// DefaultSnapshotEvery is the automatic compaction cadence when
// DurableOptions.SnapshotEvery is zero.
const DefaultSnapshotEvery = 1024

// ShardedManifestName is the marker file a sharded deployment root
// (package sharded) pins its layout with. It lives here — the one durable
// layer both deployment forms build on — so the single-node OpenResolver
// and the sharded coordinator agree on it from a single definition and
// can refuse to open each other's directories.
const ShardedManifestName = "shards.manifest"

// RecoveryInfo describes what OpenResolver restored.
type RecoveryInfo struct {
	// Recovered reports whether existing state was found in the directory.
	Recovered bool
	// SnapshotSegment is the WAL segment the restored snapshot is named
	// after — replay started there; 0 when no snapshot was found.
	SnapshotSegment uint64
	// ReplayedRecords counts the journal records replayed after the
	// snapshot: the recovery cost, bounded by the tail of the stream —
	// at most SnapshotEvery operations plus their interleaved reconcile
	// records (each requires a preceding operation, so the tail never
	// exceeds twice the compaction cadence) — never by its lifetime.
	ReplayedRecords int
}

// recordJSON is the wire form of a journal record, one JSON object per WAL
// frame.
type recordJSON struct {
	Op     string       `json:"op"`
	Seq    uint64       `json:"seq,omitempty"`
	Adv    bool         `json:"adv,omitempty"`
	ID     int          `json:"id"`
	URI    string       `json:"uri,omitempty"`
	Source int          `json:"source,omitempty"`
	Attrs  []attrJSON   `json:"attrs,omitempty"`
	Ops    []recordJSON `json:"ops,omitempty"`
}

// recordToJSON renders a record in its wire form; shared by the WAL frame
// encoder and both snapshot codecs' preserved last record. An OpBatch
// record nests its sub-records under Ops.
func recordToJSON(rec Record) recordJSON {
	j := recordJSON{Op: rec.Kind.String(), Seq: rec.Seq, Adv: rec.Advance, ID: rec.ID, URI: rec.URI, Source: rec.Source}
	for _, a := range rec.Attrs {
		j.Attrs = append(j.Attrs, attrJSON{Name: a.Name, Value: a.Value})
	}
	for _, sub := range rec.Batch {
		j.Ops = append(j.Ops, recordToJSON(sub))
	}
	return j
}

// encodeRecord serializes a record for the WAL.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(recordToJSON(rec))
	if err != nil {
		return nil, fmt.Errorf("incremental: encoding journal record: %w", err)
	}
	return payload, nil
}

// decodeRecord parses a WAL frame back into a record.
func decodeRecord(payload []byte) (Record, error) {
	var j recordJSON
	if err := json.Unmarshal(payload, &j); err != nil {
		return Record{}, fmt.Errorf("incremental: decoding journal record: %w", err)
	}
	return recordFromJSON(j)
}

// recordFromJSON converts the wire form back into a record; shared by the
// WAL frame decoder and the snapshot codec's preserved last record.
func recordFromJSON(j recordJSON) (Record, error) {
	rec := Record{Seq: j.Seq, Advance: j.Adv, ID: j.ID, URI: j.URI, Source: j.Source}
	switch j.Op {
	case "insert":
		rec.Kind = OpInsert
	case "update":
		rec.Kind = OpUpdate
	case "delete":
		rec.Kind = OpDelete
	case "reconcile":
		rec.Kind = OpReconcile
	case "batch":
		rec.Kind = OpBatch
		for i, sub := range j.Ops {
			srec, err := recordFromJSON(sub)
			if err != nil {
				return Record{}, fmt.Errorf("incremental: batch sub-record %d: %w", i, err)
			}
			rec.Batch = append(rec.Batch, srec)
		}
	default:
		return Record{}, fmt.Errorf("incremental: journal record has unknown op %q", j.Op)
	}
	for _, a := range j.Attrs {
		rec.Attrs = append(rec.Attrs, entity.Attribute{Name: a.Name, Value: a.Value})
	}
	return rec, nil
}

// walJournal is the WAL-backed journal: records go to fsync'd segment
// files, checkpoints to atomically-renamed snapshot files named after the
// segment replay resumes from.
type walJournal struct {
	log      *wal.Log
	dir      string
	last     wal.Position
	haveLast bool
}

func (j *walJournal) Record(rec Record) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	pos, err := j.log.Append(payload)
	if err != nil {
		return fmt.Errorf("incremental: journal append: %w", err)
	}
	j.last, j.haveLast = pos, true
	return nil
}

func (j *walJournal) Rollback() error {
	if !j.haveLast {
		return fmt.Errorf("incremental: journal rollback without a recorded operation")
	}
	j.haveLast = false
	if err := j.log.TruncateTo(j.last); err != nil {
		return fmt.Errorf("incremental: journal rollback: %w", err)
	}
	return nil
}

func (j *walJournal) Checkpoint(snapshot []byte, keepFrom uint64) (uint64, error) {
	seq, err := j.log.Rotate()
	if err != nil {
		return 0, fmt.Errorf("incremental: checkpoint rotate: %w", err)
	}
	j.haveLast = false
	if err := wal.WriteFileAtomic(filepath.Join(j.dir, snapshotFile(seq)), snapshot); err != nil {
		return 0, fmt.Errorf("incremental: writing snapshot: %w", err)
	}
	// The snapshot is durable: every record before it is dead weight (a
	// delta link's history lives in the retained chain snapshots, not in
	// segments). A crash between these steps only leaves garbage that the
	// next checkpoint removes; recovery always anchors on the newest
	// snapshot and walks its chain, every link of which is kept below.
	if err := j.log.RemoveSegmentsBefore(seq); err != nil {
		return 0, fmt.Errorf("incremental: pruning segments: %w", err)
	}
	if keepFrom == 0 || keepFrom > seq {
		keepFrom = seq
	}
	if err := removeSnapshotsBefore(j.dir, keepFrom); err != nil {
		return 0, err
	}
	return seq, nil
}

func (j *walJournal) Close() error { return j.log.Close() }

// snapshotFile names the snapshot covering every record before segment seq.
func snapshotFile(seq uint64) string {
	return fmt.Sprintf("snapshot-%016d.snap", seq)
}

// listSnapshots returns the snapshot sequence numbers in dir, ascending.
// Snapshot files follow the WAL's numbered-file naming, so the listing is
// the wal package's.
func listSnapshots(dir string) ([]uint64, error) {
	seqs, err := wal.ListNumberedFiles(dir, "snapshot-", ".snap")
	if err != nil {
		return nil, fmt.Errorf("incremental: %w", err)
	}
	return seqs, nil
}

// removeSnapshotsBefore deletes superseded snapshot files.
func removeSnapshotsBefore(dir string, seq uint64) error {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s >= seq {
			break
		}
		if err := os.Remove(filepath.Join(dir, snapshotFile(s))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("incremental: pruning snapshot %d: %w", s, err)
		}
	}
	return nil
}

// OpenResolver opens a durable streaming resolver backed by a write-ahead
// log in dir, creating the directory on first use. An existing directory is
// recovered: the newest snapshot is restored (its configuration fingerprint
// — kind, blocker, matcher, meta-blocker — must match cfg, or OpenResolver
// fails rather than silently diverge), the WAL tail is replayed through the
// normal apply path, and a torn final record left by a crash mid-append is
// truncated away by the WAL layer. The recovered resolver is
// indistinguishable from one that processed the acknowledged operations
// without interruption: same handles, matches, clusters, blocks and
// counters.
//
// Every subsequent operation is journaled (fsync'd unless
// cfg.Durable.NoSync) before it is applied, and every
// cfg.Durable.SnapshotEvery operations the journal is compacted into a
// fresh snapshot so recovery replays only the tail. Close the resolver to
// release the journal; a resolver that is never closed loses nothing
// beyond, at worst, the single operation a crash interrupts — which its
// caller never saw acknowledged.
func OpenResolver(dir string, cfg Config) (*Resolver, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// A sharded deployment's root (package sharded) holds per-shard
	// journals in shard-%03d subdirectories; opening it as a single-node
	// directory would start a fresh journal beside them and silently
	// ignore the real state.
	if _, serr := os.Stat(filepath.Join(dir, ShardedManifestName)); serr == nil {
		return nil, fmt.Errorf("incremental: %s is a sharded resolver directory (%s present); open it with the sharded resolver", dir, ShardedManifestName)
	}
	log, err := wal.Open(dir, wal.Options{SegmentBytes: cfg.Durable.SegmentBytes, NoSync: cfg.Durable.NoSync, GroupCommit: cfg.Durable.GroupCommit})
	if err != nil {
		return nil, fmt.Errorf("incremental: opening wal: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			log.Close()
		}
	}()

	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	var from uint64
	if len(snaps) > 0 {
		// Restore the newest snapshot's chain: its full anchor, then every
		// delta link in order, with the membership observer detached until
		// the chain has applied.
		tip := snaps[len(snaps)-1]
		full, fullSeq, deltas, err := loadSnapshotChain(dir, tip)
		if err != nil {
			return nil, err
		}
		if err := r.restoreFull(full); err != nil {
			return nil, err
		}
		for i := len(deltas) - 1; i >= 0; i-- {
			if err := r.applyDeltaSnapshot(deltas[i]); err != nil {
				return nil, err
			}
		}
		r.finishRestore()
		from = tip
		r.recovery.SnapshotSegment = tip
		r.snapParent = tip
		r.chainAnchor = fullSeq
		r.chainLen = len(deltas)
	}
	// The tracker rides every mutation from here on — the replayed tail is
	// dirt relative to the restored chain tip, exactly what the next delta
	// snapshot must carry.
	r.snapTrack = newSnapTracker()
	if r.weighted != nil {
		r.snapTrack.wg = r.weighted.Track()
	}
	replayed, err := log.Replay(from, func(payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		return r.replayRecord(rec)
	})
	if err != nil {
		return nil, fmt.Errorf("incremental: wal replay: %w", err)
	}
	r.recovery.ReplayedRecords = replayed
	r.recovery.Recovered = len(snaps) > 0 || replayed > 0

	r.journal = &walJournal{log: log, dir: dir}
	r.snapEvery = cfg.Durable.SnapshotEvery
	if r.snapEvery == 0 {
		r.snapEvery = DefaultSnapshotEvery
	}
	if r.snapEvery < 0 {
		r.snapEvery = 0
	}
	r.sinceSnap = replayed
	// Checkpoint right away when the directory has no snapshot (first open,
	// or snapshots lost) or the replayed tail already exceeds the cadence —
	// every recovery then anchors on a snapshot, and the configuration
	// fingerprint becomes durable from the first operation on.
	if len(snaps) == 0 || (r.snapEvery > 0 && r.sinceSnap >= r.snapEvery) {
		if err := r.compactLocked(); err != nil {
			return nil, err
		}
	}
	ok = true
	return r, nil
}

// Compact forces a checkpoint now: the resolver's full state is snapshot
// and the journal truncated, independent of the automatic cadence. A no-op
// (with a no-op journal) for in-memory resolvers.
func (r *Resolver) Compact() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	return r.compactLocked()
}

// Close seals the resolver's journal. Reads keep working on the in-memory
// state; mutating operations fail afterwards. Closing an in-memory resolver
// only disables further mutation.
func (r *Resolver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken == errClosed {
		return nil
	}
	r.broken = errClosed
	return r.journal.Close()
}

// Recovery reports what OpenResolver restored; the zero value for resolvers
// built with New or opened on a fresh directory.
func (r *Resolver) Recovery() RecoveryInfo {
	r.rlock()
	defer r.mu.RUnlock()
	return r.recovery
}

// LastRecord returns the most recently applied operation in its journaled,
// replayable form — tracked across restarts (it is part of the snapshot,
// so compaction never loses it). The sharded coordinator uses it to repair
// a whole-process crash that interrupted a fan-out between shards: the
// shard whose journal runs one operation ahead donates the record so the
// others can roll forward to the same point.
func (r *Resolver) LastRecord() (Record, bool) {
	r.rlock()
	defer r.mu.RUnlock()
	if r.lastRecord == nil {
		return Record{}, false
	}
	return *r.lastRecord, true
}

// SpanOps reports how many stream operations the record carries: the batch
// length for an OpBatch record, 1 for everything else. Crash repair uses it
// to size the window a single lost append can open.
func (rec Record) SpanOps() int64 {
	if rec.Kind == OpBatch {
		return int64(len(rec.Batch))
	}
	return 1
}

var errClosed = fmt.Errorf("incremental: resolver is closed")

// ErrBroken marks a resolver whose journal has diverged from memory — a
// reconcile could not be journaled, or a rollback after a failed apply
// itself failed. Every further mutation AND every reconciling read fails
// with an error wrapping it (errors.Is(err, ErrBroken)): the in-memory
// state may still be readable, but serving it while the log cannot
// reproduce it would hide the divergence until the next crash made it
// permanent. The durable state on disk stays consistent — it holds exactly
// the journaled prefix — so closing and reopening the directory recovers a
// working resolver at the last acknowledged operation.
var ErrBroken = errors.New("incremental: journal diverged from memory; resolver disabled")

// maybeCompact advances the compaction cadence after a journaled operation.
// Callers hold r.mu.
func (r *Resolver) maybeCompact() error {
	if r.snapEvery <= 0 {
		return nil
	}
	r.sinceSnap++
	if r.sinceSnap < r.snapEvery {
		return nil
	}
	return r.compactLocked()
}

// rebaseEvery resolves the configured delta-chain bound (see
// DurableOptions.RebaseEvery): 0 means delta snapshots are disabled.
func (r *Resolver) rebaseEvery() int {
	switch {
	case r.cfg.Durable.RebaseEvery == 0:
		return DefaultRebaseEvery
	case r.cfg.Durable.RebaseEvery < 0:
		return 0
	default:
		return r.cfg.Durable.RebaseEvery
	}
}

// compactLocked checkpoints the resolver through the journal: a delta
// chain link when a parent snapshot exists, the tracker's dirt covers the
// divergence from it and the chain is still under its rebase bound; a full
// snapshot otherwise. Callers hold r.mu.
func (r *Resolver) compactLocked() error {
	useDelta := r.snapTrack != nil && !r.snapTrack.full &&
		r.snapParent != 0 && r.chainLen < r.rebaseEvery()
	var (
		payload      []byte
		slots, pairs int
		keepFrom     uint64
		err          error
	)
	if useDelta {
		payload, slots, pairs, err = r.encodeDeltaSnapshot()
		keepFrom = r.chainAnchor
	} else {
		payload, slots, pairs, err = r.encodeSnapshot()
	}
	if err != nil {
		return fmt.Errorf("incremental: encoding snapshot: %w", err)
	}
	seq, err := r.journal.Checkpoint(payload, keepFrom)
	if err != nil {
		// Encoding drained the tracker into the failed payload; its dirt no
		// longer covers the divergence from the durable parent, so the next
		// checkpoint must be full.
		if r.snapTrack != nil {
			r.snapTrack.full = true
		}
		return fmt.Errorf("incremental: compaction (the triggering operation is applied and durable): %w", err)
	}
	if seq != 0 {
		r.snapParent = seq
		if useDelta {
			r.chainLen++
		} else {
			r.chainAnchor, r.chainLen = seq, 0
		}
	}
	if r.snapTrack != nil {
		r.snapTrack.full = false
	}
	if useDelta {
		r.perf.DeltaSnapshots++
	} else {
		r.perf.FullSnapshots++
	}
	r.perf.SnapshotSlots += int64(slots)
	r.perf.SnapshotPairs += int64(pairs)
	r.sinceSnap = 0
	return nil
}

// retractRecord rolls the journal back after a failed apply. If the
// rollback itself fails the journal no longer mirrors memory, so the
// resolver refuses every further mutation rather than let the divergence
// reach disk. Callers hold r.mu.
func (r *Resolver) retractRecord() {
	if err := r.journal.Rollback(); err != nil {
		r.broken = fmt.Errorf("%w: journal rollback failed: %v", ErrBroken, err)
	}
}

// replayRecord re-applies one journaled operation during recovery, under a
// background context (replay never cancels). Handle gaps between the next
// free slot and an insert record's assigned handle reproduce the slots that
// rolled-back inserts burned in the original run.
func (r *Resolver) replayRecord(rec Record) error {
	if rec.Seq > 0 {
		// A routed-stream record (see routed.go): replayed through the routed
		// apply path, which advances the acknowledged sequence number and
		// tolerates the states routing creates (placeholder slots,
		// materializing updates) that the direct path below refuses.
		return r.replayRouted(rec)
	}
	switch rec.Kind {
	case OpInsert:
		if rec.ID < r.coll.Len() {
			return fmt.Errorf("incremental: journal insert assigns handle %d but %d slots already exist", rec.ID, r.coll.Len())
		}
		for r.coll.Len() < rec.ID {
			r.burnSlot()
		}
		d := &entity.Description{ID: -1, URI: rec.URI, Source: rec.Source, Attrs: rec.Attrs}
		id, err := r.applyInsert(replayCtx, d)
		if err != nil {
			return fmt.Errorf("incremental: replaying insert of %q: %w", rec.URI, err)
		}
		if id != rec.ID {
			return fmt.Errorf("incremental: replay assigned handle %d, journal recorded %d", id, rec.ID)
		}
		return nil
	case OpUpdate:
		if !r.isLive(rec.ID) {
			return fmt.Errorf("incremental: journal updates handle %d, which is not live at this point of the log", rec.ID)
		}
		if err := r.applyUpdate(replayCtx, rec.ID, rec.Attrs); err != nil {
			return fmt.Errorf("incremental: replaying update of %d: %w", rec.ID, err)
		}
		return nil
	case OpDelete:
		if !r.isLive(rec.ID) {
			return fmt.Errorf("incremental: journal deletes handle %d, which is not live at this point of the log", rec.ID)
		}
		r.applyDelete(rec.ID)
		return nil
	case OpReconcile:
		// Re-run the deferred meta-blocking reconcile at the same point of
		// the stream the original read performed it: the evaluated pairs,
		// cached decisions and comparison counts come out identical. During
		// replay the journal is still the no-op one, so this does not
		// re-journal.
		if err := r.reconcile(replayCtx); err != nil {
			return fmt.Errorf("incremental: replaying reconcile: %w", err)
		}
		return nil
	case OpBatch:
		// One WAL frame holds the whole batch, so recovery sees it all or
		// not at all: a torn final append is truncated away by the WAL layer
		// before replay starts, and a decoded batch replays every sub-record.
		for i := range rec.Batch {
			if err := r.replayRecord(rec.Batch[i]); err != nil {
				return fmt.Errorf("incremental: batch sub-record %d: %w", i, err)
			}
		}
		cp := rec
		r.lastRecord = &cp
		return nil
	default:
		return fmt.Errorf("incremental: journal record has unknown kind %v", rec.Kind)
	}
}

// burnSlot occupies the next collection slot with a dead placeholder — the
// replay-side image of an insert that was journaled, failed to apply, and
// was retracted, but had already consumed the slot.
func (r *Resolver) burnSlot() {
	r.markSlot(r.coll.Len())
	r.coll.MustAdd(&entity.Description{ID: -1})
	r.live = append(r.live, false)
}
