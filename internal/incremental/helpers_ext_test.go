package incremental_test

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
)

// External-package mirror of helpers_test.go: the error-returning read
// API makes every reconciling read two-valued; these helpers keep test
// bodies on the happy path and fail loudly on the rest.

func mustStats(t testing.TB, r *incremental.Resolver) incremental.Stats {
	t.Helper()
	st, err := r.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	return st
}

func mustMatches(t testing.TB, r *incremental.Resolver) *entity.Matches {
	t.Helper()
	m, err := r.Matches()
	if err != nil {
		t.Fatalf("Matches: %v", err)
	}
	return m
}

func mustClusters(t testing.TB, r *incremental.Resolver) [][]entity.ID {
	t.Helper()
	cl, err := r.Clusters()
	if err != nil {
		t.Fatalf("Clusters: %v", err)
	}
	return cl
}

func mustSnapshot(t testing.TB, r *incremental.Resolver) (*entity.Collection, *entity.Matches) {
	t.Helper()
	coll, m, err := r.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return coll, m
}

func mustMatchedWith(t testing.TB, r *incremental.Resolver, id entity.ID) []entity.ID {
	t.Helper()
	ids, err := r.MatchedWith(id)
	if err != nil {
		t.Fatalf("MatchedWith(%d): %v", id, err)
	}
	return ids
}

func mustRestructuredBlocks(t testing.TB, r *incremental.Resolver) *blocking.Blocks {
	t.Helper()
	bl, err := r.RestructuredBlocks()
	if err != nil {
		t.Fatalf("RestructuredBlocks: %v", err)
	}
	return bl
}
