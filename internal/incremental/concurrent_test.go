package incremental_test

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// The concurrent differential property: a fleet of reader goroutines
// hammering the whole read surface while a writer streams operations
// (per-op AND batched) must observe only pre- or post-op states — every
// read internally consistent — and the final resolver state must be
// bit-exact with a sequential replay of the same script AND with the
// from-scratch batch pipeline. CI runs this suite under -race; the
// invariants below catch torn state a race detector cannot (a reader
// that sees inserts ahead of the live count tore an op even if every
// individual word was synchronized).

func recordOf(op incremental.Op) incremental.Record {
	// ID -1 addresses the record by URI (PlanBatch resolves the handle).
	return incremental.Record{Kind: op.Kind, ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
}

// applyScript streams the script into r the way a served deployment sees
// it: mostly per-op, with every fourth chunk applied as one batch.
func applyScript(ctx context.Context, t *testing.T, r *incremental.Resolver, script []incremental.Op) {
	t.Helper()
	const chunk = 6
	for i := 0; i < len(script); {
		end := min(i+chunk, len(script))
		if (i/chunk)%4 == 3 {
			recs := make([]incremental.Record, 0, end-i)
			for _, op := range script[i:end] {
				recs = append(recs, recordOf(op))
			}
			if err := r.ApplyBatch(ctx, recs); err != nil {
				t.Errorf("batch at op %d: %v", i, err)
				return
			}
		} else {
			for j, op := range script[i:end] {
				if err := r.Apply(ctx, op); err != nil {
					t.Errorf("op %d (%s %s): %v", i+j, op.Kind, op.URI, err)
					return
				}
			}
		}
		i = end
	}
}

// readerLoop hammers the read surface until done closes, asserting per-read
// internal consistency — the pre-or-post-op atomicity evidence.
func readerLoop(t *testing.T, r *incremental.Resolver, uris []string, done <-chan struct{}, g int) {
	var last incremental.Stats
	rng := rand.New(rand.NewSource(int64(g) * 31))
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		switch i % 5 {
		case 0:
			st, err := r.Stats()
			if err != nil {
				t.Errorf("reader %d: stats: %v", g, err)
				return
			}
			// A torn op would surface here: Live is maintained with the
			// counters under the same lock, so their identity must hold on
			// EVERY read, and the cumulative counters never run backwards.
			if int64(st.Live) != st.Inserts-st.Deletes {
				t.Errorf("reader %d: torn stats: live %d != %d inserts - %d deletes", g, st.Live, st.Inserts, st.Deletes)
				return
			}
			if st.Inserts < last.Inserts || st.Updates < last.Updates || st.Deletes < last.Deletes {
				t.Errorf("reader %d: counters ran backwards: %+v then %+v", g, last, st)
				return
			}
			last = st
		case 1:
			// Snapshot returns a (collection, matches) pair taken under one
			// lock: every matched handle must resolve in the collection.
			snap, matches, err := r.Snapshot()
			if err != nil {
				t.Errorf("reader %d: snapshot: %v", g, err)
				return
			}
			for _, p := range matches.Pairs() {
				if snap.Get(p.A) == nil || snap.Get(p.B) == nil {
					t.Errorf("reader %d: match %v-%v dangles outside its own snapshot", g, p.A, p.B)
					return
				}
			}
		case 2:
			cs, err := r.Clusters()
			if err != nil {
				t.Errorf("reader %d: clusters: %v", g, err)
				return
			}
			seen := map[entity.ID]bool{}
			for _, c := range cs {
				for _, id := range c {
					if seen[id] {
						t.Errorf("reader %d: handle %d in two clusters", g, id)
						return
					}
					seen[id] = true
				}
			}
		case 3:
			if _, err := r.Matches(); err != nil {
				t.Errorf("reader %d: matches: %v", g, err)
				return
			}
		default:
			// Point reads: a URI may legitimately be dead between Lookup and
			// MatchedWith (two separate reads); only internal failures count.
			uri := uris[rng.Intn(len(uris))]
			if id, ok := r.Lookup(uri); ok {
				if _, err := r.MatchedWith(id); err != nil {
					// Deleted in between — a valid interleaving, not a tear.
					continue
				}
			}
		}
	}
}

// concurrentConfig is one concurrent differential scenario.
type concurrentConfig struct {
	name    string
	meta    *metablocking.MetaBlocker
	readers int
	ops     int
	seed    int64
}

func runConcurrentDifferential(t *testing.T, cc concurrentConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	blocker := &blocking.TokenBlocking{}
	newResolver := func() *incremental.Resolver {
		r, err := incremental.New(incremental.Config{
			Kind: entity.Dirty, Blocker: blocker, Matcher: matcher, Workers: 4, Meta: cc.meta,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	script := generateScript(t, entity.Dirty, cc.seed, cc.ops, opMixes[1])
	uris := make([]string, 0, len(script))
	for _, op := range script {
		if op.Kind == incremental.OpInsert {
			uris = append(uris, op.URI)
		}
	}

	r := newResolver()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < cc.readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			readerLoop(t, r, uris, done, g)
		}(g)
	}
	applyScript(context.Background(), t, r, script)
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Bit-exactness despite the read storm: the final state equals the
	// sequential replay of the same script...
	ref := newResolver()
	applyScript(context.Background(), t, ref, script)
	if got, want := renderState(mustMatches(t, r)), renderState(mustMatches(t, ref)); got != want {
		t.Fatalf("concurrent final state diverges from sequential replay:\nconcurrent:\n%s\nsequential:\n%s", got, want)
	}
	got, want := mustStats(t, r), mustStats(t, ref)
	if cc.meta != nil {
		// Under live meta-blocking the comparison count depends on WHEN
		// reconciles ran (an early reconcile evaluates pairs at thresholds a
		// later one never sees, cached thereafter) — the read fleet's
		// schedule is not the replay's, so only the count is exempt.
		got.Comparisons, want.Comparisons = 0, 0
	}
	if got != want {
		t.Fatalf("concurrent final stats diverge from sequential replay:\nconcurrent: %+v\nsequential: %+v", got, want)
	}
	// ...and both equal the from-scratch batch pipeline.
	dc := diffConfig{kind: entity.Dirty, blocker: blocker, workers: 4, meta: cc.meta}
	checkDifferential(t, r, dc, matcher, cc.ops)

	// The read fleet actually shared the lock: reads served under RLock
	// without paying a reconcile themselves.
	if p := r.Perf(); p.SharedReads == 0 || p.ReadLocks < p.SharedReads {
		t.Fatalf("no shared reads recorded under a %d-reader storm: %+v", cc.readers, p)
	}
}

func TestConcurrentReadDifferential(t *testing.T) {
	configs := []concurrentConfig{
		{name: "eager", meta: nil, readers: 8, ops: 300, seed: 41},
		{name: "meta-wnp", meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}, readers: 8, ops: 200, seed: 42},
		{name: "meta-wep", meta: &metablocking.MetaBlocker{Weight: metablocking.JS, Prune: metablocking.WEP}, readers: 4, ops: 160, seed: 43},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			if testing.Short() && cc.name == "meta-wep" {
				t.Skip("short mode runs the first two storms only")
			}
			t.Parallel()
			runConcurrentDifferential(t, cc)
		})
	}
}

// TestReconcileSingleFlight: a read stampede on a dirty graph pays ONE
// delta-prune — the first reader reconciles under the write lock, the rest
// find the graph clean and proceed under RLock.
func TestReconcileSingleFlight(t *testing.T) {
	t.Parallel()
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	r, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4,
		Meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, d := range pool(t, entity.Dirty, 9)[:50] {
		if _, err := r.Insert(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	before := r.Perf()
	if before.Reconciles != 0 {
		t.Fatalf("graph reconciled before any read: %+v", before)
	}
	const stampede = 16
	var wg sync.WaitGroup
	for g := 0; g < stampede; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Stats(); err != nil {
				t.Errorf("stampede read: %v", err)
			}
		}()
	}
	wg.Wait()
	p := r.Perf()
	if p.Reconciles != 1 {
		t.Fatalf("a %d-reader stampede paid %d reconciles, want the single-flight 1", stampede, p.Reconciles)
	}
	if p.ReadLocks < stampede {
		t.Fatalf("stampede took %d read locks, want at least %d", p.ReadLocks, stampede)
	}
}

// BenchmarkConcurrentReadSharing is the mutex-contention smoke: parallel
// readers over a quiescent resolver must serve under the shared lock (CI
// runs it with -mutexprofile; the self-assert below fails the build if the
// read path stopped sharing).
func BenchmarkConcurrentReadSharing(b *testing.B) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	r, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4,
		Meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: 83, Entities: 120, DupRatio: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range c.All() {
		if _, err := r.Insert(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := r.Stats(); err != nil { // settle the reconcile outside the timer
		b.Fatal(err)
	}
	before := r.Perf()
	b.SetParallelism(max(2, runtime.GOMAXPROCS(0)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := r.Stats(); err != nil {
				b.Error(err)
				return
			}
			if _, err := r.Clusters(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if p := r.Perf(); p.SharedReads <= before.SharedReads {
		b.Fatalf("parallel readers recorded no shared reads: %+v then %+v", before, p)
	}
}
