package incremental_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
)

// The batched-ingestion differential property: a resolver fed the op
// stream through ApplyBatch — whatever the chunking — is bit-identical to
// a resolver fed the same stream one Apply at a time: same handles,
// matches, comparison counts, blocks and restructured blocks at every
// batch boundary. The batch path buys its amortization honestly: one
// journal append per batch instead of one per op, with validation
// rejecting a bad batch whole before anything is journaled, and crash
// recovery replaying a batch record atomically or not at all.

// batchRecords converts an op-script chunk into the Record form
// ApplyBatch consumes: ID -1 means resolve by URI (and assign a fresh
// handle for inserts).
func batchRecords(ops []incremental.Op) []incremental.Record {
	recs := make([]incremental.Record, len(ops))
	for i, op := range ops {
		recs[i] = incremental.Record{Kind: op.Kind, ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
	}
	return recs
}

// batchDiffConfig is one batched-ingestion differential scenario.
type batchDiffConfig struct {
	kind    entity.Kind
	blocker blocking.StreamableBlocker
	meta    *metablocking.MetaBlocker
	workers int
	seed    int64
	ops     int
	size    int // batch size
	mix     opMix
}

func (bc batchDiffConfig) String() string {
	s := fmt.Sprintf("%s/%s/b%d/w%d/%s/seed%d", bc.kind, bc.blocker.Name(), bc.size, bc.workers, bc.mix.name, bc.seed)
	if bc.meta != nil {
		s += "/" + bc.meta.Name()
	}
	return s
}

// runBatchDifferential drives one scenario: the same script through
// ApplyBatch in fixed-size chunks and through per-op Apply in lockstep,
// with state compared at chunk boundaries and the journal-amortization
// evidence asserted at the end.
func runBatchDifferential(t *testing.T, bc batchDiffConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, bc.kind, bc.seed, bc.ops, bc.mix)
	cfg := incremental.Config{
		Kind: bc.kind, Blocker: bc.blocker, Matcher: matcher, Workers: bc.workers, Meta: bc.meta,
	}
	batched, err := incremental.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := incremental.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chunks := 0
	for at := 0; at < bc.ops; at += bc.size {
		end := min(at+bc.size, bc.ops)
		recs := batchRecords(script[at:end])
		if err := batched.ApplyBatch(ctx, recs); err != nil {
			t.Fatalf("batch at op %d (size %d): %v", at, end-at, err)
		}
		chunks++
		for i := at; i < end; i++ {
			if err := ref.Apply(ctx, script[i]); err != nil {
				t.Fatalf("op %d (%s %s): %v", i, script[i].Kind, script[i].URI, err)
			}
			// ApplyBatch writes resolved handles back into the records.
			if recs[i-at].ID < 0 {
				t.Fatalf("batch record %d left unresolved handle %d", i, recs[i-at].ID)
			}
		}
		// Reads reconcile under meta-blocking, so both resolvers follow the
		// same read schedule: every 45-op crossing plus the end.
		if at/45 != end/45 || end == bc.ops {
			assertSameResolverState(t, batched, ref)
		}
	}
	// The amortization is real: one append per batch on the batched
	// resolver, one per op on the reference, zero fan-out or wire work on
	// either. (Under live meta-blocking both sides also journal the same
	// read-scheduled reconciles, so the comparison is an inequality.)
	bp, rp := batched.Perf(), ref.Perf()
	if bc.meta == nil {
		if bp.JournalAppends != int64(chunks) {
			t.Fatalf("batched resolver made %d journal appends for %d batches", bp.JournalAppends, chunks)
		}
		if rp.JournalAppends != int64(bc.ops) {
			t.Fatalf("per-op resolver made %d journal appends for %d ops", rp.JournalAppends, bc.ops)
		}
	} else if bc.size > 1 && bp.JournalAppends >= rp.JournalAppends {
		t.Fatalf("batched resolver made %d journal appends, per-op made %d — batching amortized nothing",
			bp.JournalAppends, rp.JournalAppends)
	}
	if bp.FanOuts != 0 || bp.TransportRoundTrips != 0 || rp.FanOuts != 0 || rp.TransportRoundTrips != 0 {
		t.Fatalf("single-node resolvers report fan-out/wire work: batched %+v per-op %+v", bp, rp)
	}
	// And the streaming contract holds: the batched end state equals a
	// from-scratch batch pipeline over the surviving descriptions.
	checkDifferential(t, batched, diffConfig{kind: bc.kind, blocker: bc.blocker, meta: bc.meta}, matcher, bc.ops)
}

// TestBatchDifferential is the batched-ingestion acceptance matrix: batch
// sizes from degenerate (1) past the script length (256), across kinds,
// blockers, op mixes and meta-blocking schemes.
func TestBatchDifferential(t *testing.T) {
	var configs []batchDiffConfig
	for i, size := range []int{1, 3, 16, 64, 256} {
		configs = append(configs, batchDiffConfig{
			kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
			workers: 4, seed: int64(401 + i), ops: 180, size: size, mix: opMixes[i%len(opMixes)],
		})
	}
	configs = append(configs,
		batchDiffConfig{kind: entity.CleanClean, blocker: &blocking.TokenBlocking{},
			workers: 4, seed: 406, ops: 160, size: 16, mix: opMixes[1]},
		batchDiffConfig{kind: entity.Dirty, blocker: &blocking.StandardBlocking{},
			workers: 2, seed: 407, ops: 160, size: 7, mix: opMixes[2]},
		batchDiffConfig{kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
			workers: 4, seed: 408, ops: 140, size: 16, mix: opMixes[1],
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}},
		batchDiffConfig{kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
			workers: 4, seed: 409, ops: 140, size: 5, mix: opMixes[0],
			meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}},
	)
	for _, bc := range configs {
		bc := bc
		t.Run(bc.String(), func(t *testing.T) {
			if testing.Short() && bc.seed > 403 {
				t.Skip("short mode runs the first batch-size scenarios only")
			}
			t.Parallel()
			runBatchDifferential(t, bc)
		})
	}
}

// TestBatchValidation: a batch is admitted whole or rejected whole. Any
// invalid record — even the last of a long batch — leaves the resolver's
// state, counters AND slot space untouched; valid intra-batch chains
// (insert, then update, then delete the same URI) are admitted.
func TestBatchValidation(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	cfg := incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 1,
	}
	newSeeded := func() *incremental.Resolver {
		t.Helper()
		r, err := incremental.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []incremental.Op{
			{Kind: incremental.OpInsert, URI: "u:a", Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}}},
			{Kind: incremental.OpInsert, URI: "u:b", Attrs: []entity.Attribute{{Name: "name", Value: "bob jones"}}},
		} {
			if err := r.Apply(ctx, op); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	attrs := []entity.Attribute{{Name: "name", Value: "carol davis"}}
	rejected := []struct {
		name string
		recs []incremental.Record
	}{
		{"duplicate-insert-uri", []incremental.Record{
			{Kind: incremental.OpInsert, ID: -1, URI: "u:new", Attrs: attrs},
			{Kind: incremental.OpInsert, ID: -1, URI: "u:new", Attrs: attrs},
		}},
		{"insert-live-uri", []incremental.Record{
			{Kind: incremental.OpInsert, ID: -1, URI: "u:a", Attrs: attrs},
		}},
		{"update-unknown-uri", []incremental.Record{
			{Kind: incremental.OpInsert, ID: -1, URI: "u:new", Attrs: attrs},
			{Kind: incremental.OpUpdate, ID: -1, URI: "u:ghost", Attrs: attrs},
		}},
		{"delete-after-batch-delete", []incremental.Record{
			{Kind: incremental.OpDelete, ID: -1, URI: "u:a"},
			{Kind: incremental.OpDelete, ID: -1, URI: "u:a"},
		}},
		{"routed-seq-set", []incremental.Record{
			{Kind: incremental.OpInsert, ID: -1, URI: "u:new", Attrs: attrs, Seq: 7},
		}},
		{"non-mutation-kind", []incremental.Record{
			{Kind: incremental.OpReconcile, ID: -1},
		}},
	}
	for _, tc := range rejected {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r := newSeeded()
			before := mustStats(t, r)
			slots := r.Slots()
			if err := r.ApplyBatch(ctx, tc.recs); err == nil {
				t.Fatalf("batch admitted: %+v", tc.recs)
			}
			if after := mustStats(t, r); after != before {
				t.Fatalf("rejected batch mutated counters:\nbefore %+v\nafter  %+v", before, after)
			}
			if r.Slots() != slots {
				t.Fatalf("rejected batch burned slots: %d -> %d", slots, r.Slots())
			}
			if _, ok := r.Lookup("u:new"); ok {
				t.Fatal("rejected batch left a prefix record applied")
			}
			// The resolver is not poisoned: a valid batch still lands.
			if err := r.ApplyBatch(ctx, batchRecords([]incremental.Op{
				{Kind: incremental.OpInsert, URI: "u:ok", Attrs: attrs},
			})); err != nil {
				t.Fatalf("valid batch after rejection: %v", err)
			}
		})
	}
	t.Run("empty-batch", func(t *testing.T) {
		t.Parallel()
		r := newSeeded()
		before := mustStats(t, r)
		appends := r.Perf().JournalAppends
		if err := r.ApplyBatch(ctx, nil); err != nil {
			t.Fatal(err)
		}
		if after := mustStats(t, r); after != before {
			t.Fatalf("empty batch mutated state: %+v -> %+v", before, after)
		}
		if r.Perf().JournalAppends != appends {
			t.Fatal("empty batch journaled a record")
		}
	})
	t.Run("intra-batch-lifecycle", func(t *testing.T) {
		t.Parallel()
		// Insert, update and delete the same URI inside one batch: later
		// records see earlier ones, and the result equals the per-op run.
		script := []incremental.Op{
			{Kind: incremental.OpInsert, URI: "u:x", Attrs: attrs},
			{Kind: incremental.OpUpdate, URI: "u:x", Attrs: []entity.Attribute{{Name: "name", Value: "carol d"}}},
			{Kind: incremental.OpDelete, URI: "u:x"},
			{Kind: incremental.OpInsert, URI: "u:y", Attrs: attrs},
		}
		batched, ref := newSeeded(), newSeeded()
		if err := batched.ApplyBatch(ctx, batchRecords(script)); err != nil {
			t.Fatal(err)
		}
		for _, op := range script {
			if err := ref.Apply(ctx, op); err != nil {
				t.Fatal(err)
			}
		}
		assertSameResolverState(t, batched, ref)
	})
}

// TestBatchCrashRecovery: a batch is one journal record, so a crash leaves
// the stream at a batch boundary — every acknowledged batch survives whole
// (torn-append leg), and a batch whose record the crash cut short vanishes
// whole (truncated-tail leg). Named to ride the crash-recovery race job.
func TestBatchCrashRecovery(t *testing.T) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	ctx := context.Background()
	memCfg := incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 2,
	}
	applyBatches := func(t *testing.T, r *incremental.Resolver, script []incremental.Op, from, to, size int) int {
		t.Helper()
		n := 0
		for at := from; at < to; at += size {
			end := min(at+size, to)
			if err := r.ApplyBatch(ctx, batchRecords(script[at:end])); err != nil {
				t.Fatalf("batch at op %d: %v", at, err)
			}
			n++
		}
		return n
	}
	refTo := func(t *testing.T, script []incremental.Op, k int) *incremental.Resolver {
		t.Helper()
		ref, err := incremental.New(memCfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := ref.Apply(ctx, script[i]); err != nil {
				t.Fatalf("reference op %d: %v", i, err)
			}
		}
		return ref
	}

	t.Run("torn-append", func(t *testing.T) {
		t.Parallel()
		// Crash right after the 7th batch with a torn partial frame left in
		// the WAL: recovery keeps all 56 acknowledged ops and replays only
		// whole-batch records since the last snapshot.
		const ops, size, k, snapEvery = 96, 8, 56, 20
		script := generateScript(t, entity.Dirty, 411, ops, opMixes[1])
		cfg := memCfg
		cfg.Durable = incremental.DurableOptions{SnapshotEvery: snapEvery, SegmentBytes: 4096, NoSync: true}
		dir := t.TempDir()
		crashed, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batches := applyBatches(t, crashed, script, 0, k, size)
		crashed.Abandon()
		tearTail(t, dir)
		r, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer r.Close()
		rec := r.Recovery()
		if !rec.Recovered {
			t.Fatal("recovery found no state")
		}
		// Replay is bounded in RECORDS, and a batch is one record: never
		// more than the batches journaled since the last snapshot.
		if rec.ReplayedRecords > batches {
			t.Fatalf("replayed %d records for %d batch appends", rec.ReplayedRecords, batches)
		}
		assertSameResolverState(t, r, refTo(t, script, k))
		// The stream continues across the recovery, batched, and lands
		// bit-exact with an uninterrupted per-op run.
		applyBatches(t, r, script, k, ops, size)
		assertSameResolverState(t, r, refTo(t, script, ops))
	})

	t.Run("truncated-tail", func(t *testing.T) {
		t.Parallel()
		// Crash INSIDE the final batch's append: the truncated record must
		// drop the whole batch, never a prefix of it. Snapshots are pushed
		// out of the window so the journal alone carries the stream.
		const ops, size = 30, 6
		script := generateScript(t, entity.Dirty, 412, ops, opMixes[0])
		cfg := memCfg
		cfg.Durable = incremental.DurableOptions{SnapshotEvery: 1000, SegmentBytes: 1 << 20, NoSync: true}
		dir := t.TempDir()
		crashed, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyBatches(t, crashed, script, 0, ops, size)
		crashed.Abandon()
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no WAL segments in %s: %v", dir, err)
		}
		active := segs[len(segs)-1]
		fi, err := os.Stat(active)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(active, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		r, err := incremental.OpenResolver(dir, cfg)
		if err != nil {
			t.Fatalf("recovery from truncated tail: %v", err)
		}
		defer r.Close()
		// All of the final batch is gone; none of the earlier ones are.
		assertSameResolverState(t, r, refTo(t, script, ops-size))
		if want := ops/size - 1; r.Recovery().ReplayedRecords != want {
			t.Fatalf("replayed %d records, want the %d surviving batch records", r.Recovery().ReplayedRecords, want)
		}
	})
}
