package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/core"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/evaluation"
	"entityres/internal/matching"
	"entityres/internal/rdf"
)

// update regenerates the golden fixtures from the generator config below:
//
//	go test ./internal/experiments -run TestGoldenPipeline -update
var update = flag.Bool("update", false, "rewrite the golden end-to-end fixtures")

// The golden scenario pins the full ingestion-to-evaluation path: a
// committed N-Triples KB with committed ground truth, resolved by a fixed
// pipeline configuration, must keep producing the committed match pairs
// and quality metrics. Any change to tokenization, blocking, matching or
// evaluation that shifts end-to-end behavior fails this test and forces a
// conscious fixture update.
const goldenDir = "testdata/golden"

// goldenConfig is the generator behind the committed kb.nt; it only runs
// under -update.
func goldenConfig() datagen.Config {
	return datagen.Config{
		Seed:          12345,
		Entities:      150,
		DupRatio:      0.6,
		MaxDuplicates: 2,
		Domain:        datagen.People,
	}
}

// goldenPipeline is the pinned resolution configuration.
func goldenPipeline() *core.Pipeline {
	return &core.Pipeline{
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Mode:    core.Batch,
	}
}

// renderGolden produces the two diffable artifacts: the matched URI pairs
// and the metrics summary.
func renderGolden(c *entity.Collection, res *core.Result, gt *entity.Matches) (matches, metrics string, err error) {
	var mbuf bytes.Buffer
	if err := entity.WriteURIMatches(&mbuf, c, res.Matches); err != nil {
		return "", "", err
	}
	bm := evaluation.EvaluateBlocking(c, res.Blocks, gt)
	prf := evaluation.ComparePairs(res.Matches, gt)
	var sbuf bytes.Buffer
	fmt.Fprintf(&sbuf, "descriptions %d\n", c.Len())
	fmt.Fprintf(&sbuf, "truth_pairs %d\n", gt.Len())
	fmt.Fprintf(&sbuf, "blocks %d\n", bm.Blocks)
	fmt.Fprintf(&sbuf, "distinct_comparisons %d\n", bm.Distinct)
	fmt.Fprintf(&sbuf, "PC %.6f\n", bm.PC)
	fmt.Fprintf(&sbuf, "PQ %.6f\n", bm.PQ)
	fmt.Fprintf(&sbuf, "RR %.6f\n", bm.RR)
	fmt.Fprintf(&sbuf, "matches %d\n", res.Matches.Len())
	fmt.Fprintf(&sbuf, "clusters %d\n", len(res.Clusters()))
	fmt.Fprintf(&sbuf, "precision %.6f\n", prf.Precision)
	fmt.Fprintf(&sbuf, "recall %.6f\n", prf.Recall)
	fmt.Fprintf(&sbuf, "F1 %.6f\n", prf.F1)
	return mbuf.String(), sbuf.String(), nil
}

// regenerate writes all four fixture files from the generator.
func regenerate(t *testing.T) {
	t.Helper()
	c, gt, err := datagen.GenerateDirty(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var kb bytes.Buffer
	if err := rdf.WriteCollection(&kb, c); err != nil {
		t.Fatal(err)
	}
	var truth bytes.Buffer
	if err := entity.WriteURIMatches(&truth, c, gt); err != nil {
		t.Fatal(err)
	}
	res, err := goldenPipeline().Run(c)
	if err != nil {
		t.Fatal(err)
	}
	matches, metrics, err := renderGolden(c, res, gt)
	if err != nil {
		t.Fatal(err)
	}
	for name, content := range map[string]string{
		"kb.nt":       kb.String(),
		"truth.tsv":   truth.String(),
		"matches.tsv": matches,
		"metrics.txt": metrics,
	} {
		if err := os.WriteFile(filepath.Join(goldenDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenPipeline is the end-to-end regression gate: parse the committed
// KB, resolve it with the pinned configuration, and diff matches and
// metrics against the committed fixtures.
func TestGoldenPipeline(t *testing.T) {
	if *update {
		regenerate(t)
	}
	kbFile, err := os.Open(filepath.Join(goldenDir, "kb.nt"))
	if err != nil {
		t.Fatalf("%v (run with -update to generate the fixtures)", err)
	}
	defer kbFile.Close()
	c := entity.NewCollection(entity.Dirty)
	if err := rdf.AddToCollection(c, kbFile, 0); err != nil {
		t.Fatal(err)
	}
	truthFile, err := os.Open(filepath.Join(goldenDir, "truth.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer truthFile.Close()
	gt, err := entity.ReadURIMatches(c, truthFile)
	if err != nil {
		t.Fatal(err)
	}

	res, err := goldenPipeline().Run(c)
	if err != nil {
		t.Fatal(err)
	}
	gotMatches, gotMetrics, err := renderGolden(c, res, gt)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]string{
		"matches.tsv": gotMatches,
		"metrics.txt": gotMetrics,
	} {
		want, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from the golden fixture (re-run with -update if the change is intended):\ngot:\n%s\nwant:\n%s",
				name, got, want)
		}
	}

	// The streaming resolver must reproduce the same golden output — the
	// end-to-end form of the differential guarantee.
	stream := goldenPipeline()
	stream.Mode = core.Streaming
	sres, err := stream.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	streamMatches, _, err := renderGolden(c, sres, gt)
	if err != nil {
		t.Fatal(err)
	}
	if streamMatches != gotMatches {
		t.Errorf("streaming mode drifted from the batch golden matches")
	}
}
