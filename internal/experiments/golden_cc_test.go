package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/core"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/tabular"
)

// The clean-clean golden scenario pins the tabular interlinking path: two
// committed CSV sources with committed cross-source ground truth, resolved
// by the same pinned pipeline as the dirty golden, must keep producing the
// committed match pairs, per-source export files and quality metrics. It
// shares the -update flag with TestGoldenPipeline.
//
//	go test ./internal/experiments -run TestGoldenCleanClean -update

// goldenCCConfig is the generator behind the committed CSV pair; it only
// runs under -update.
func goldenCCConfig() datagen.Config {
	light := datagen.LightCorruption()
	return datagen.Config{
		Seed:        777,
		Entities:    120,
		DupRatio:    0.6,
		SchemaNoise: 0.5,
		Domain:      datagen.People,
		Corruption:  &light,
	}
}

// ccFixture names one clean-clean fixture file.
func ccFixture(name string) string { return filepath.Join(goldenDir, "cc_"+name) }

// resolveCC parses the committed CSV sources and truth exactly as a user
// would, resolves with the pinned pipeline, and renders every diffable
// artifact. Both the test and -update regeneration go through this one
// path, so the committed artifacts are by construction what a fresh parse
// reproduces.
func resolveCC(t *testing.T) (artifacts map[string]string, c *entity.Collection, res *core.Result) {
	t.Helper()
	c = entity.NewCollection(entity.CleanClean)
	for s, name := range []string{"kb0.csv", "kb1.csv"} {
		f, err := os.Open(ccFixture(name))
		if err != nil {
			t.Fatalf("%v (run with -update to generate the fixtures)", err)
		}
		err = tabular.AddCSV(c, f, s, tabular.Options{})
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	tf, err := os.Open(ccFixture("truth.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	gt, err := entity.ReadURIMatches(c, tf)
	if err != nil {
		t.Fatal(err)
	}
	res, err = goldenPipeline().Run(c)
	if err != nil {
		t.Fatal(err)
	}
	matches, metrics, err := renderGolden(c, res, gt)
	if err != nil {
		t.Fatal(err)
	}
	artifacts = map[string]string{
		"cc_matches.tsv": matches,
		"cc_metrics.txt": metrics,
	}
	for s := 0; s < 2; s++ {
		var buf bytes.Buffer
		if err := entity.WriteSourceMatches(&buf, c, res.Matches, s); err != nil {
			t.Fatal(err)
		}
		artifacts["cc_export"+string(rune('0'+s))+".tsv"] = buf.String()
	}
	return artifacts, c, res
}

// regenerateCC writes the two CSV sources and the truth from the
// generator, then renders the resolved artifacts through the same parse
// path the test uses.
func regenerateCC(t *testing.T) {
	t.Helper()
	cfg := goldenCCConfig()
	c, gt, err := datagen.GenerateCleanClean(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		columns, err := datagen.StreamColumns(cfg, s == 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		cw, err := tabular.NewCSVWriter(&buf, columns, tabular.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range c.All() {
			if d.Source != s {
				continue
			}
			if err := cw.Write(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Flush(); err != nil {
			t.Fatal(err)
		}
		name := "kb0.csv"
		if s == 1 {
			name = "kb1.csv"
		}
		if err := os.WriteFile(ccFixture(name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var truth bytes.Buffer
	if err := entity.WriteURIMatches(&truth, c, gt); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ccFixture("truth.tsv"), truth.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	artifacts, _, _ := resolveCC(t)
	for name, content := range artifacts {
		if err := os.WriteFile(filepath.Join(goldenDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenCleanClean is the tabular interlinking regression gate: parse
// the committed CSV sources, resolve with the pinned configuration, and
// diff the match pairs, both per-source exports and the metrics against
// the committed fixtures.
func TestGoldenCleanClean(t *testing.T) {
	if *update {
		regenerateCC(t)
	}
	artifacts, c, _ := resolveCC(t)
	for name, got := range artifacts {
		want, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from the golden fixture (re-run with -update if the change is intended):\ngot:\n%s\nwant:\n%s",
				name, got, want)
		}
	}

	// The streaming resolver must interlink the two sources identically —
	// the clean-clean end-to-end form of the differential guarantee.
	stream := goldenPipeline()
	stream.Mode = core.Streaming
	sres, err := stream.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var sm bytes.Buffer
	if err := entity.WriteURIMatches(&sm, c, sres.Matches); err != nil {
		t.Fatal(err)
	}
	if sm.String() != artifacts["cc_matches.tsv"] {
		t.Errorf("streaming mode drifted from the batch golden matches")
	}
}
