package experiments

import (
	"strings"
	"testing"
)

const seed = 42

// TestAllExperimentsRun smoke-tests every experiment at small scale and
// checks that each emits a non-trivial table.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Small, seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			var sb strings.Builder
			if err := res.Table.Fprint(&sb); err != nil {
				t.Fatal(err)
			}
			if len(sb.String()) == 0 {
				t.Fatal("empty render")
			}
		})
	}
}

// The shape assertions below encode the expected qualitative results from
// the surveyed papers (see DESIGN.md §3 and EXPERIMENTS.md); they are the
// reproduction criteria, not just smoke tests.

func TestE1Shape(t *testing.T) {
	res, err := E1BlockingMethods(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if !(m["token_PC"] > 0.9) {
		t.Fatalf("token blocking PC = %v, want near-total", m["token_PC"])
	}
	if !(m["standard_PC"] < 0.5) {
		t.Fatalf("standard blocking PC = %v, should collapse under heterogeneity", m["standard_PC"])
	}
	if !(m["attrclustering_PQ"] >= m["token_PQ"]) {
		t.Fatalf("attribute clustering PQ %v should not trail token blocking %v",
			m["attrclustering_PQ"], m["token_PQ"])
	}
	if !(m["simjoin_PQ"] > m["token_PQ"]) {
		t.Fatalf("simjoin PQ %v should beat token blocking %v", m["simjoin_PQ"], m["token_PQ"])
	}
}

func TestE2Shape(t *testing.T) {
	res, err := E2BlockPurging(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	raw := m["raw token blocking_comparisons"]
	purged := m["+ size purging_comparisons"]
	filtered := m["+ block filtering_comparisons"]
	if !(purged < raw/5 && filtered < purged) {
		t.Fatalf("comparison counts should fall: %v → %v → %v", raw, purged, filtered)
	}
	// Purging is nearly free: oversized blocks carry almost no unique
	// signal.
	if m["+ size purging_PC"] < m["raw token blocking_PC"]-0.02 {
		t.Fatalf("purging PC loss too high: %v → %v",
			m["raw token blocking_PC"], m["+ size purging_PC"])
	}
	// Filtering trades a modest PC share for the further cut; on the short
	// token profiles of this generator the cost is higher than on the rich
	// profiles of the original paper (see EXPERIMENTS.md).
	if m["+ block filtering_PC"] < m["raw token blocking_PC"]-0.15 {
		t.Fatalf("PC lost too much: %v → %v",
			m["raw token blocking_PC"], m["+ block filtering_PC"])
	}
}

func TestE3Shape(t *testing.T) {
	res, err := E3MetaBlocking(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// Cardinality pruning cuts comparisons hard while PC stays usable.
	if !(m["ARCS_CNP_kept"] < 30) {
		t.Fatalf("CNP kept %v%%, expected a strong cut", m["ARCS_CNP_kept"])
	}
	if !(m["ARCS_CNP_PC"] > 0.7) {
		t.Fatalf("ARCS+CNP PC = %v, too much recall lost", m["ARCS_CNP_PC"])
	}
	// Every scheme must keep a usable PC under WNP.
	for _, w := range []string{"CBS", "ECBS", "JS", "EJS", "ARCS"} {
		if !(m[w+"_WNP_PC"] > 0.7) {
			t.Fatalf("%s+WNP PC = %v", w, m[w+"_WNP_PC"])
		}
	}
}

func TestE5Shape(t *testing.T) {
	res, err := E5SimilarityJoin(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if !(m["pairs_t0.3"] > m["pairs_t0.5"] && m["pairs_t0.5"] > m["pairs_t0.9"]) {
		t.Fatalf("pair counts should fall with threshold: %v %v %v",
			m["pairs_t0.3"], m["pairs_t0.5"], m["pairs_t0.9"])
	}
	if !(m["coverage_t0.3"] >= m["coverage_t0.9"]) {
		t.Fatal("coverage should not grow with threshold")
	}
}

func TestE7Shape(t *testing.T) {
	res, err := E7RSwoosh(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if !(m["saved_r1.0"] > m["saved_r0.2"]) {
		t.Fatalf("savings should grow with duplication: %v vs %v",
			m["saved_r1.0"], m["saved_r0.2"])
	}
	if !(m["saved_r1.0"] > 20) {
		t.Fatalf("high-duplication savings = %v%%", m["saved_r1.0"])
	}
}

func TestE8Shape(t *testing.T) {
	res, err := E8CollectiveER(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if !(m["collective_recall"] > m["baseline_recall"]) {
		t.Fatalf("collective recall %v should beat baseline %v",
			m["collective_recall"], m["baseline_recall"])
	}
	if !(m["collective_F1"] >= m["baseline_F1"]) {
		t.Fatalf("collective F1 %v regressed vs %v", m["collective_F1"], m["baseline_F1"])
	}
}

func TestE9Shape(t *testing.T) {
	res, err := E9IterativeBlocking(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if !(m["iterative_comparisons"] < m["onepass_comparisons"]/2) {
		t.Fatalf("iterative should save most comparisons: %v vs %v",
			m["iterative_comparisons"], m["onepass_comparisons"])
	}
	// Against the honest pairwise baseline, merge propagation adds recall.
	if !(m["iterative_recall"] >= m["onepass_raw_recall"]-1e-9) {
		t.Fatalf("iterative recall %v below raw one-pass %v",
			m["iterative_recall"], m["onepass_raw_recall"])
	}
	// Against the closed baseline, iterative may concede a little recall
	// (merged profiles can dilute borderline similarities) but must win on
	// precision, since every transitive merge was re-verified.
	if !(m["iterative_recall"] >= m["onepass_recall"]-0.03) {
		t.Fatalf("iterative recall %v far below closed one-pass %v",
			m["iterative_recall"], m["onepass_recall"])
	}
	if !(m["iterative_precision"] >= m["onepass_precision"]-1e-9) {
		t.Fatalf("iterative precision %v below closed one-pass %v",
			m["iterative_precision"], m["onepass_precision"])
	}
}

func TestE10Shape(t *testing.T) {
	res, err := E10Progressive(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	for _, s := range []string{"psnm+lookahead", "slidingwindow", "hierarchy", "benefitcost"} {
		if !(m[s+"_AUC"] > m["random_AUC"]) {
			t.Fatalf("%s AUC %v should beat random %v", s, m[s+"_AUC"], m["random_AUC"])
		}
	}
	if !(m["psnm+lookahead_r10"] > 0.6) {
		t.Fatalf("psnm+lookahead recall@10%% = %v", m["psnm+lookahead_r10"])
	}
}

func TestE11Shape(t *testing.T) {
	res, err := E11BudgetWindows(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	best := 0.0
	for name, v := range m {
		if strings.HasPrefix(name, "benefitcost") && v > best {
			best = v
		}
	}
	if !(best > m["random"]) {
		t.Fatalf("best benefit/cost %v should beat random %v", best, m["random"])
	}
}

func TestE12Shape(t *testing.T) {
	res, err := E12ScaleSweep(Small, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if !(m["exhaustive_slope"] > 1.8) {
		t.Fatalf("exhaustive slope = %v, expected ≈2", m["exhaustive_slope"])
	}
	if !(m["suggested_slope"] < 1.5) {
		t.Fatalf("suggested-comparison slope = %v, expected near-linear", m["suggested_slope"])
	}
	if !(m["block_time_slope"] < 1.6) {
		t.Fatalf("blocking time slope = %v, expected near-linear", m["block_time_slope"])
	}
}
