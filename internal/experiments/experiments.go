// Package experiments implements the reproduction experiment suite E1–E12
// defined in DESIGN.md: each experiment regenerates the canonical result
// shape of one system family the paper surveys, returning a printable
// table plus the headline metrics that the benchmark harness reports and
// EXPERIMENTS.md records. Both cmd/erbench and the root bench_test.go are
// thin wrappers over this package, so the printed tables and the measured
// benchmarks can never drift apart.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"entityres/internal/blocking"
	"entityres/internal/blockproc"
	"entityres/internal/datagen"
	"entityres/internal/evaluation"
	"entityres/internal/iterative"
	"entityres/internal/iterblock"
	"entityres/internal/mapreduce"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/multiblock"
	"entityres/internal/progressive"
	"entityres/internal/simjoin"
	"entityres/internal/token"
)

// Scale selects experiment sizes; Small keeps every experiment under a
// couple of seconds for CI, Medium is the reporting configuration.
type Scale int

const (
	Small Scale = iota
	Medium
)

func (s Scale) n(small, medium int) int {
	if s == Medium {
		return medium
	}
	return small
}

// Result is one experiment's output.
type Result struct {
	Table *evaluation.Table
	// Metrics are the headline numbers reported by the benchmark harness
	// (name → value), e.g. "token_PC" or "speedup_8w".
	Metrics map[string]float64
}

func newResult(t *evaluation.Table) *Result {
	return &Result{Table: t, Metrics: map[string]float64{}}
}

// refProfiler is the tokenization shared by matching-oriented experiments:
// reference values are relational evidence, not text.
func refProfiler() *token.Profiler {
	return &token.Profiler{
		Scheme:        token.SchemaAgnostic,
		Stopwords:     token.DefaultStopwords(),
		SkipRefValues: true,
	}
}

// E1BlockingMethods compares the blocking family on a schema-heterogeneous
// clean-clean collection (§II; the comparison axes of [13], [21]).
// Expected shape: standard blocking collapses in PC; token blocking is
// near-total PC at poor PQ; attribute clustering and the pair-oriented
// methods (simjoin, multiblock) recover PQ.
func E1BlockingMethods(scale Scale, seed int64) (*Result, error) {
	c, gt, err := datagen.GenerateCleanClean(datagen.Config{
		Seed: seed, Entities: scale.n(400, 2000), DupRatio: 0.6, SchemaNoise: 0.9,
	})
	if err != nil {
		return nil, err
	}
	blockers := []blocking.Blocker{
		&blocking.StandardBlocking{},
		&blocking.TokenBlocking{},
		&blocking.AttributeClustering{},
		&blocking.SortedNeighborhood{Window: 8},
		&blocking.QGramsBlocking{Q: 3},
		&blocking.ExtendedQGrams{Q: 3},
		&blocking.SuffixArrayBlocking{},
		&blocking.Canopy{},
		&blocking.PrefixInfixSuffix{},
		&simjoin.Blocking{Threshold: 0.3},
		&multiblock.Aggregator{Blockers: []blocking.Blocker{
			&blocking.TokenBlocking{}, &blocking.QGramsBlocking{Q: 3}, &blocking.SuffixArrayBlocking{},
		}},
	}
	res := newResult(evaluation.NewTable(
		"E1: blocking methods on heterogeneous clean-clean KBs",
		"method", "PC", "PQ", "RR", "comparisons", "blocks", "ms"))
	for _, b := range blockers {
		t0 := time.Now()
		bs, err := b.Block(c)
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", b.Name(), err)
		}
		el := time.Since(t0)
		m := evaluation.EvaluateBlocking(c, bs, gt)
		res.Table.AddRow(b.Name(), m.PC, m.PQ, m.RR, m.Distinct, m.Blocks, el.Milliseconds())
		res.Metrics[b.Name()+"_PC"] = m.PC
		res.Metrics[b.Name()+"_PQ"] = m.PQ
	}
	return res, nil
}

// E2BlockPurging measures block purging and filtering (§II, [20]): the
// comparison count collapses while PC barely moves.
func E2BlockPurging(scale Scale, seed int64) (*Result, error) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{
		Seed: seed, Entities: scale.n(600, 3000), DupRatio: 0.5, ZipfS: 1.4,
	})
	if err != nil {
		return nil, err
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	steps := []struct {
		name string
		proc blockproc.Processor
	}{
		{"raw token blocking", nil},
		{"+ size purging", blockproc.Chain{&blockproc.SizePurge{}}},
		{"+ block filtering", blockproc.Chain{&blockproc.SizePurge{}, &blockproc.BlockFiltering{Ratio: 0.7}}},
	}
	res := newResult(evaluation.NewTable(
		"E2: block purging and filtering",
		"stage", "PC", "comparisons", "RR", "blocks"))
	for _, st := range steps {
		cur := bs
		if st.proc != nil {
			cur = st.proc.Process(bs)
		}
		m := evaluation.EvaluateBlocking(c, cur, gt)
		res.Table.AddRow(st.name, m.PC, m.Distinct, m.RR, m.Blocks)
		res.Metrics[st.name+"_comparisons"] = float64(m.Distinct)
		res.Metrics[st.name+"_PC"] = m.PC
	}
	return res, nil
}

// E3MetaBlocking sweeps the weighting × pruning design space of
// meta-blocking (§II, [22]). Expected: node-centric and cardinality
// schemes cut comparisons by orders of magnitude at a small PC cost;
// ECBS/ARCS dominate raw CBS.
func E3MetaBlocking(scale Scale, seed int64) (*Result, error) {
	c, gt, err := datagen.GenerateCleanClean(datagen.Config{
		Seed: seed, Entities: scale.n(400, 2000), DupRatio: 0.6, SchemaNoise: 0.7,
	})
	if err != nil {
		return nil, err
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	base := evaluation.EvaluateBlocking(c, bs, gt)
	res := newResult(evaluation.NewTable(
		"E3: meta-blocking weighting × pruning (input comparisons: "+fmt.Sprint(base.Distinct)+")",
		"weight", "prune", "PC", "PQ", "comparisons", "kept%"))
	for _, w := range metablocking.WeightSchemes() {
		for _, p := range metablocking.PruneSchemes() {
			mb := &metablocking.MetaBlocker{Weight: w, Prune: p}
			out := mb.Restructure(c, bs)
			m := evaluation.EvaluateBlocking(c, out, gt)
			kept := 100 * float64(m.Distinct) / float64(base.Distinct)
			res.Table.AddRow(w.String(), p.String(), m.PC, m.PQ, m.Distinct, kept)
			res.Metrics[w.String()+"_"+p.String()+"_PC"] = m.PC
			res.Metrics[w.String()+"_"+p.String()+"_kept"] = kept
		}
	}
	return res, nil
}

// E4ParallelMetaBlocking measures strong scaling of parallel meta-blocking
// (§II, [10], [11]) on the goroutine MapReduce engine.
func E4ParallelMetaBlocking(scale Scale, seed int64) (*Result, error) {
	c, _, err := datagen.GenerateCleanClean(datagen.Config{
		Seed: seed, Entities: scale.n(600, 3000), DupRatio: 0.6,
	})
	if err != nil {
		return nil, err
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	mb := &metablocking.MetaBlocker{Weight: metablocking.JS, Prune: metablocking.WEP}
	res := newResult(evaluation.NewTable(
		"E4: parallel meta-blocking strong scaling",
		"workers", "ms", "speedup"))
	var base time.Duration
	for _, w := range workerCounts() {
		t0 := time.Now()
		if _, err := mapreduce.ParallelMetaBlocking(c, bs, mb, w); err != nil {
			return nil, err
		}
		el := time.Since(t0)
		if w == 1 {
			base = el
		}
		speedup := float64(base) / float64(el)
		res.Table.AddRow(w, el.Milliseconds(), speedup)
		res.Metrics[fmt.Sprintf("speedup_%dw", w)] = speedup
	}
	return res, nil
}

func workerCounts() []int {
	// Sweep at least to 4 workers so the sharding machinery is exercised
	// even on single-core machines (where speedup is expectedly flat); on
	// multicore hardware the sweep extends to GOMAXPROCS.
	limit := runtime.GOMAXPROCS(0)
	if limit < 4 {
		limit = 4
	}
	counts := []int{1}
	for w := 2; w <= limit; w *= 2 {
		counts = append(counts, w)
	}
	return counts
}

// E5SimilarityJoin sweeps the join threshold (§II, [5], [28]): candidates
// shrink sharply with the threshold and prefix filtering stays well below
// the brute-force pair count.
func E5SimilarityJoin(scale Scale, seed int64) (*Result, error) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{
		Seed: seed, Entities: scale.n(500, 2500), DupRatio: 0.5,
	})
	if err != nil {
		return nil, err
	}
	p := token.DefaultProfiler()
	inputs := make([]simjoin.Input, 0, c.Len())
	for _, d := range c.All() {
		inputs = append(inputs, simjoin.Input{ID: d.ID, Source: d.Source, Tokens: p.Tokens(d)})
	}
	res := newResult(evaluation.NewTable(
		"E5: similarity-join blocking vs threshold (PPJoin)",
		"threshold", "pairs", "gtCovered", "ms", "bruteMs"))
	for _, th := range []float64{0.3, 0.5, 0.7, 0.9} {
		t0 := time.Now()
		out, err := simjoin.Jaccard(inputs, th, simjoin.Options{Positional: true})
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		t1 := time.Now()
		simjoin.BruteForce(inputs, th, false)
		elBrute := time.Since(t1)
		covered := 0
		for _, r := range out {
			if gt.Contains(r.Pair.A, r.Pair.B) {
				covered++
			}
		}
		cov := 0.0
		if gt.Len() > 0 {
			cov = float64(covered) / float64(gt.Len())
		}
		res.Table.AddRow(th, len(out), cov, el.Milliseconds(), elBrute.Milliseconds())
		res.Metrics[fmt.Sprintf("pairs_t%.1f", th)] = float64(len(out))
		res.Metrics[fmt.Sprintf("coverage_t%.1f", th)] = cov
	}
	return res, nil
}

// E6MapReduceBlocking compares sequential token blocking against the
// MapReduce job at increasing worker counts (§II, [18]).
func E6MapReduceBlocking(scale Scale, seed int64) (*Result, error) {
	c, _, err := datagen.GenerateDirty(datagen.Config{
		Seed: seed, Entities: scale.n(2000, 10000), DupRatio: 0.5,
	})
	if err != nil {
		return nil, err
	}
	res := newResult(evaluation.NewTable(
		"E6: MapReduce token blocking throughput",
		"config", "ms", "blocks", "speedup"))
	t0 := time.Now()
	seq, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	seqEl := time.Since(t0)
	res.Table.AddRow("sequential", seqEl.Milliseconds(), seq.Len(), 1.0)
	for _, w := range workerCounts() {
		t0 := time.Now()
		par, err := mapreduce.ParallelTokenBlocking(c, nil, w)
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		speedup := float64(seqEl) / float64(el)
		res.Table.AddRow(fmt.Sprintf("mapreduce %dw", w), el.Milliseconds(), par.Len(), speedup)
		res.Metrics[fmt.Sprintf("speedup_%dw", w)] = speedup
	}
	return res, nil
}

// E7RSwoosh sweeps the duplication ratio (§III, [2]): the comparisons
// R-Swoosh saves over naive pairwise resolution grow with the duplicate
// density, because merging collapses the resolved set.
func E7RSwoosh(scale Scale, seed int64) (*Result, error) {
	res := newResult(evaluation.NewTable(
		"E7: R-Swoosh vs naive pairwise resolution",
		"dupRatio", "naiveCmp", "swooshCmp", "saved%", "recallNaive", "recallSwoosh"))
	for _, ratio := range []float64{0.2, 0.5, 0.8, 1.0} {
		c, gt, err := datagen.GenerateDirty(datagen.Config{
			Seed: seed, Entities: scale.n(150, 600), DupRatio: ratio, MaxDuplicates: 3,
		})
		if err != nil {
			return nil, err
		}
		m := &matching.Matcher{Sim: &matching.TokenContainment{}, Threshold: 0.75}
		naive := iterative.NaivePairwise(c, m)
		sw := iterative.RSwoosh(c, m)
		saved := 100 * (1 - float64(sw.Comparisons)/float64(naive.Comparisons))
		rn := evaluation.ComparePairs(naive.Matches.Closure(), gt).Recall
		rs := evaluation.ComparePairs(sw.Matches, gt).Recall
		res.Table.AddRow(ratio, naive.Comparisons, sw.Comparisons, saved, rn, rs)
		res.Metrics[fmt.Sprintf("saved_r%.1f", ratio)] = saved
	}
	return res, nil
}

// E8CollectiveER compares attribute-only matching with relationship-based
// collective resolution on bibliographic data (§III, [3]).
func E8CollectiveER(scale Scale, seed int64) (*Result, error) {
	heavy := datagen.Corruption{Typo: 0.3, TokenDrop: 0.4, TokenSwap: 0.3}
	c, gt, err := datagen.GenerateBibliographic(datagen.Config{
		Seed: seed, Entities: scale.n(60, 300), DupRatio: 0.8, Corruption: &heavy,
	})
	if err != nil {
		return nil, err
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	cands := bs.DistinctPairs().Pairs()
	base := &matching.TokenJaccard{Profiler: refProfiler()}
	const threshold = 0.55
	res := newResult(evaluation.NewTable(
		"E8: collective (relationship-based) vs attribute-only resolution",
		"method", "precision", "recall", "F1", "comparisons"))
	bl := matching.ResolvePairs(c, cands, &matching.Matcher{Sim: base, Threshold: threshold})
	pb := evaluation.ComparePairs(bl.Matches, gt)
	res.Table.AddRow("attribute-only", pb.Precision, pb.Recall, pb.F1, bl.Comparisons)
	co := &iterative.Collective{Base: base, Alpha: 0.3, Threshold: threshold}
	cr := co.Resolve(c, cands)
	pc := evaluation.ComparePairs(cr.Matches, gt)
	res.Table.AddRow("collective", pc.Precision, pc.Recall, pc.F1, cr.Comparisons)
	res.Metrics["baseline_F1"] = pb.F1
	res.Metrics["collective_F1"] = pc.F1
	res.Metrics["baseline_recall"] = pb.Recall
	res.Metrics["collective_recall"] = pc.Recall
	return res, nil
}

// E9IterativeBlocking compares one-pass block processing with iterative
// blocking (§III, [27]): more matches from merge propagation, fewer
// executed comparisons from redundancy savings.
func E9IterativeBlocking(scale Scale, seed int64) (*Result, error) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{
		Seed: seed, Entities: scale.n(300, 1500), DupRatio: 0.8, MaxDuplicates: 3,
	})
	if err != nil {
		return nil, err
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	m := &matching.Matcher{Sim: &matching.TokenContainment{}, Threshold: 0.75}
	res := newResult(evaluation.NewTable(
		"E9: iterative blocking vs one-pass",
		"method", "recall", "precision", "comparisons", "rounds"))
	one := iterblock.OnePass(c, bs, m)
	p1raw := evaluation.ComparePairs(one.Matches, gt)
	res.Table.AddRow("one-pass (pairwise)", p1raw.Recall, p1raw.Precision, one.Comparisons, one.Rounds)
	p1 := evaluation.ComparePairs(one.Matches.Closure(), gt)
	res.Table.AddRow("one-pass (closed)", p1.Recall, p1.Precision, one.Comparisons, one.Rounds)
	it := iterblock.Resolve(c, bs, m)
	p2 := evaluation.ComparePairs(it.Matches, gt)
	res.Table.AddRow("iterative", p2.Recall, p2.Precision, it.Comparisons, it.Rounds)
	res.Metrics["onepass_comparisons"] = float64(one.Comparisons)
	res.Metrics["iterative_comparisons"] = float64(it.Comparisons)
	res.Metrics["onepass_raw_recall"] = p1raw.Recall
	res.Metrics["onepass_recall"] = p1.Recall
	res.Metrics["onepass_precision"] = p1.Precision
	res.Metrics["iterative_recall"] = p2.Recall
	res.Metrics["iterative_precision"] = p2.Precision
	return res, nil
}

// E10Progressive compares the §IV scheduling heuristics: progressive
// recall at budget fractions plus normalized AUC.
func E10Progressive(scale Scale, seed int64) (*Result, error) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{
		Seed: seed, Entities: scale.n(400, 1500), DupRatio: 0.5,
	})
	if err != nil {
		return nil, err
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	total := int64(bs.DistinctPairs().Len())
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	key := blocking.SortedTokensKey(nil)
	schedulers := []struct {
		name string
		make func() progressive.Scheduler
	}{
		{"random", func() progressive.Scheduler { return progressive.NewRandomOrder(bs, seed) }},
		{"static", func() progressive.Scheduler { return progressive.NewStaticOrder(bs) }},
		{"slidingwindow", func() progressive.Scheduler { return progressive.NewSlidingWindow(c, key, 0) }},
		{"hierarchy", func() progressive.Scheduler { return progressive.NewHierarchy(c, key, nil) }},
		{"psnm", func() progressive.Scheduler { return progressive.NewPSNM(c, key, false, 0) }},
		{"psnm+lookahead", func() progressive.Scheduler { return progressive.NewPSNM(c, key, true, 0) }},
		{"benefitcost", func() progressive.Scheduler {
			return progressive.NewBenefitCost(metablocking.BuildGraph(bs, metablocking.ARCS), 64, 1)
		}},
	}
	fractions := []float64{0.01, 0.05, 0.10, 0.25, 0.50}
	res := newResult(evaluation.NewTable(
		fmt.Sprintf("E10: progressive recall (budget = %d comparisons)", total),
		"scheduler", "r@1%", "r@5%", "r@10%", "r@25%", "r@50%", "AUC"))
	for _, s := range schedulers {
		run := progressive.Run(c, s.make(), m, gt, total)
		row := []any{s.name}
		for _, f := range fractions {
			row = append(row, run.Curve.RecallAt(int64(f*float64(total))))
		}
		auc := run.Curve.AUC(total)
		row = append(row, auc)
		res.Table.AddRow(row...)
		res.Metrics[s.name+"_AUC"] = auc
		res.Metrics[s.name+"_r10"] = run.Curve.RecallAt(total / 10)
	}
	return res, nil
}

// E11BudgetWindows ablates the benefit/cost scheduler of [1]: window size
// and boost against the PSNM and random baselines at a 10% budget.
func E11BudgetWindows(scale Scale, seed int64) (*Result, error) {
	c, gt, err := datagen.GenerateDirty(datagen.Config{
		Seed: seed, Entities: scale.n(400, 1500), DupRatio: 0.5,
	})
	if err != nil {
		return nil, err
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		return nil, err
	}
	total := int64(bs.DistinctPairs().Len())
	budget := total / 10
	m := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	g := metablocking.BuildGraph(bs, metablocking.ARCS)
	res := newResult(evaluation.NewTable(
		fmt.Sprintf("E11: benefit/cost windows (budget = %d, 10%%)", budget),
		"scheduler", "recall@budget"))
	addRun := func(name string, s progressive.Scheduler) {
		run := progressive.Run(c, s, m, gt, budget)
		r := run.Curve.Final().Recall
		res.Table.AddRow(name, r)
		res.Metrics[name] = r
	}
	addRun("random", progressive.NewRandomOrder(bs, seed))
	addRun("psnm+lookahead", progressive.NewPSNM(c, blocking.SortedTokensKey(nil), true, 0))
	for _, w := range []int{16, 64, 256} {
		for _, boost := range []float64{0.5, 1, 2} {
			addRun(fmt.Sprintf("benefitcost w=%d b=%.1f", w, boost),
				progressive.NewBenefitCost(g, w, boost))
		}
	}
	return res, nil
}

// E12ScaleSweep grows the collection and fits complexity orders (§I
// "web-scale" claim): exhaustive comparisons grow quadratically (slope ≈
// 2) while block construction time and — after size purging, filtering
// and cardinality-node meta-blocking — the suggested candidate set grow
// near-linearly. CNP is the pruning of choice here precisely because its
// per-node retention budget keeps the candidate set O(n·k).
func E12ScaleSweep(scale Scale, seed int64) (*Result, error) {
	sizes := []int{500, 1000, 2000, 4000}
	if scale == Medium {
		sizes = []int{1000, 2000, 4000, 8000, 16000}
	}
	res := newResult(evaluation.NewTable(
		"E12: scale sweep of blocking + planning",
		"entities", "descriptions", "blockMs", "planMs", "suggested", "exhaustive"))
	var ns, blockTimes, suggested, exhaustive []float64
	for _, n := range sizes {
		c, _, err := datagen.GenerateDirty(datagen.Config{Seed: seed, Entities: n, DupRatio: 0.5})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		bs, err := (&blocking.TokenBlocking{}).Block(c)
		if err != nil {
			return nil, err
		}
		blockEl := time.Since(t0)
		t1 := time.Now()
		cleaned := blockproc.Chain{&blockproc.SizePurge{}, &blockproc.BlockFiltering{Ratio: 0.8}}.Process(bs)
		mb := &metablocking.MetaBlocker{Weight: metablocking.ARCS, Prune: metablocking.CNP, Reciprocal: true}
		out := mb.Restructure(c, cleaned)
		planEl := time.Since(t1)
		res.Table.AddRow(n, c.Len(), blockEl.Milliseconds(), planEl.Milliseconds(),
			out.TotalComparisons(), c.TotalComparisons())
		ns = append(ns, float64(c.Len()))
		blockTimes = append(blockTimes, float64(blockEl))
		suggested = append(suggested, float64(out.TotalComparisons()))
		exhaustive = append(exhaustive, float64(c.TotalComparisons()))
	}
	res.Metrics["block_time_slope"] = evaluation.FitSlope(ns, blockTimes)
	res.Metrics["suggested_slope"] = evaluation.FitSlope(ns, suggested)
	res.Metrics["exhaustive_slope"] = evaluation.FitSlope(ns, exhaustive)
	res.Table.AddRow("log-log slope", "", fmt.Sprintf("block=%.2f", res.Metrics["block_time_slope"]), "",
		fmt.Sprintf("suggested=%.2f", res.Metrics["suggested_slope"]),
		fmt.Sprintf("exhaustive=%.2f", res.Metrics["exhaustive_slope"]))
	return res, nil
}

// Experiment is one registered experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Scale, int64) (*Result, error)
}

// All returns the registered experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "blocking methods PC/PQ/RR", E1BlockingMethods},
		{"E2", "block purging and filtering", E2BlockPurging},
		{"E3", "meta-blocking weighting × pruning", E3MetaBlocking},
		{"E4", "parallel meta-blocking scaling", E4ParallelMetaBlocking},
		{"E5", "similarity-join blocking", E5SimilarityJoin},
		{"E6", "MapReduce blocking throughput", E6MapReduceBlocking},
		{"E7", "R-Swoosh comparisons saved", E7RSwoosh},
		{"E8", "collective vs attribute-only", E8CollectiveER},
		{"E9", "iterative blocking", E9IterativeBlocking},
		{"E10", "progressive recall curves", E10Progressive},
		{"E11", "benefit/cost window ablation", E11BudgetWindows},
		{"E12", "scale sweep", E12ScaleSweep},
	}
}
