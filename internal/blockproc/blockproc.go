// Package blockproc implements block post-processing (§II of the paper):
// techniques that take a blocking collection and discard comparisons that
// cannot or are unlikely to produce matches, without looking at the
// descriptions themselves. It covers block purging (dropping oversized
// blocks), block filtering (retaining each description only in its most
// selective blocks) and comparison propagation (suppressing redundant
// comparisons repeated across overlapping blocks).
package blockproc

import (
	"fmt"
	"math"
	"sort"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// Processor transforms one blocking collection into a cheaper one.
type Processor interface {
	// Name identifies the processor in experiment tables.
	Name() string
	// Process returns the transformed collection; the input is not
	// modified.
	Process(bs *blocking.Blocks) *blocking.Blocks
}

// MaxComparisonsPurge drops every block suggesting more comparisons than
// Max. It is the blunt form of block purging: oversized blocks stem from
// stopword-like keys and contribute mostly superfluous comparisons.
type MaxComparisonsPurge struct {
	// Max is the per-block comparison budget; blocks above it are dropped.
	Max int64
}

// Name implements Processor.
func (p *MaxComparisonsPurge) Name() string { return fmt.Sprintf("purge(max=%d)", p.Max) }

// Process implements Processor.
func (p *MaxComparisonsPurge) Process(bs *blocking.Blocks) *blocking.Blocks {
	out := blocking.NewBlocks(bs.Kind())
	for _, b := range bs.All() {
		if b.Comparisons(bs.Kind()) <= p.Max {
			out.Add(b)
		}
	}
	return out
}

// AutoPurge is the assumption-free block purging of [20]: the per-block
// comparison cutoff is derived from the collection itself. Blocks are
// grouped by comparison cardinality in ascending order while tracking the
// cumulative comparisons-per-assignment ratio; the cutoff is set just
// before the first cardinality at which that ratio grows by more than
// SmoothFactor. Oversized (stopword-key) blocks add enormously many
// comparisons per entity-block assignment, so they sit after a sharp ratio
// jump and are dropped, while collections with uniformly sized blocks see
// no jump and are kept intact.
type AutoPurge struct {
	// SmoothFactor bounds the tolerated growth of the cumulative
	// comparisons-per-assignment ratio between consecutive block
	// cardinalities; values ≤ 1 default to 2.0. The ratio grows gradually
	// across the legitimate size spectrum (well under 2× per step) and
	// multiplies abruptly when a stopword-key block enters, so a doubling
	// marks the explosion point.
	SmoothFactor float64
}

// Name implements Processor.
func (p *AutoPurge) Name() string { return "autopurge" }

// Cutoff returns the chosen per-block comparison bound for bs.
func (p *AutoPurge) Cutoff(bs *blocking.Blocks) int64 {
	smooth := p.SmoothFactor
	if smooth <= 1 {
		smooth = 2.0
	}
	// Aggregate assignments and comparisons per distinct cardinality.
	perCard := make(map[int64]*[2]int64) // cardinality → {assignments, comparisons}
	for _, b := range bs.All() {
		c := b.Comparisons(bs.Kind())
		agg, ok := perCard[c]
		if !ok {
			agg = &[2]int64{}
			perCard[c] = agg
		}
		agg[0] += int64(b.Size())
		agg[1] += c
	}
	if len(perCard) == 0 {
		return 0
	}
	cards := make([]int64, 0, len(perCard))
	for c := range perCard {
		cards = append(cards, c)
	}
	sort.Slice(cards, func(i, j int) bool { return cards[i] < cards[j] })
	var cumAssign, cumComp int64
	prevRatio := 0.0
	cutoff := cards[len(cards)-1]
	for i, c := range cards {
		cumAssign += perCard[c][0]
		cumComp += perCard[c][1]
		ratio := float64(cumComp) / float64(cumAssign)
		if i > 0 && prevRatio > 0 && ratio > smooth*prevRatio {
			cutoff = cards[i-1]
			break
		}
		prevRatio = ratio
	}
	return cutoff
}

// Process implements Processor.
func (p *AutoPurge) Process(bs *blocking.Blocks) *blocking.Blocks {
	cut := p.Cutoff(bs)
	return (&MaxComparisonsPurge{Max: cut}).Process(bs)
}

// SizePurge drops every block containing more than Fraction of the
// distinct descriptions appearing in the collection — the size-based
// purging variant: a key shared by a substantial fraction of all
// descriptions (cities, genres, years) has no discriminative power
// regardless of how the comparison counts are distributed. It complements
// AutoPurge, which only fires on discontinuous cardinality explosions.
type SizePurge struct {
	// Fraction is the maximum block size as a fraction of the distinct
	// descriptions in the collection, in (0,1]; values outside default to
	// 0.05. Blocks of two descriptions are always kept.
	Fraction float64
}

// Name implements Processor.
func (p *SizePurge) Name() string { return "sizepurge" }

// Process implements Processor.
func (p *SizePurge) Process(bs *blocking.Blocks) *blocking.Blocks {
	frac := p.Fraction
	if frac <= 0 || frac > 1 {
		frac = 0.05
	}
	distinct := make(map[entity.ID]struct{})
	for _, b := range bs.All() {
		for _, id := range b.S0 {
			distinct[id] = struct{}{}
		}
		for _, id := range b.S1 {
			distinct[id] = struct{}{}
		}
	}
	limit := int(frac * float64(len(distinct)))
	if limit < 2 {
		limit = 2
	}
	out := blocking.NewBlocks(bs.Kind())
	for _, b := range bs.All() {
		if b.Size() <= limit {
			out.Add(b)
		}
	}
	return out
}

// BlockFiltering retains each description only in its Ratio·|blocks|
// smallest blocks (by comparison cardinality), then rebuilds the
// collection. Small blocks are the most selective evidence of a match;
// removing a description from its bloated blocks prunes low-value
// comparisons even when the blocks themselves survive purging.
type BlockFiltering struct {
	// Ratio is the fraction of each description's blocks to keep, in
	// (0,1]; values outside default to 0.8.
	Ratio float64
}

// Name implements Processor.
func (f *BlockFiltering) Name() string { return "filter" }

// Process implements Processor.
func (f *BlockFiltering) Process(bs *blocking.Blocks) *blocking.Blocks {
	ratio := f.Ratio
	if ratio <= 0 || ratio > 1 {
		ratio = 0.8
	}
	kind := bs.Kind()
	all := bs.All()
	// Order block indices by cardinality once; per-description keeps follow
	// this global order, so "smallest blocks first" is consistent.
	order := make([]int, len(all))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return all[order[i]].Comparisons(kind) < all[order[j]].Comparisons(kind)
	})
	rank := make([]int, len(all))
	for r, idx := range order {
		rank[idx] = r
	}
	// Collect each description's blocks sorted by rank and mark keepers.
	blocksOf := bs.BlocksOf()
	type key struct {
		id  entity.ID
		idx int
	}
	keep := make(map[key]struct{})
	for id, idxs := range blocksOf {
		sorted := append([]int(nil), idxs...)
		sort.Slice(sorted, func(i, j int) bool { return rank[sorted[i]] < rank[sorted[j]] })
		n := int(math.Ceil(ratio * float64(len(sorted))))
		if n < 1 {
			n = 1
		}
		for _, idx := range sorted[:n] {
			keep[key{id, idx}] = struct{}{}
		}
	}
	out := blocking.NewBlocks(kind)
	for idx, b := range all {
		nb := &blocking.Block{Key: b.Key}
		for _, id := range b.S0 {
			if _, ok := keep[key{id, idx}]; ok {
				nb.S0 = append(nb.S0, id)
			}
		}
		for _, id := range b.S1 {
			if _, ok := keep[key{id, idx}]; ok {
				nb.S1 = append(nb.S1, id)
			}
		}
		out.Add(nb)
	}
	return out
}

// Chain applies processors in order.
type Chain []Processor

// Name implements Processor.
func (c Chain) Name() string {
	s := "chain("
	for i, p := range c {
		if i > 0 {
			s += ","
		}
		s += p.Name()
	}
	return s + ")"
}

// Process implements Processor.
func (c Chain) Process(bs *blocking.Blocks) *blocking.Blocks {
	for _, p := range c {
		bs = p.Process(bs)
	}
	return bs
}
