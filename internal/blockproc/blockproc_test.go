package blockproc

import (
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

func mkBlocks(kind entity.Kind, sizes ...int) *blocking.Blocks {
	bs := blocking.NewBlocks(kind)
	next := 0
	for i, n := range sizes {
		b := &blocking.Block{Key: string(rune('a' + i))}
		for j := 0; j < n; j++ {
			b.S0 = append(b.S0, next)
			next++
		}
		bs.Add(b)
	}
	return bs
}

func TestMaxComparisonsPurge(t *testing.T) {
	bs := mkBlocks(entity.Dirty, 2, 3, 10) // comparisons: 1, 3, 45
	out := (&MaxComparisonsPurge{Max: 3}).Process(bs)
	if out.Len() != 2 {
		t.Fatalf("blocks after purge = %d", out.Len())
	}
	if out.TotalComparisons() != 4 {
		t.Fatalf("comparisons after purge = %d", out.TotalComparisons())
	}
	if !strings.Contains((&MaxComparisonsPurge{Max: 3}).Name(), "3") {
		t.Fatal("Name should mention threshold")
	}
}

func TestAutoPurgeCutoff(t *testing.T) {
	// 10 small blocks of 2 (ratio 0.5 comparisons/assignment) + 1 huge
	// block of 40 (jumps the cumulative ratio to ~13): cutoff lands before
	// the jump and only small blocks survive.
	sizes := make([]int, 0, 11)
	for i := 0; i < 10; i++ {
		sizes = append(sizes, 2)
	}
	sizes = append(sizes, 40)
	bs := mkBlocks(entity.Dirty, sizes...)
	p := &AutoPurge{}
	if cut := p.Cutoff(bs); cut != 1 {
		t.Fatalf("cutoff = %d, want 1", cut)
	}
	out := p.Process(bs)
	if out.Len() != 10 {
		t.Fatalf("blocks after autopurge = %d", out.Len())
	}
}

func TestAutoPurgeUniformBlocksKeptWhole(t *testing.T) {
	bs := mkBlocks(entity.Dirty, 3, 3, 3, 3)
	if got := (&AutoPurge{}).Process(bs).Len(); got != 4 {
		t.Fatalf("uniform collection purged: %d blocks", got)
	}
	// A generous smooth factor also keeps a mildly skewed collection.
	skew := mkBlocks(entity.Dirty, 2, 2, 3)
	if got := (&AutoPurge{SmoothFactor: 10}).Process(skew).Len(); got != 3 {
		t.Fatalf("generous factor purged: %d blocks", got)
	}
}

func TestAutoPurgeDefaultsAndEmpty(t *testing.T) {
	p := &AutoPurge{}
	empty := blocking.NewBlocks(entity.Dirty)
	if cut := p.Cutoff(empty); cut != 0 {
		t.Fatalf("empty cutoff = %d", cut)
	}
	if got := p.Process(empty).Len(); got != 0 {
		t.Fatalf("empty processed = %d", got)
	}
	if p.Name() != "autopurge" {
		t.Fatal("name")
	}
}

func TestAutoPurgeDropsStopwordBlock(t *testing.T) {
	// Realistic shape: many selective blocks plus one stopword block
	// containing everything. Default settings must drop the giant.
	bs := blocking.NewBlocks(entity.Dirty)
	giant := &blocking.Block{Key: "the"}
	for i := 0; i < 100; i++ {
		giant.S0 = append(giant.S0, i)
	}
	for i := 0; i < 99; i++ {
		bs.Add(&blocking.Block{Key: "k" + string(rune(i)), S0: []entity.ID{i, i + 1}})
	}
	bs.Add(giant)
	out := (&AutoPurge{}).Process(bs)
	for _, b := range out.All() {
		if b.Key == "the" {
			t.Fatal("stopword block survived autopurge")
		}
	}
	if out.Len() != 99 {
		t.Fatalf("selective blocks lost: %d", out.Len())
	}
}

func TestSizePurgeDropsFractionallyLargeBlocks(t *testing.T) {
	bs := blocking.NewBlocks(entity.Dirty)
	big := &blocking.Block{Key: "big"}
	for i := 0; i < 50; i++ {
		big.S0 = append(big.S0, i)
	}
	bs.Add(big)
	bs.Add(&blocking.Block{Key: "small", S0: []entity.ID{0, 1, 2}})
	out := (&SizePurge{Fraction: 0.1}).Process(bs) // limit = 5 of 50 distinct
	if out.Len() != 1 || out.Get(0).Key != "small" {
		t.Fatalf("SizePurge kept %d blocks", out.Len())
	}
	if (&SizePurge{}).Name() != "sizepurge" {
		t.Fatal("name")
	}
}

func TestSizePurgeKeepsPairBlocks(t *testing.T) {
	// Even with a tiny fraction, two-description blocks survive (limit
	// floors at 2).
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "pair", S0: []entity.ID{0, 1}})
	out := (&SizePurge{Fraction: 0.0001}).Process(bs)
	if out.Len() != 1 {
		t.Fatal("pair block purged")
	}
}

func TestSizePurgeEmptyCollection(t *testing.T) {
	out := (&SizePurge{}).Process(blocking.NewBlocks(entity.Dirty))
	if out.Len() != 0 {
		t.Fatal("empty collection")
	}
}

func TestBlockFilteringRemovesBloatedMemberships(t *testing.T) {
	// Entity 0 appears in one tiny and one huge block; ratio 0.5 keeps it
	// only in the tiny one.
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "tiny", S0: []entity.ID{0, 1}})
	huge := &blocking.Block{Key: "huge", S0: []entity.ID{0, 1, 2, 3, 4, 5}}
	bs.Add(huge)
	out := (&BlockFiltering{Ratio: 0.5}).Process(bs)
	for _, b := range out.All() {
		if b.Key == "huge" {
			for _, id := range b.S0 {
				if id == 0 || id == 1 {
					t.Fatalf("entity %d kept in huge block", id)
				}
			}
		}
	}
	// Entities 2..5 keep their single block.
	if out.TotalComparisons() >= bs.TotalComparisons() {
		t.Fatal("filtering should reduce comparisons")
	}
}

func TestBlockFilteringKeepsAtLeastOne(t *testing.T) {
	bs := mkBlocks(entity.Dirty, 2)
	out := (&BlockFiltering{Ratio: 0.01}).Process(bs)
	if out.Len() != 1 {
		t.Fatalf("sole block lost: %d", out.Len())
	}
}

func TestChain(t *testing.T) {
	bs := mkBlocks(entity.Dirty, 2, 3, 10)
	ch := Chain{&MaxComparisonsPurge{Max: 10}, &BlockFiltering{Ratio: 1}}
	out := ch.Process(bs)
	if out.Len() != 2 {
		t.Fatalf("chain output blocks = %d", out.Len())
	}
	name := ch.Name()
	if !strings.HasPrefix(name, "chain(") || !strings.Contains(name, "filter") {
		t.Fatalf("chain name = %q", name)
	}
}

func TestPropagatorLeastCommonBlock(t *testing.T) {
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "a", S0: []entity.ID{1, 2}})
	bs.Add(&blocking.Block{Key: "b", S0: []entity.ID{1, 2, 3}})
	p := NewPropagator(bs)
	if got := p.LeastCommonBlock(1, 2); got != 0 {
		t.Fatalf("LeCoBI(1,2) = %d", got)
	}
	if got := p.LeastCommonBlock(2, 3); got != 1 {
		t.Fatalf("LeCoBI(2,3) = %d", got)
	}
	if got := p.LeastCommonBlock(1, 99); got != -1 {
		t.Fatalf("LeCoBI(1,99) = %d", got)
	}
	if !p.ShouldCompare(0, 1, 2) || p.ShouldCompare(1, 1, 2) {
		t.Fatal("ShouldCompare wrong")
	}
}

func TestEachNonRedundantMatchesDistinctPairs(t *testing.T) {
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "a", S0: []entity.ID{1, 2, 3}})
	bs.Add(&blocking.Block{Key: "b", S0: []entity.ID{2, 3, 4}})
	bs.Add(&blocking.Block{Key: "c", S0: []entity.ID{1, 4}})
	want := bs.DistinctPairs()
	got := entity.NewPairSet(0)
	EachNonRedundant(bs, func(_ int, p entity.Pair) bool {
		if !got.Add(p.A, p.B) {
			t.Fatalf("pair %v enumerated twice", p)
		}
		return true
	})
	if got.Len() != want.Len() {
		t.Fatalf("non-redundant pairs = %d, want %d", got.Len(), want.Len())
	}
	// Early stop.
	n := 0
	EachNonRedundant(bs, func(int, entity.Pair) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}
