package blockproc

import (
	"sort"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// Propagator implements comparison propagation: executing every distinct
// comparison of an overlapping blocking collection exactly once, without
// materializing the deduplicated pair set. A pair is executed only inside
// its least common block index (LeCoBI): the first block, in processing
// order, that contains both descriptions. All later co-occurrences are
// redundant and skipped in O(common blocks) time.
type Propagator struct {
	blocksOf map[entity.ID][]int
}

// NewPropagator indexes the collection for least-common-block tests. The
// block order of bs at construction time defines the processing order.
func NewPropagator(bs *blocking.Blocks) *Propagator {
	m := bs.BlocksOf()
	for _, idxs := range m {
		sort.Ints(idxs)
	}
	return &Propagator{blocksOf: m}
}

// LeastCommonBlock returns the smallest block index containing both a and
// b, or -1 when they share no block.
func (p *Propagator) LeastCommonBlock(a, b entity.ID) int {
	ia, ib := p.blocksOf[a], p.blocksOf[b]
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		switch {
		case ia[i] == ib[j]:
			return ia[i]
		case ia[i] < ib[j]:
			i++
		default:
			j++
		}
	}
	return -1
}

// ShouldCompare reports whether the comparison (a, b) encountered inside
// block blockIdx is non-redundant, i.e. blockIdx is the pair's least common
// block index.
func (p *Propagator) ShouldCompare(blockIdx int, a, b entity.ID) bool {
	return p.LeastCommonBlock(a, b) == blockIdx
}

// EachNonRedundant enumerates every distinct comparison of bs exactly once
// using least-common-block tests instead of a pair hash set; fn receives
// the block index and the pair. Enumeration stops early if fn returns
// false.
func EachNonRedundant(bs *blocking.Blocks, fn func(blockIdx int, pair entity.Pair) bool) {
	p := NewPropagator(bs)
	for idx, b := range bs.All() {
		stop := false
		b.EachComparison(bs.Kind(), func(x, y entity.ID) bool {
			if p.ShouldCompare(idx, x, y) {
				if !fn(idx, entity.NewPair(x, y)) {
					stop = true
					return false
				}
			}
			return true
		})
		if stop {
			return
		}
	}
}
