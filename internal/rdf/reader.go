package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"entityres/internal/entity"
)

// Reader streams descriptions out of an N-Triples document without
// materializing the triple list: consecutive triples sharing a subject
// are grouped into one description, so a document written subject-by-
// subject (as WriteCollection and every exporter in this module emit)
// reads back in bounded memory. A subject that reappears after an
// intervening subject starts a fresh description — the streaming trade-off
// against AddToCollection, which merges across the whole document.
type Reader struct {
	sc      *bufio.Scanner
	lineNo  int
	current *entity.Description
	done    bool
}

// NewReader prepares a streaming N-Triples reader over r, with the same
// line-length ceiling, comment handling and strictness as Parse.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Next returns the next subject's description, or io.EOF at end of input.
// Predicate local names become attribute names and values keep document
// order, exactly as AddToCollection maps them.
func (r *Reader) Next() (*entity.Description, error) {
	if r.done {
		if d := r.current; d != nil {
			r.current = nil
			return d, nil
		}
		return nil, io.EOF
	}
	for r.sc.Scan() {
		r.lineNo++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", r.lineNo, err)
		}
		if r.current != nil && r.current.URI == t.Subject {
			r.current.Add(LocalName(t.Predicate), t.Object)
			continue
		}
		prev := r.current
		r.current = entity.NewDescription(t.Subject)
		r.current.Add(LocalName(t.Predicate), t.Object)
		if prev != nil {
			return prev, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: %w", err)
	}
	r.done = true
	return r.Next()
}
