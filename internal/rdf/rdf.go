// Package rdf provides the Linked-Data ingestion substrate: a parser and
// serializer for the N-Triples exchange format, and the mapping between
// triple sets and entity descriptions (subject URI → description; predicate
// local name → attribute name; literal or object IRI → attribute value).
// The paper's setting is entity descriptions published as RDF in the Web of
// data; this package is how such data enters the framework.
package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Triple is one RDF statement. Object IRIs and literals are distinguished
// by ObjectIsIRI; literal datatype/language tags are parsed and dropped
// (the lexical form is what entity resolution consumes).
type Triple struct {
	Subject     string
	Predicate   string
	Object      string
	ObjectIsIRI bool
}

// Parse reads an N-Triples document, skipping blank lines and comments.
// Errors identify the offending line number.
func Parse(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: %w", err)
	}
	return out, nil
}

// ParseLine parses a single N-Triples statement (without trailing
// newline). Statements must be valid UTF-8, per the N-Triples
// specification; accepting raw invalid bytes would produce triples that
// cannot round-trip through the serializer, which escapes rune-wise.
func ParseLine(line string) (Triple, error) {
	if !utf8.ValidString(line) {
		return Triple{}, fmt.Errorf("statement is not valid UTF-8")
	}
	rest := strings.TrimSpace(line)
	subj, rest, err := parseIRI(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pred, rest, err := parseIRI(strings.TrimSpace(rest))
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return Triple{}, fmt.Errorf("missing object")
	}
	var t Triple
	t.Subject, t.Predicate = subj, pred
	switch rest[0] {
	case '<':
		obj, tail, err := parseIRI(rest)
		if err != nil {
			return Triple{}, fmt.Errorf("object: %w", err)
		}
		t.Object, t.ObjectIsIRI = obj, true
		rest = tail
	case '"':
		lit, tail, err := parseLiteral(rest)
		if err != nil {
			return Triple{}, fmt.Errorf("object: %w", err)
		}
		t.Object = lit
		rest = tail
	default:
		return Triple{}, fmt.Errorf("object must be IRI or literal, got %q", rest)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return Triple{}, fmt.Errorf("statement must end with '.', got %q", rest)
	}
	return t, nil
}

// parseIRI consumes "<...>" from the front of s.
func parseIRI(s string) (iri, rest string, err error) {
	if len(s) == 0 || s[0] != '<' {
		return "", "", fmt.Errorf("expected '<', got %q", s)
	}
	end := strings.IndexByte(s, '>')
	if end < 0 {
		return "", "", fmt.Errorf("unterminated IRI in %q", s)
	}
	return s[1:end], s[end+1:], nil
}

// parseLiteral consumes a quoted literal with optional @lang or ^^<type>
// suffix from the front of s, unescaping the lexical form.
func parseLiteral(s string) (lit, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected '\"', got %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == '"' {
			break
		}
		if c != '\\' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", "", fmt.Errorf("dangling escape in %q", s)
		}
		switch s[i+1] {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'u':
			if i+6 > len(s) {
				return "", "", fmt.Errorf("short \\u escape in %q", s)
			}
			code, err := strconv.ParseUint(s[i+2:i+6], 16, 32)
			if err != nil {
				return "", "", fmt.Errorf("bad \\u escape in %q", s)
			}
			b.WriteRune(rune(code))
			i += 6
			continue
		default:
			return "", "", fmt.Errorf("unknown escape \\%c", s[i+1])
		}
		i += 2
	}
	if i >= len(s) {
		return "", "", fmt.Errorf("unterminated literal in %q", s)
	}
	rest = s[i+1:]
	// Optional tags.
	switch {
	case strings.HasPrefix(rest, "@"):
		j := 1
		for j < len(rest) && rest[j] != ' ' && rest[j] != '\t' {
			j++
		}
		rest = rest[j:]
	case strings.HasPrefix(rest, "^^"):
		_, tail, err := parseIRI(rest[2:])
		if err != nil {
			return "", "", fmt.Errorf("bad datatype: %w", err)
		}
		rest = tail
	}
	return b.String(), rest, nil
}

// LocalName returns the fragment after the last '#' or '/' of an IRI; the
// conventional attribute-name extraction for RDF predicates.
func LocalName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}

// EscapeLiteral escapes a literal's lexical form for N-Triples output.
func EscapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
