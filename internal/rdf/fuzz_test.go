package rdf

import (
	"strings"
	"testing"
)

// FuzzParseLine checks the N-Triples statement parser never panics and that
// every accepted statement survives a serialize → re-parse round trip with
// identical fields — the invariant that makes WriteCollection/Parse a
// lossless exchange path.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		`<http://a> <http://p> <http://b> .`,
		`<http://a> <http://p> "literal" .`,
		`<http://a> <http://p> "esc \" \\ \t \n \r" .`,
		`<http://a> <http://p> "unicode é€" .`,
		`<http://a> <http://p> "tagged"@en .`,
		`<http://a> <http://p> "typed"^^<http://www.w3.org/2001/XMLSchema#string> .`,
		`<s> <p> "" .`,
		`<s> <p> "dangling`,
		`<s> <p> "bad \u12" .`,
		`<s> <p> missing .`,
		`<s> <p> "x" junk`,
		`  <s>   <p>   "spaced"   .  `,
		``,
		`# comment`,
		`<s> <p`,
		"\x00\x01\x02",
		`<s> <p> "\uD800" .`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseLine(line)
		if err != nil {
			return
		}
		// Accepted statements must re-serialize into a parseable statement
		// with the same content. IRIs cannot contain '>' (the parser stops
		// at the first one) and literals go through EscapeLiteral.
		var obj string
		if tr.ObjectIsIRI {
			obj = "<" + tr.Object + ">"
		} else {
			obj = `"` + EscapeLiteral(tr.Object) + `"`
		}
		line2 := "<" + tr.Subject + "> <" + tr.Predicate + "> " + obj + " ."
		tr2, err := ParseLine(line2)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", line2, line, err)
		}
		if tr2 != tr {
			t.Fatalf("round trip changed the triple: %+v -> %+v", tr, tr2)
		}
	})
}

// FuzzParse checks the document parser: never panics, and accepted
// documents report as many triples as non-blank non-comment lines.
func FuzzParse(f *testing.F) {
	f.Add("<a> <b> \"c\" .\n# comment\n\n<d> <e> <f> .\n")
	f.Add("<a> <b> \"multi\\nline\" .\n")
	f.Add("bogus\n")
	f.Add(strings.Repeat(`<s> <p> "v" .`+"\n", 50))
	f.Fuzz(func(t *testing.T, doc string) {
		triples, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		statements := 0
		for _, line := range strings.Split(doc, "\n") {
			trimmed := strings.TrimSpace(line)
			if trimmed != "" && !strings.HasPrefix(trimmed, "#") {
				statements++
			}
		}
		if len(triples) != statements {
			t.Fatalf("parsed %d triples from %d statements", len(triples), statements)
		}
	})
}
