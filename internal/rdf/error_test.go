package rdf

import (
	"errors"
	"strings"
	"testing"

	"entityres/internal/entity"
)

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestWriteCollectionPropagatesWriterError(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("http://kb/x").Add("name", "alice"))
	err := WriteCollection(&failWriter{}, c)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteCollectionDeterministicAttrOrder(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("http://kb/x").
		Add("zeta", "2").
		Add("alpha", "1"))
	var a, b strings.Builder
	if err := WriteCollection(&a, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteCollection(&b, c); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("nondeterministic serialization")
	}
	if !strings.Contains(strings.Split(a.String(), "\n")[0], "alpha") {
		t.Fatalf("attributes not sorted:\n%s", a.String())
	}
}

func TestLooksLikeIRI(t *testing.T) {
	for _, v := range []string{"http://x", "https://x", "urn:x"} {
		if !looksLikeIRI(v) {
			t.Fatalf("looksLikeIRI(%q) = false", v)
		}
	}
	if looksLikeIRI("plain text") {
		t.Fatal("plain text treated as IRI")
	}
}
