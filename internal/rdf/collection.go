package rdf

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"entityres/internal/entity"
)

// AddToCollection parses an N-Triples document and appends one description
// per distinct subject to c, tagged with the given source. Predicate local
// names become attribute names; literal objects keep their lexical form and
// IRI objects keep the full IRI (so relationship-based resolution can
// follow them). Subjects are added in first-appearance order, attribute
// values in document order.
func AddToCollection(c *entity.Collection, r io.Reader, source int) error {
	triples, err := Parse(r)
	if err != nil {
		return err
	}
	descs := make(map[string]*entity.Description)
	var order []string
	for _, t := range triples {
		d, ok := descs[t.Subject]
		if !ok {
			d = entity.NewDescription(t.Subject)
			d.Source = source
			descs[t.Subject] = d
			order = append(order, t.Subject)
		}
		d.Add(LocalName(t.Predicate), t.Object)
	}
	for _, uri := range order {
		if _, err := c.Add(descs[uri]); err != nil {
			return fmt.Errorf("rdf: %w", err)
		}
	}
	return nil
}

// WriteCollection serializes every description of c as N-Triples, one
// triple per attribute-value pair. Descriptions without a URI receive a
// synthetic urn:entityres:<id> subject. Attribute names become predicates
// under the urn:entityres:attr/ namespace; values that look like IRIs
// (http://, https://, urn:) are written as IRI objects, everything else as
// escaped literals.
func WriteCollection(w io.Writer, c *entity.Collection) error {
	for _, d := range c.All() {
		if err := WriteDescription(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteDescription serializes one description as N-Triples, using the
// same subject, predicate and object conventions as WriteCollection —
// streaming exporters call it record by record.
func WriteDescription(w io.Writer, d *entity.Description) error {
	subj := d.URI
	if subj == "" {
		subj = fmt.Sprintf("urn:entityres:%d", d.ID)
	}
	// Deterministic attribute order: document order is preserved as
	// inserted; sort a copy by (name, value) for stable output.
	attrs := append([]entity.Attribute(nil), d.Attrs...)
	sort.Slice(attrs, func(i, j int) bool {
		if attrs[i].Name != attrs[j].Name {
			return attrs[i].Name < attrs[j].Name
		}
		return attrs[i].Value < attrs[j].Value
	})
	for _, a := range attrs {
		var obj string
		if looksLikeIRI(a.Value) {
			obj = "<" + a.Value + ">"
		} else {
			obj = `"` + EscapeLiteral(a.Value) + `"`
		}
		if _, err := fmt.Fprintf(w, "<%s> <urn:entityres:attr/%s> %s .\n", subj, a.Name, obj); err != nil {
			return fmt.Errorf("rdf: write: %w", err)
		}
	}
	return nil
}

func looksLikeIRI(v string) bool {
	return strings.HasPrefix(v, "http://") ||
		strings.HasPrefix(v, "https://") ||
		strings.HasPrefix(v, "urn:")
}
