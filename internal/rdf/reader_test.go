package rdf

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"entityres/internal/entity"
)

func drainReader(t *testing.T, r *Reader) []*entity.Description {
	t.Helper()
	var out []*entity.Description
	for {
		d, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, d)
	}
}

func TestReaderGroupsConsecutiveSubjects(t *testing.T) {
	doc := `# header comment
<http://x/a> <urn:entityres:attr/name> "Alice" .
<http://x/a> <urn:entityres:attr/city> "Paris" .

<http://x/b> <urn:entityres:attr/name> "Bob" .
`
	descs := drainReader(t, NewReader(strings.NewReader(doc)))
	if len(descs) != 2 {
		t.Fatalf("got %d descriptions, want 2", len(descs))
	}
	if descs[0].URI != "http://x/a" || len(descs[0].Attrs) != 2 {
		t.Fatalf("first description: %+v", descs[0])
	}
	if descs[0].Attrs[0].Name != "name" || descs[0].Attrs[1].Value != "Paris" {
		t.Fatalf("attribute mapping: %+v", descs[0].Attrs)
	}
	if descs[1].URI != "http://x/b" {
		t.Fatalf("second description: %+v", descs[1])
	}
}

// TestReaderMatchesAddToCollection pins streaming/batch parity on
// subject-grouped documents — the shape every writer in this module
// produces.
func TestReaderMatchesAddToCollection(t *testing.T) {
	doc := `<http://x/a> <urn:entityres:attr/name> "Alice" .
<http://x/a> <urn:entityres:attr/knows> <http://x/b> .
<http://x/b> <urn:entityres:attr/name> "Bob" .
<http://x/c> <urn:entityres:attr/name> "Cara" .
`
	c := entity.NewCollection(entity.Dirty)
	if err := AddToCollection(c, strings.NewReader(doc), 0); err != nil {
		t.Fatal(err)
	}
	descs := drainReader(t, NewReader(strings.NewReader(doc)))
	if len(descs) != c.Len() {
		t.Fatalf("streamed %d descriptions, batch added %d", len(descs), c.Len())
	}
	for i, d := range descs {
		want := c.Get(entity.ID(i))
		if d.URI != want.URI || !reflect.DeepEqual(d.Attrs, want.Attrs) {
			t.Fatalf("description %d diverges:\nstream: %s %v\nbatch:  %s %v", i, d.URI, d.Attrs, want.URI, want.Attrs)
		}
	}
}

func TestReaderReappearingSubjectSplits(t *testing.T) {
	doc := `<http://x/a> <urn:p> "1" .
<http://x/b> <urn:p> "2" .
<http://x/a> <urn:p> "3" .
`
	descs := drainReader(t, NewReader(strings.NewReader(doc)))
	if len(descs) != 3 {
		t.Fatalf("non-consecutive subject must start a new description, got %d", len(descs))
	}
}

func TestReaderErrorsCarryLineNumbers(t *testing.T) {
	doc := "<http://x/a> <urn:p> \"ok\" .\nnot a triple\n"
	r := NewReader(strings.NewReader(doc))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if err == io.EOF || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error = %v, want line 2 position", err)
	}
}

func TestReaderEmptyDocument(t *testing.T) {
	if _, err := NewReader(strings.NewReader("\n# only comments\n")).Next(); err != io.EOF {
		t.Fatalf("empty document: err = %v, want io.EOF", err)
	}
}
