package rdf

import (
	"bytes"
	"strings"
	"testing"

	"entityres/internal/entity"
)

func TestParseLineIRIObject(t *testing.T) {
	got, err := ParseLine(`<http://a> <http://p> <http://b> .`)
	if err != nil {
		t.Fatal(err)
	}
	want := Triple{Subject: "http://a", Predicate: "http://p", Object: "http://b", ObjectIsIRI: true}
	if got != want {
		t.Fatalf("got %+v", got)
	}
}

func TestParseLineLiteralVariants(t *testing.T) {
	cases := []struct {
		line string
		want string
	}{
		{`<s:a> <p:b> "plain" .`, "plain"},
		{`<s:a> <p:b> "tagged"@en .`, "tagged"},
		{`<s:a> <p:b> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`, "42"},
		{`<s:a> <p:b> "esc \"q\" \\ \n \t" .`, "esc \"q\" \\ \n \t"},
		{`<s:a> <p:b> "état" .`, "état"},
	}
	for _, c := range cases {
		got, err := ParseLine(c.line)
		if err != nil {
			t.Fatalf("%q: %v", c.line, err)
		}
		if got.Object != c.want || got.ObjectIsIRI {
			t.Fatalf("%q → %+v, want object %q", c.line, got, c.want)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		``,
		`<s:a>`,
		`<s:a> <p:b>`,
		`<s:a> <p:b> bare .`,
		`<s:a> <p:b> "unterminated .`,
		`<s:a> <p:b> "x"`,
		`<s:a> <p:b> "x" extra .`,
		`<s:a <p:b> "x" .`,
		`<s:a> <p:b> "bad \q escape" .`,
		`<s:a> <p:b> "short \u12" .`,
		`<s:a> <p:b> "x"^^bad .`,
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Fatalf("accepted %q", line)
		}
	}
}

func TestParseDocumentSkipsCommentsAndReportsLines(t *testing.T) {
	doc := "# comment\n\n<s:a> <p:n> \"x\" .\n<s:b> <p:n> broken .\n"
	_, err := Parse(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("err = %v", err)
	}
	ok, err := Parse(strings.NewReader("# only comments\n\n"))
	if err != nil || len(ok) != 0 {
		t.Fatalf("comments-only: %v, %v", ok, err)
	}
}

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://ex.org/onto#name": "name",
		"http://ex.org/res/Alan":  "Alan",
		"nolocal":                 "nolocal",
	}
	for in, want := range cases {
		if got := LocalName(in); got != want {
			t.Fatalf("LocalName(%q) = %q", in, got)
		}
	}
}

func TestAddToCollection(t *testing.T) {
	doc := `<http://kb/e1> <http://onto/name> "Alice Smith" .
<http://kb/e1> <http://onto/knows> <http://kb/e2> .
<http://kb/e2> <http://onto/name> "Bob" .
`
	c := entity.NewCollection(entity.Dirty)
	if err := AddToCollection(c, strings.NewReader(doc), 0); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	d := c.Get(0)
	if d.URI != "http://kb/e1" {
		t.Fatalf("URI = %q", d.URI)
	}
	if v, _ := d.Value("name"); v != "Alice Smith" {
		t.Fatalf("name = %q", v)
	}
	if v, _ := d.Value("knows"); v != "http://kb/e2" {
		t.Fatalf("knows = %q (full IRI expected)", v)
	}
}

func TestAddToCollectionSourceValidation(t *testing.T) {
	doc := `<http://kb/e1> <http://onto/name> "x" .` + "\n"
	c := entity.NewCollection(entity.Dirty)
	if err := AddToCollection(c, strings.NewReader(doc), 1); err == nil {
		t.Fatal("source 1 into dirty collection must fail")
	}
}

func TestRoundTrip(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	d := entity.NewDescription("http://kb/x").
		Add("name", `weird "value" with \ and`+"\ttab").
		Add("link", "http://kb/y")
	c.MustAdd(d)
	c.MustAdd(entity.NewDescription("").Add("name", "anon"))
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2 := entity.NewCollection(entity.Dirty)
	if err := AddToCollection(c2, bytes.NewReader(buf.Bytes()), 0); err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, buf.String())
	}
	if c2.Len() != 2 {
		t.Fatalf("round-trip Len = %d", c2.Len())
	}
	var rt *entity.Description
	for _, cand := range c2.All() {
		if cand.URI == "http://kb/x" {
			rt = cand
		}
	}
	if rt == nil {
		t.Fatal("subject lost")
	}
	if v, _ := rt.Value("name"); v != `weird "value" with \ and`+"\ttab" {
		t.Fatalf("escaped value = %q", v)
	}
	if v, _ := rt.Value("link"); v != "http://kb/y" {
		t.Fatalf("IRI value = %q", v)
	}
}

func TestEscapeLiteral(t *testing.T) {
	if got := EscapeLiteral("a\"b\\c\nd\re\tf"); got != `a\"b\\c\nd\re\tf` {
		t.Fatalf("EscapeLiteral = %q", got)
	}
}
