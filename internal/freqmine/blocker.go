package freqmine

import (
	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/token"
)

// Blocking blocks descriptions on frequent token itemsets of a fixed size:
// a description joins the block of every frequent K-itemset fully contained
// in its token set. With K ≥ 2 the keys demand token co-occurrence, giving
// markedly smaller blocks than unigram token blocking.
type Blocking struct {
	// K is the itemset size used as blocking key (default 2).
	K int
	// MinSupport is the minimum support for an itemset to form a block
	// (default 2).
	MinSupport int
	// Profiler controls tokenization; nil means token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements blocking.Blocker.
func (fb *Blocking) Name() string { return "freqitemset" }

// Block implements blocking.Blocker.
func (fb *Blocking) Block(c *entity.Collection) (*blocking.Blocks, error) {
	k := fb.K
	if k < 1 {
		k = 2
	}
	p := fb.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	sets := make([]token.Set, c.Len())
	txs := make([][]string, c.Len())
	for _, d := range c.All() {
		sets[d.ID] = p.Set(d)
		txs[d.ID] = sets[d.ID].Sorted()
	}
	mined := Apriori(txs, fb.MinSupport, k)
	bs := blocking.NewBlocks(c.Kind())
	for _, is := range mined {
		if len(is.Items) != k {
			continue
		}
		b := &blocking.Block{Key: is.Key()}
		for _, d := range c.All() {
			if containsAllSorted(txs[d.ID], is.Items) {
				if d.Source == 1 {
					b.S1 = append(b.S1, d.ID)
				} else {
					b.S0 = append(b.S0, d.ID)
				}
			}
		}
		bs.Add(b)
	}
	return bs, nil
}
