// Package freqmine implements frequent token-set mining and its use as a
// blocking device (§II of the paper, after the scalable frequent-set ideas
// of [19]): blocking keys built from sets of tokens that co-occur in many
// descriptions are far more selective than single tokens, trading a little
// recall for much smaller blocks.
//
// The miner is a classic Apriori over token transactions, plus a
// gap-constrained frequent-sequence variant for ordered token evidence.
package freqmine

import (
	"sort"
	"strings"
)

// Itemset is a frequent set of tokens with its support (number of
// transactions containing all items). Items are sorted ascending.
type Itemset struct {
	Items   []string
	Support int
}

// Key renders the itemset as a canonical blocking key.
func (s Itemset) Key() string { return strings.Join(s.Items, "+") }

// Apriori mines all frequent itemsets with 1 ≤ |items| ≤ maxLen and
// support ≥ minSupport. Results are ordered by (length, key). minSupport
// values below 1 default to 2 — support 1 itemsets block nothing.
func Apriori(transactions [][]string, minSupport, maxLen int) []Itemset {
	if minSupport < 1 {
		minSupport = 2
	}
	if maxLen < 1 {
		maxLen = 1
	}
	// Deduplicate and sort each transaction once.
	txs := make([][]string, len(transactions))
	for i, t := range transactions {
		seen := make(map[string]struct{}, len(t))
		var d []string
		for _, tok := range t {
			if _, dup := seen[tok]; !dup {
				seen[tok] = struct{}{}
				d = append(d, tok)
			}
		}
		sort.Strings(d)
		txs[i] = d
	}
	// L1.
	counts := make(map[string]int)
	for _, t := range txs {
		for _, tok := range t {
			counts[tok]++
		}
	}
	var level []Itemset
	for tok, n := range counts {
		if n >= minSupport {
			level = append(level, Itemset{Items: []string{tok}, Support: n})
		}
	}
	sortItemsets(level)
	all := append([]Itemset(nil), level...)
	for k := 2; k <= maxLen && len(level) > 1; k++ {
		cands := generateCandidates(level)
		if len(cands) == 0 {
			break
		}
		next := countAndFilter(cands, txs, minSupport)
		if len(next) == 0 {
			break
		}
		sortItemsets(next)
		all = append(all, next...)
		level = next
	}
	return all
}

func sortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i].Items) != len(sets[j].Items) {
			return len(sets[i].Items) < len(sets[j].Items)
		}
		return sets[i].Key() < sets[j].Key()
	})
}

// generateCandidates joins frequent (k−1)-itemsets sharing their first k−2
// items and prunes candidates with an infrequent (k−1)-subset.
func generateCandidates(level []Itemset) [][]string {
	frequent := make(map[string]struct{}, len(level))
	for _, s := range level {
		frequent[s.Key()] = struct{}{}
	}
	var cands [][]string
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i].Items, level[j].Items
			k := len(a)
			if !equalPrefix(a, b, k-1) {
				continue
			}
			cand := make([]string, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			if cand[k-1] > cand[k] {
				cand[k-1], cand[k] = cand[k], cand[k-1]
			}
			if allSubsetsFrequent(cand, frequent) {
				cands = append(cands, cand)
			}
		}
	}
	return cands
}

func equalPrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []string, frequent map[string]struct{}) bool {
	sub := make([]string, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if _, ok := frequent[strings.Join(sub, "+")]; !ok {
			return false
		}
	}
	return true
}

func countAndFilter(cands [][]string, txs [][]string, minSupport int) []Itemset {
	counts := make(map[string]int, len(cands))
	byKey := make(map[string][]string, len(cands))
	for _, c := range cands {
		byKey[strings.Join(c, "+")] = c
	}
	for _, t := range txs {
		for key, c := range byKey {
			if containsAllSorted(t, c) {
				counts[key]++
			}
		}
	}
	var out []Itemset
	for key, n := range counts {
		if n >= minSupport {
			out = append(out, Itemset{Items: byKey[key], Support: n})
		}
	}
	return out
}

// containsAllSorted reports whether sorted transaction t contains all items
// of sorted candidate c.
func containsAllSorted(t, c []string) bool {
	i := 0
	for _, item := range c {
		for i < len(t) && t[i] < item {
			i++
		}
		if i >= len(t) || t[i] != item {
			return false
		}
		i++
	}
	return true
}

// SequencePair is a frequent ordered token pair (a before b with at most
// Gap intervening tokens) — the gap-constrained sequence evidence of [19].
type SequencePair struct {
	First, Second string
	Support       int
}

// FrequentSequences mines ordered token pairs occurring within maxGap in at
// least minSupport transactions. Results are sorted by (First, Second).
func FrequentSequences(transactions [][]string, minSupport, maxGap int) []SequencePair {
	if minSupport < 1 {
		minSupport = 2
	}
	if maxGap < 0 {
		maxGap = 0
	}
	type pair struct{ a, b string }
	counts := make(map[pair]int)
	for _, t := range transactions {
		seen := make(map[pair]struct{})
		for i := 0; i < len(t); i++ {
			for j := i + 1; j <= i+1+maxGap && j < len(t); j++ {
				p := pair{t[i], t[j]}
				if _, dup := seen[p]; !dup {
					seen[p] = struct{}{}
					counts[p]++
				}
			}
		}
	}
	var out []SequencePair
	for p, n := range counts {
		if n >= minSupport {
			out = append(out, SequencePair{First: p.a, Second: p.b, Support: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Second < out[j].Second
	})
	return out
}
