package freqmine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"entityres/internal/entity"
)

func TestAprioriSimple(t *testing.T) {
	txs := [][]string{
		{"a", "b", "c"},
		{"a", "b"},
		{"a", "c"},
		{"b", "c"},
	}
	got := Apriori(txs, 2, 2)
	bySupport := map[string]int{}
	for _, s := range got {
		bySupport[s.Key()] = s.Support
	}
	want := map[string]int{
		"a": 3, "b": 3, "c": 3,
		"a+b": 2, "a+c": 2, "b+c": 2,
	}
	if !reflect.DeepEqual(bySupport, want) {
		t.Fatalf("Apriori = %v, want %v", bySupport, want)
	}
}

func TestAprioriMaxLenAndSupport(t *testing.T) {
	txs := [][]string{
		{"a", "b", "c"},
		{"a", "b", "c"},
		{"a", "b", "c"},
	}
	got := Apriori(txs, 3, 3)
	keys := make([]string, 0, len(got))
	for _, s := range got {
		keys = append(keys, s.Key())
	}
	joined := strings.Join(keys, " ")
	if !strings.Contains(joined, "a+b+c") {
		t.Fatalf("3-itemset missing: %v", keys)
	}
	// maxLen caps the size.
	got2 := Apriori(txs, 3, 1)
	for _, s := range got2 {
		if len(s.Items) > 1 {
			t.Fatalf("maxLen violated: %v", s)
		}
	}
	// Too-high support finds nothing.
	if got3 := Apriori(txs, 4, 2); len(got3) != 0 {
		t.Fatalf("overhigh support = %v", got3)
	}
}

func TestAprioriDedupesWithinTransaction(t *testing.T) {
	txs := [][]string{{"a", "a", "a"}, {"a"}}
	got := Apriori(txs, 2, 1)
	if len(got) != 1 || got[0].Support != 2 {
		t.Fatalf("dedup failed: %v", got)
	}
}

// Property: every reported itemset's support matches a brute-force count,
// and every frequent pair is reported.
func TestAprioriMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"a", "b", "c", "d", "e"}
		txs := make([][]string, 12)
		for i := range txs {
			for _, v := range vocab {
				if rng.Intn(2) == 0 {
					txs[i] = append(txs[i], v)
				}
			}
		}
		const minSup = 3
		got := Apriori(txs, minSup, 2)
		count := func(items []string) int {
			n := 0
			for _, tx := range txs {
				have := map[string]bool{}
				for _, tok := range tx {
					have[tok] = true
				}
				ok := true
				for _, it := range items {
					if !have[it] {
						ok = false
						break
					}
				}
				if ok {
					n++
				}
			}
			return n
		}
		reported := map[string]int{}
		for _, s := range got {
			if s.Support != count(s.Items) {
				return false
			}
			reported[s.Key()] = s.Support
		}
		for i := 0; i < len(vocab); i++ {
			for j := i + 1; j < len(vocab); j++ {
				items := []string{vocab[i], vocab[j]}
				if c := count(items); c >= minSup {
					if _, ok := reported[strings.Join(items, "+")]; !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequentSequences(t *testing.T) {
	txs := [][]string{
		{"new", "york", "city"},
		{"new", "york", "times"},
		{"york", "new"},
	}
	got := FrequentSequences(txs, 2, 0)
	if len(got) != 1 || got[0].First != "new" || got[0].Second != "york" || got[0].Support != 2 {
		t.Fatalf("FrequentSequences = %v", got)
	}
	// Gap 1 admits "new ... city/times" pairs only at support 1, so result
	// set is unchanged at support 2.
	got = FrequentSequences(txs, 2, 1)
	if len(got) != 1 {
		t.Fatalf("gap=1 result = %v", got)
	}
}

func TestBlockingOnItemsets(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "alice smith paris"))
	c.MustAdd(entity.NewDescription("").Add("n", "alice smith london"))
	c.MustAdd(entity.NewDescription("").Add("n", "alice jones rome"))
	bs, err := (&Blocking{K: 2, MinSupport: 2}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	// Only {alice,smith} is a frequent 2-itemset → one block of {0,1}.
	if bs.Len() != 1 {
		t.Fatalf("blocks = %d", bs.Len())
	}
	b := bs.Get(0)
	if b.Key != "alice+smith" || len(b.S0) != 2 {
		t.Fatalf("block = %q %v", b.Key, b.S0)
	}
}

func TestBlockingName(t *testing.T) {
	if (&Blocking{}).Name() != "freqitemset" {
		t.Fatal("name")
	}
}

func TestBlockingDefaults(t *testing.T) {
	// K and MinSupport default to 2; an empty collection yields no blocks.
	c := entity.NewCollection(entity.Dirty)
	bs, err := (&Blocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Len() != 0 {
		t.Fatalf("empty collection blocks = %d", bs.Len())
	}
}

func TestBlockingCleanCleanSources(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	c.MustAdd(entity.NewDescription("").Add("n", "alpha beta"))
	d := entity.NewDescription("").Add("n", "alpha beta")
	d.Source = 1
	c.MustAdd(d)
	bs, err := (&Blocking{K: 2, MinSupport: 2}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Len() != 1 {
		t.Fatalf("blocks = %d", bs.Len())
	}
	b := bs.Get(0)
	if len(b.S0) != 1 || len(b.S1) != 1 {
		t.Fatalf("sources not preserved: %+v", b)
	}
}

func TestFrequentSequencesEdgeCases(t *testing.T) {
	if got := FrequentSequences(nil, 2, 1); len(got) != 0 {
		t.Fatalf("nil transactions = %v", got)
	}
	// minSupport < 1 defaults to 2; maxGap < 0 defaults to 0.
	txs := [][]string{{"a", "b"}, {"a", "b"}}
	got := FrequentSequences(txs, 0, -5)
	if len(got) != 1 || got[0].Support != 2 {
		t.Fatalf("defaulted mining = %v", got)
	}
}
