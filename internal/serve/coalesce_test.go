package serve_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"entityres/er"
	"entityres/internal/serve"
)

// Coalescer coverage: co-arriving singleton POST /v1/ops requests merge
// into ONE resolver batch (provable through JournalAppends: a batch of N
// costs one append where N singletons cost N), a full window flushes
// early, a failing merged batch falls back per op so every caller gets its
// own outcome, and a drain flushes the forming window instead of hanging
// the parked callers.

func singleton(uri string) string {
	return fmt.Sprintf(`{"ops":[{"op":"insert","uri":%q,"attrs":[{"name":"name","value":"zed %s"}]}]}`, uri, uri)
}

// postAll fires one singleton POST per uri concurrently and returns the
// recorders in uri order.
func postAll(t *testing.T, h http.Handler, uris []string) []*httptest.ResponseRecorder {
	t.Helper()
	recs := make([]*httptest.ResponseRecorder, len(uris))
	var wg sync.WaitGroup
	for i, uri := range uris {
		wg.Add(1)
		go func(i int, uri string) {
			defer wg.Done()
			recs[i] = post(t, h, "/v1/ops", singleton(uri))
		}(i, uri)
	}
	wg.Wait()
	return recs
}

func TestCoalesceWindowFlush(t *testing.T) {
	t.Parallel()
	res := openTestResolver(t)
	before := res.(er.PerfReporter).Perf().JournalAppends
	// A generous window so every co-arriving singleton joins the first
	// request's batch; max high enough that only the timer flushes it.
	s := serve.NewServer(res, serve.Options{CoalesceWindow: 300 * time.Millisecond, CoalesceMax: 64})
	h := s.Handler()

	uris := []string{"urn:w0", "urn:w1", "urn:w2", "urn:w3", "urn:w4"}
	for i, rec := range postAll(t, h, uris) {
		if rec.Code != http.StatusOK {
			t.Fatalf("singleton %d: %d %s", i, rec.Code, rec.Body)
		}
		if res := decode[serve.OpsResultJSON](t, rec.Body.Bytes()); res.Applied != 1 {
			t.Fatalf("singleton %d acked %d applied ops, want its own 1", i, res.Applied)
		}
	}
	// The ops landed...
	for _, uri := range uris {
		if code, _ := get(t, h, "/v1/lookup?uri="+uri); code != http.StatusOK {
			t.Fatalf("coalesced op %s not applied: %d", uri, code)
		}
	}
	// ...as ONE batch: one journal append for the five requests.
	if appends := res.(er.PerfReporter).Perf().JournalAppends - before; appends != 1 {
		t.Fatalf("5 coalesced singletons cost %d journal appends, want 1", appends)
	}
	code, body := get(t, h, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	st := decode[serve.StatsJSON](t, body)
	if st.Server.CoalescedBatches != 1 || st.Server.CoalescedOps != 5 {
		t.Fatalf("server stats count %d batches / %d coalesced ops, want 1 / 5: %+v",
			st.Server.CoalescedBatches, st.Server.CoalescedOps, st.Server)
	}
	if st.Server.IngestRequests != 5 || st.Server.IngestOps != 5 {
		t.Fatalf("server stats count %d ingest requests / %d ops, want 5 / 5", st.Server.IngestRequests, st.Server.IngestOps)
	}
}

func TestCoalesceMaxFlush(t *testing.T) {
	t.Parallel()
	res := openTestResolver(t)
	// An hour-long window: the only way the callers return promptly is the
	// max-size flush.
	s := serve.NewServer(res, serve.Options{CoalesceWindow: time.Hour, CoalesceMax: 4})
	h := s.Handler()

	start := time.Now()
	for i, rec := range postAll(t, h, []string{"urn:m0", "urn:m1", "urn:m2", "urn:m3"}) {
		if rec.Code != http.StatusOK {
			t.Fatalf("singleton %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("full window took %v to flush — waited out the clock instead of the size bound", elapsed)
	}
	code, body := get(t, h, "/v1/stats")
	st := decode[serve.StatsJSON](t, body)
	if code != http.StatusOK || st.Server.CoalescedBatches != 1 || st.Server.CoalescedOps != 4 {
		t.Fatalf("server stats after max flush: %d %+v", code, st.Server)
	}
}

func TestCoalesceErrorFanBack(t *testing.T) {
	t.Parallel()
	res := openTestResolver(t)
	s := serve.NewServer(res, serve.Options{CoalesceWindow: time.Hour, CoalesceMax: 3})
	h := s.Handler()

	// Two good inserts and one doomed update merge into one window (the
	// third arrival flushes it). The merged batch refuses as a whole; the
	// fallback re-runs per op so each caller gets its OWN outcome.
	bodies := []string{
		singleton("urn:f0"),
		`{"ops":[{"op":"update","uri":"urn:ghost","attrs":[{"name":"name","value":"x"}]}]}`,
		singleton("urn:f1"),
	}
	recs := make([]*httptest.ResponseRecorder, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			recs[i] = post(t, h, "/v1/ops", b)
		}(i, b)
	}
	wg.Wait()
	if recs[0].Code != http.StatusOK || recs[2].Code != http.StatusOK {
		t.Fatalf("good singletons answered %d / %d, want 200: %s %s", recs[0].Code, recs[2].Code, recs[0].Body, recs[2].Body)
	}
	if recs[1].Code != http.StatusBadRequest {
		t.Fatalf("doomed update answered %d %s, want its own 400", recs[1].Code, recs[1].Body)
	}
	if e := decode[map[string]string](t, recs[1].Body.Bytes()); !strings.Contains(e["error"], "urn:ghost") {
		t.Fatalf("doomed update's error does not name its op: %q", e["error"])
	}
	// The good ops landed despite sharing a window with the bad one.
	for _, uri := range []string{"urn:f0", "urn:f1"} {
		if code, _ := get(t, h, "/v1/lookup?uri="+uri); code != http.StatusOK {
			t.Fatalf("good op %s lost to the merged failure: %d", uri, code)
		}
	}
	// A failed merge is not counted as a coalesced batch.
	_, body := get(t, h, "/v1/stats")
	st := decode[serve.StatsJSON](t, body)
	if st.Server.CoalescedBatches != 0 {
		t.Fatalf("failed merge counted as coalesced: %+v", st.Server)
	}
	if st.Server.IngestErrors != 1 {
		t.Fatalf("server stats count %d ingest errors, want the doomed update's 1", st.Server.IngestErrors)
	}
}

func TestCoalesceDrainFlushesWindow(t *testing.T) {
	t.Parallel()
	res := openTestResolver(t)
	// Hour-long window, unreachable max: without the drain flush the
	// parked callers would hang out the hour.
	s := serve.NewServer(res, serve.Options{CoalesceWindow: time.Hour, CoalesceMax: 64})
	h := s.Handler()

	uris := []string{"urn:d0", "urn:d1"}
	recs := make([]*httptest.ResponseRecorder, len(uris))
	var wg sync.WaitGroup
	for i, uri := range uris {
		wg.Add(1)
		go func(i int, uri string) {
			defer wg.Done()
			recs[i] = post(t, h, "/v1/ops", singleton(uri))
		}(i, uri)
	}
	// Wait until both requests are inside the handler (counted), then give
	// them a beat to park in the window before draining. A request that
	// loses the race and reaches the coalescer after the drain commits
	// directly — same outcome either way.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, h, "/v1/stats")
		if decode[serve.StatsJSON](t, body).Server.IngestRequests >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("singletons never reached the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain left the window's callers parked")
	}
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("parked singleton %d answered %d %s during drain, want 200", i, rec.Code, rec.Body)
		}
	}
	// The ops were applied, not dropped — ask the resolver directly; the
	// server refuses queries after a drain.
	st, err := res.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 3+int64(len(uris)) {
		t.Fatalf("resolver holds %d inserts after drain, want seeded 3 + parked %d", st.Inserts, len(uris))
	}
	// A straggler past the drain bypasses the closed coalescer and is
	// refused by the draining server up front.
	if rec := post(t, h, "/v1/ops", singleton("urn:late")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain singleton answered %d, want 503", rec.Code)
	}
}
