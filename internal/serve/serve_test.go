package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"entityres/er"
	"entityres/internal/serve"
)

func openTestResolver(t *testing.T) er.Resolver {
	t.Helper()
	res, err := er.Open(context.Background(), er.Config{
		Kind:    er.Dirty,
		Blocker: &er.TokenBlocking{},
		Matcher: &er.Matcher{Sim: &er.TokenJaccard{}, Threshold: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { res.Close() })
	ctx := context.Background()
	for i, attrs := range [][]er.Attribute{
		{{Name: "name", Value: "alice smith"}, {Name: "city", Value: "athens"}},
		{{Name: "name", Value: "alice smith"}, {Name: "city", Value: "athens gr"}},
		{{Name: "name", Value: "bob jones"}, {Name: "city", Value: "berlin"}},
	} {
		if _, err := res.Insert(ctx, &er.Description{URI: fmt.Sprintf("urn:e%d", i), Attrs: attrs}); err != nil {
			t.Fatal(err)
		}
	}
	return res
}

func get(t *testing.T, handler http.Handler, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.Bytes()
}

func decode[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	return v
}

func TestEndpoints(t *testing.T) {
	t.Parallel()
	s := serve.NewServer(openTestResolver(t), serve.Options{})
	h := s.Handler()

	code, body := get(t, h, "/v1/lookup?uri=urn:e0")
	if code != http.StatusOK {
		t.Fatalf("lookup: %d %s", code, body)
	}
	d := decode[serve.DescriptionJSON](t, body)
	if d.URI != "urn:e0" || len(d.Attrs) != 2 {
		t.Fatalf("lookup answered %+v", d)
	}

	// The same description addressed by handle must answer identically.
	code, body2 := get(t, h, fmt.Sprintf("/v1/lookup?id=%d", d.ID))
	if code != http.StatusOK || string(body2) != string(body) {
		t.Fatalf("lookup by id diverged: %d %s vs %s", code, body2, body)
	}

	code, body = get(t, h, "/v1/same-as?uri=urn:e0")
	if code != http.StatusOK {
		t.Fatalf("same-as: %d %s", code, body)
	}
	sa := decode[serve.SameAsJSON](t, body)
	if len(sa.SameAs) != 1 || sa.SameAs[0].URI != "urn:e1" {
		t.Fatalf("same-as answered %+v, want the one duplicate urn:e1", sa)
	}

	code, body = get(t, h, "/v1/cluster?uri=urn:e1")
	if code != http.StatusOK {
		t.Fatalf("cluster: %d %s", code, body)
	}
	cl := decode[serve.ClusterJSON](t, body)
	if len(cl.Members) != 2 {
		t.Fatalf("cluster answered %+v, want both duplicates", cl)
	}
	code, body = get(t, h, "/v1/cluster?uri=urn:e2")
	cl = decode[serve.ClusterJSON](t, body)
	if code != http.StatusOK || len(cl.Members) != 1 {
		t.Fatalf("singleton cluster answered %d %+v", code, cl)
	}

	code, body = get(t, h, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	st := decode[serve.StatsJSON](t, body)
	if st.Inserts != 3 || st.Live != 3 || st.Matches != 1 || st.Clusters != 1 {
		t.Fatalf("stats answered %+v", st)
	}
}

// TestServerStatsCounters: the serving layer's own request accounting
// rides /v1/stats — atomics, maintained on every path.
func TestServerStatsCounters(t *testing.T) {
	t.Parallel()
	s := serve.NewServer(openTestResolver(t), serve.Options{})
	h := s.Handler()

	if code, _ := get(t, h, "/v1/lookup?uri=urn:e0"); code != http.StatusOK {
		t.Fatalf("lookup: %d", code)
	}
	if code, _ := get(t, h, "/v1/lookup?uri=urn:nope"); code != http.StatusNotFound {
		t.Fatalf("missing lookup: %d", code)
	}
	rec := httptest.NewRecorder()
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/ops",
		strings.NewReader(`{"ops":[{"op":"insert","uri":"urn:c0","attrs":[{"name":"name","value":"new one"}]}]}`)))
	h.ServeHTTP(rec2, httptest.NewRequest("POST", "/v1/ops", strings.NewReader(`{"ops":[`)))
	if rec.Code != http.StatusOK || rec2.Code != http.StatusBadRequest {
		t.Fatalf("ingest pair answered %d / %d", rec.Code, rec2.Code)
	}

	code, body := get(t, h, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	sv := decode[serve.StatsJSON](t, body).Server
	// The stats request itself snapshots the counters before being counted.
	if sv.Queries != 2 || sv.QueryErrors != 1 || sv.Refused != 0 {
		t.Fatalf("query counters %+v, want 2 queries / 1 error / 0 refused", sv)
	}
	if sv.IngestRequests != 2 || sv.IngestOps != 1 || sv.IngestErrors != 1 || sv.IngestRefused != 0 {
		t.Fatalf("ingest counters %+v, want 2 requests / 1 op / 1 error / 0 refused", sv)
	}
	if sv.DrainRate <= 0 {
		t.Fatalf("no drain rate observed after a successful apply: %+v", sv)
	}
}

func TestRequestErrors(t *testing.T) {
	t.Parallel()
	s := serve.NewServer(openTestResolver(t), serve.Options{})
	h := s.Handler()
	for path, want := range map[string]int{
		"/v1/lookup?uri=urn:nope":    http.StatusNotFound,
		"/v1/lookup?id=999":          http.StatusNotFound,
		"/v1/lookup":                 http.StatusBadRequest,
		"/v1/lookup?id=abc":          http.StatusBadRequest,
		"/v1/lookup?id=-4":           http.StatusBadRequest,
		"/v1/lookup?uri=urn:e0&id=1": http.StatusBadRequest,
		"/v1/same-as?uri=urn:nope":   http.StatusNotFound,
		"/v1/cluster":                http.StatusBadRequest,
	} {
		code, body := get(t, h, path)
		if code != want {
			t.Errorf("%s answered %d %s, want %d", path, code, body, want)
		}
		e := decode[map[string]string](t, body)
		if e["error"] == "" {
			t.Errorf("%s: no error body: %s", path, body)
		}
	}
}

// slowResolver delays every Query until released, to hold requests in
// flight deterministically.
type slowResolver struct {
	er.Resolver
	entered chan struct{} // one send per Query that starts waiting
	release chan struct{} // closed to let them finish
}

func (s *slowResolver) Query(ctx context.Context, q er.Query) (er.Result, error) {
	s.entered <- struct{}{}
	select {
	case <-s.release:
	case <-ctx.Done():
		return er.Result{}, ctx.Err()
	}
	return s.Resolver.Query(ctx, q)
}

func TestAdmissionControlInFlight(t *testing.T) {
	t.Parallel()
	slow := &slowResolver{
		Resolver: openTestResolver(t),
		entered:  make(chan struct{}, 8),
		release:  make(chan struct{}),
	}
	s := serve.NewServer(slow, serve.Options{MaxInFlight: 2, RequestTimeout: 5 * time.Second})
	h := s.Handler()

	// Fill both slots.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], _ = get(t, h, "/v1/lookup?uri=urn:e0")
		}()
		<-slow.entered
	}
	// The third request must be refused immediately, not queued.
	start := time.Now()
	code, body := get(t, h, "/v1/stats")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-admitted request answered %d %s, want 503", code, body)
	}
	if time.Since(start) > time.Second {
		t.Fatal("refusal was queued instead of immediate")
	}
	close(slow.release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("admitted request %d answered %d", i, c)
		}
	}
	// Slots freed: admission works again.
	if code, _ := get(t, h, "/v1/stats"); code != http.StatusOK {
		t.Fatalf("post-burst request answered %d", code)
	}
}

func TestRequestDeadline(t *testing.T) {
	t.Parallel()
	slow := &slowResolver{
		Resolver: openTestResolver(t),
		entered:  make(chan struct{}, 1),
		release:  make(chan struct{}), // never released: only the deadline ends it
	}
	s := serve.NewServer(slow, serve.Options{RequestTimeout: 50 * time.Millisecond})
	start := time.Now()
	code, body := get(t, s.Handler(), "/v1/lookup?uri=urn:e0")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("overlong request answered %d %s, want 504", code, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline fired after %v", elapsed)
	}
}

// TestGracefulDrain starts a real listener, holds a request in flight,
// drains, and asserts the in-flight request completes while new ones are
// refused — then the listener is down.
func TestGracefulDrain(t *testing.T) {
	t.Parallel()
	slow := &slowResolver{
		Resolver: openTestResolver(t),
		entered:  make(chan struct{}, 1),
		release:  make(chan struct{}),
	}
	s := serve.NewServer(slow, serve.Options{DrainTimeout: 5 * time.Second})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(lis) }()
	base := "http://" + lis.Addr().String()

	inflight := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Get(base + "/v1/lookup?uri=urn:e0")
		if err != nil {
			t.Error(err)
			inflight <- nil
			return
		}
		inflight <- resp
	}()
	<-slow.entered

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// While draining, new requests on existing knowledge of the addr are
	// refused with 503 (until the listener closes entirely).
	deadline := time.After(2 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			break // listener already down — also a valid refusal
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		select {
		case <-deadline:
			t.Fatal("draining server kept answering 200")
		case <-time.After(10 * time.Millisecond):
		}
	}

	// The in-flight request still completes.
	close(slow.release)
	resp := <-inflight
	if resp == nil {
		t.Fatal("in-flight request failed during drain")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request answered %d during drain, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Fully down now.
	if _, err := http.Get(base + "/v1/stats"); err == nil {
		t.Fatal("drained server still accepting connections")
	}
}

// TestServeLifecycle covers the remaining server plumbing: Close tears the
// listener down without a drain, and a second Serve on the same server is
// refused.
func TestServeLifecycle(t *testing.T) {
	res := openTestResolver(t)
	srv := serve.NewServer(res, serve.Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(lis2); err == nil {
		t.Fatal("second Serve accepted")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
