package serve_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"entityres/er"
	"entityres/internal/serve"
)

// Bulk-ingest coverage: POST /v1/ops applies a whole batch atomically
// through the resolver's batch path, refuses malformed and oversized
// requests up front, and sheds load with 429 + Retry-After once the
// admitted-operation budget is full — never by silently queueing.

func post(t *testing.T, handler http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	handler.ServeHTTP(rec, req)
	return rec
}

func TestIngest(t *testing.T) {
	t.Parallel()
	s := serve.NewServer(openTestResolver(t), serve.Options{})
	h := s.Handler()

	// A mixed batch: two inserts, an update of one of them, a delete of a
	// seeded description.
	rec := post(t, h, "/v1/ops", `{"ops":[
		{"op":"insert","uri":"urn:n0","attrs":[{"name":"name","value":"carol davis"}]},
		{"op":"insert","uri":"urn:n1","attrs":[{"name":"name","value":"dan evans"}]},
		{"op":"update","uri":"urn:n0","attrs":[{"name":"name","value":"carol a davis"}]},
		{"op":"delete","uri":"urn:e2"}
	]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	if res := decode[serve.OpsResultJSON](t, rec.Body.Bytes()); res.Applied != 4 {
		t.Fatalf("applied %d ops, want 4", res.Applied)
	}
	code, body := get(t, h, "/v1/lookup?uri=urn:n0")
	if code != http.StatusOK {
		t.Fatalf("lookup after ingest: %d %s", code, body)
	}
	if d := decode[serve.DescriptionJSON](t, body); len(d.Attrs) != 1 || d.Attrs[0].Value != "carol a davis" {
		t.Fatalf("ingested update not visible: %+v", d)
	}
	if code, _ := get(t, h, "/v1/lookup?uri=urn:e2"); code != http.StatusNotFound {
		t.Fatalf("deleted description still answers: %d", code)
	}

	// Batch atomicity through the wire: a batch whose LAST record is
	// invalid applies nothing, including its valid prefix.
	rec = post(t, h, "/v1/ops", `{"ops":[
		{"op":"insert","uri":"urn:n2","attrs":[{"name":"name","value":"erin flores"}]},
		{"op":"update","uri":"urn:ghost","attrs":[{"name":"name","value":"x"}]}
	]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad batch: %d %s", rec.Code, rec.Body)
	}
	if code, _ := get(t, h, "/v1/lookup?uri=urn:n2"); code != http.StatusNotFound {
		t.Fatalf("rejected batch applied its valid prefix: lookup answered %d", code)
	}
}

func TestIngestValidation(t *testing.T) {
	t.Parallel()
	s := serve.NewServer(openTestResolver(t), serve.Options{MaxBatchOps: 2})
	h := s.Handler()
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad-json", `{"ops":[`, http.StatusBadRequest},
		{"empty-batch", `{"ops":[]}`, http.StatusBadRequest},
		{"unknown-op", `{"ops":[{"op":"upsert","uri":"u"}]}`, http.StatusBadRequest},
		{"oversized-batch", `{"ops":[{"op":"delete","uri":"a"},{"op":"delete","uri":"b"},{"op":"delete","uri":"c"}]}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if rec := post(t, h, "/v1/ops", tc.body); rec.Code != tc.code {
				t.Fatalf("got %d %s, want %d", rec.Code, rec.Body, tc.code)
			}
		})
	}
}

// gatedResolver blocks ApplyBatch until released, so a test can hold
// operations in the admitted state and observe the budget refuse more.
type gatedResolver struct {
	er.Resolver
	entered chan struct{}
	release chan struct{}
}

func (g *gatedResolver) ApplyBatch(ctx context.Context, ops []er.StreamOp) error {
	g.entered <- struct{}{}
	<-g.release
	return g.Resolver.ApplyBatch(ctx, ops)
}

func TestIngestBackPressure(t *testing.T) {
	t.Parallel()
	gate := &gatedResolver{
		Resolver: openTestResolver(t),
		entered:  make(chan struct{}, 1),
		release:  make(chan struct{}),
	}
	s := serve.NewServer(gate, serve.Options{MaxQueuedOps: 4})
	h := s.Handler()
	const batch = `{"ops":[
		{"op":"insert","uri":"urn:q0","attrs":[{"name":"name","value":"a b"}]},
		{"op":"insert","uri":"urn:q1","attrs":[{"name":"name","value":"c d"}]},
		{"op":"insert","uri":"urn:q2","attrs":[{"name":"name","value":"e f"}]}
	]}`
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- post(t, h, "/v1/ops", batch) }()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first batch never reached the resolver")
	}
	// 3 of 4 budgeted ops are held; 3 more would overflow: refused with a
	// retry hint, and nothing of the batch is queued behind the refusal.
	second := post(t, h, "/v1/ops", strings.ReplaceAll(batch, "urn:q", "urn:r"))
	if second.Code != http.StatusTooManyRequests {
		t.Fatalf("overflowing batch: %d %s, want 429", second.Code, second.Body)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After hint")
	}
	// Releasing the in-flight batch frees the budget: both the first
	// request and a retry of the refused one land.
	close(gate.release)
	if first := <-firstDone; first.Code != http.StatusOK {
		t.Fatalf("gated batch: %d %s", first.Code, first.Body)
	}
	retry := post(t, h, "/v1/ops", strings.ReplaceAll(batch, "urn:q", "urn:r"))
	if retry.Code != http.StatusOK {
		t.Fatalf("retry after release: %d %s", retry.Code, retry.Body)
	}
	code, _ := get(t, h, "/v1/lookup?uri=urn:r2")
	if code != http.StatusOK {
		t.Fatalf("retried batch not visible: %d", code)
	}
}
