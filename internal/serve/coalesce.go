// Server-side ingest coalescing: group commit one layer above the journal.
//
// A fleet of clients each POSTing one operation pays the full write path —
// resolver lock, journal append, shard fan-out — once per op. The journal
// already amortizes a *batch* into one append (PR 8); the coalescer forms
// those batches on the server out of co-arriving singleton requests: the
// first singleton opens a window (CoalesceWindow), later singletons join
// it, and the window commits as ONE ApplyBatch when the timer fires or the
// batch reaches CoalesceMax. Each caller parks on its own ack channel and
// is answered with its own op's outcome.
//
// Bit-exactness: ApplyBatch applies its ops in order with the same
// semantics as applying them one by one, so a merged batch that succeeds
// leaves exactly the state the singletons would have. A merged batch is
// all-or-nothing, though — one bad op would fail callers whose ops are
// fine — so on failure the coalescer falls back to re-running each op as
// its own singleton batch in arrival order: the good ops land, the bad op
// fails its own caller, and the final state again equals the uncoalesced
// outcome.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"entityres/er"
)

// coalescer merges co-arriving singleton ingest ops into server-formed
// batches. Its mutex guards only the forming batch — commits run outside
// it, so a slow apply never blocks new arrivals from forming the next
// window.
type coalescer struct {
	commit func(ops []er.StreamOp) error
	window time.Duration
	max    int

	mu     sync.Mutex
	cur    *formingBatch
	closed bool

	// batches counts committed multi-op merges, coalesced the singleton
	// requests they absorbed.
	batches   atomic.Int64
	coalesced atomic.Int64
}

// formingBatch is one open window: the ops parked so far and, parallel to
// them, each caller's ack channel.
type formingBatch struct {
	ops   []er.StreamOp
	done  []chan error
	timer *time.Timer
}

func newCoalescer(commit func(ops []er.StreamOp) error, window time.Duration, max int) *coalescer {
	return &coalescer{commit: commit, window: window, max: max}
}

// apply parks op in the forming batch and blocks until the batch commits,
// returning this op's own outcome. The first op of a window arms the flush
// timer; the op that fills the window to max detaches it and commits
// inline (stopping the timer), so a burst never waits out the clock.
func (c *coalescer) apply(op er.StreamOp) error {
	c.mu.Lock()
	if c.closed {
		// Drain already flushed the last window; commit directly — exactly
		// the uncoalesced path.
		c.mu.Unlock()
		return c.commit([]er.StreamOp{op})
	}
	b := c.cur
	if b == nil {
		b = &formingBatch{}
		b.timer = time.AfterFunc(c.window, func() { c.flush(b) })
		c.cur = b
	}
	done := make(chan error, 1)
	b.ops = append(b.ops, op)
	b.done = append(b.done, done)
	full := len(b.ops) >= c.max
	if full {
		c.cur = nil
		b.timer.Stop()
	}
	c.mu.Unlock()
	if full {
		c.commitBatch(b)
	}
	return <-done
}

// flush is the timer path: commit b unless it was already detached by a
// max-size fill or a drain.
func (c *coalescer) flush(b *formingBatch) {
	c.mu.Lock()
	if c.cur != b {
		c.mu.Unlock()
		return
	}
	c.cur = nil
	c.mu.Unlock()
	c.commitBatch(b)
}

// drain detaches and commits any window still forming and closes the
// coalescer: ops admitted before a server drain are applied and answered,
// never dropped, and late stragglers bypass straight to commit.
func (c *coalescer) drain() {
	c.mu.Lock()
	b := c.cur
	c.cur = nil
	c.closed = true
	c.mu.Unlock()
	if b != nil {
		b.timer.Stop()
		c.commitBatch(b)
	}
}

// commitBatch applies a detached batch and fans each caller its outcome.
func (c *coalescer) commitBatch(b *formingBatch) {
	if len(b.ops) > 1 {
		if err := c.commit(b.ops); err == nil {
			c.batches.Add(1)
			c.coalesced.Add(int64(len(b.ops)))
			for _, d := range b.done {
				d <- nil
			}
			return
		}
		// The merged batch is all-or-nothing and it refused: nothing
		// applied. Re-run per op in arrival order so every caller gets its
		// own op's verdict and the final state matches the uncoalesced
		// outcome.
	}
	for i := range b.ops {
		b.done[i] <- c.commit(b.ops[i : i+1])
	}
}
