// Package serve exposes a resolver deployment as an HTTP/JSON service:
// lookup, same-as, cluster-members and stats queries plus bulk ingest
// (POST /v1/ops) over any er.Resolver — single-node, durable, sharded or
// networked, since the interface is deployment-agnostic by construction.
//
// The server applies admission control before any resolver work. Queries
// pass a bounded in-flight gate (excess requests are refused immediately
// with 503, never queued, so a burst cannot build an invisible backlog)
// and a per-request deadline (a query that outlives it answers 504 and
// its result is discarded). Ingest is admitted against a bounded
// OPERATION budget: a batch that would push the queued-op total past the
// bound is refused with 429 and a Retry-After hint, so back-pressure
// reaches the producer instead of accumulating as hidden memory. Draining
// flips both gates closed, lets in-flight requests finish, and only then
// tears the listener down — a rolling restart loses no accepted request.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"entityres/er"
	"entityres/internal/entity"
	"entityres/internal/incremental"
)

// Options tunes the query service.
type Options struct {
	// MaxInFlight bounds concurrently-admitted requests (default 64).
	// Requests beyond the bound are refused with 503 immediately.
	MaxInFlight int
	// RequestTimeout bounds one request's resolver work (default 5s);
	// expiry answers 504.
	RequestTimeout time.Duration
	// DrainTimeout bounds Drain's wait for in-flight requests (default 10s).
	DrainTimeout time.Duration
	// MaxBatchOps bounds the operations one POST /v1/ops request may carry
	// (default 4096); a larger batch is refused with 413.
	MaxBatchOps int
	// MaxQueuedOps bounds the TOTAL operations admitted for ingest and not
	// yet applied, across concurrent requests (default 8192). A batch that
	// would overflow the budget is refused with 429 and a Retry-After hint
	// derived from the observed drain rate.
	MaxQueuedOps int
	// CoalesceWindow and CoalesceMax enable server-side ingest coalescing:
	// co-arriving singleton POST /v1/ops requests park behind a small
	// time/size window and commit as ONE resolver batch — the journal
	// layer's group-commit trick one level up, each caller acknowledged
	// with its own op's outcome. Setting either enables it (the other
	// falls back to its default: 2ms window, 256 ops); both zero — the
	// default — disables coalescing and preserves the per-request apply
	// semantics exactly. The window is a deliberate latency trade: a
	// singleton op waits up to CoalesceWindow for company, in exchange for
	// one lock, one journal fsync and one shard fan-out per formed batch
	// instead of per op.
	CoalesceWindow time.Duration
	CoalesceMax    int
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 64
}

func (o Options) requestTimeout() time.Duration {
	if o.RequestTimeout > 0 {
		return o.RequestTimeout
	}
	return 5 * time.Second
}

func (o Options) drainTimeout() time.Duration {
	if o.DrainTimeout > 0 {
		return o.DrainTimeout
	}
	return 10 * time.Second
}

func (o Options) maxBatchOps() int {
	if o.MaxBatchOps > 0 {
		return o.MaxBatchOps
	}
	return 4096
}

func (o Options) maxQueuedOps() int {
	if o.MaxQueuedOps > 0 {
		return o.MaxQueuedOps
	}
	return 8192
}

func (o Options) coalesceEnabled() bool {
	return o.CoalesceWindow > 0 || o.CoalesceMax > 0
}

func (o Options) coalesceWindow() time.Duration {
	if o.CoalesceWindow > 0 {
		return o.CoalesceWindow
	}
	return 2 * time.Millisecond
}

func (o Options) coalesceMax() int {
	if o.CoalesceMax > 0 {
		return o.CoalesceMax
	}
	return 256
}

// Server is the HTTP/JSON query service over one resolver. The request hot
// paths are lock-free on the server side: admission (draining flag,
// in-flight gate, queued-op budget) and the request/error counters are all
// atomics, so queries and /v1/stats never contend on a server mutex — the
// only lock guards the http.Server lifecycle.
type Server struct {
	res  er.Resolver
	opts Options

	// gate holds one token per admitted request.
	gate chan struct{}

	// draining refuses new requests once Drain begins; queuedOps is the
	// ingest back-pressure state (operations admitted and not yet applied,
	// bounded by Options.MaxQueuedOps, reserved by CAS).
	draining  atomic.Bool
	queuedOps atomic.Int64

	// Request and error counters, surfaced under /v1/stats "server".
	queriesServed  atomic.Int64
	queriesRefused atomic.Int64
	queryErrors    atomic.Int64
	ingestRequests atomic.Int64
	ingestOps      atomic.Int64
	ingestRefused  atomic.Int64
	ingestErrors   atomic.Int64

	// drainRate is the EWMA of ingest operations retired per second
	// (math.Float64bits in the atomic; zero until the first apply
	// completes). It turns the 429 Retry-After hint from a constant into
	// backlog/rate — producers back off proportionally to how far behind
	// the resolver actually is.
	drainRate atomic.Uint64

	// coal, when non-nil, merges co-arriving singleton ingest requests
	// into server-formed batches (see coalesce.go).
	coal *coalescer

	mu      sync.Mutex
	httpSrv *http.Server
}

// NewServer wraps res. The caller keeps ownership of res: Close/Drain stop
// the HTTP side only.
func NewServer(res er.Resolver, opts Options) *Server {
	s := &Server{
		res:  res,
		opts: opts,
		gate: make(chan struct{}, opts.maxInFlight()),
	}
	if opts.coalesceEnabled() {
		s.coal = newCoalescer(s.commitCoalesced, opts.coalesceWindow(), opts.coalesceMax())
	}
	return s
}

// Handler returns the service's routes:
//
//	GET /v1/lookup?uri=U | ?id=N   → DescriptionJSON
//	GET /v1/same-as?uri=U | ?id=N  → SameAsJSON
//	GET /v1/cluster?uri=U | ?id=N  → ClusterJSON
//	GET /v1/stats                  → StatsJSON
//	POST /v1/ops {ops: [OpJSON]}   → OpsResultJSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/lookup", s.wrap(s.lookup))
	mux.HandleFunc("GET /v1/same-as", s.wrap(s.sameAs))
	mux.HandleFunc("GET /v1/cluster", s.wrap(s.cluster))
	mux.HandleFunc("GET /v1/stats", s.wrap(s.stats))
	mux.HandleFunc("POST /v1/ops", s.ingest)
	return mux
}

// Serve answers requests on lis until Drain or Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.httpSrv != nil {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("serve: server already started")
	}
	srv := &http.Server{Handler: s.Handler()}
	s.httpSrv = srv
	s.mu.Unlock()
	if err := srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Drain stops admitting requests, waits for the in-flight ones (up to
// DrainTimeout) and shuts the listener down. Safe to call once Serve is
// running; later requests are refused with 503 while the drain proceeds.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Flush any ingest window still forming: the parked requests were
	// admitted before the drain began, so they are acknowledged — applied
	// and answered — before the listener goes down, not dropped.
	if s.coal != nil {
		s.coal.drain()
	}
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	dctx, cancel := context.WithTimeout(ctx, s.opts.drainTimeout())
	defer cancel()
	return srv.Shutdown(dctx)
}

// Close is an immediate teardown: no drain, open connections drop.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

// DescriptionJSON renders one live description.
type DescriptionJSON struct {
	ID     entity.ID  `json:"id"`
	URI    string     `json:"uri"`
	Source int        `json:"source"`
	Attrs  []AttrJSON `json:"attrs,omitempty"`
}

// AttrJSON is one attribute in the wire form the op-log exchange format
// uses: lower-case name/value keys.
type AttrJSON struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

func attrsJSON(attrs []entity.Attribute) []AttrJSON {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]AttrJSON, len(attrs))
	for i, a := range attrs {
		out[i] = AttrJSON{Name: a.Name, Value: a.Value}
	}
	return out
}

// SameAsJSON answers a same-as query: the handles and URIs currently
// matched to the selected description.
type SameAsJSON struct {
	ID     entity.ID `json:"id"`
	URI    string    `json:"uri"`
	SameAs []RefJSON `json:"same_as"`
}

// RefJSON is a handle/URI reference to a live description.
type RefJSON struct {
	ID  entity.ID `json:"id"`
	URI string    `json:"uri"`
}

// ClusterJSON answers a cluster-members query.
type ClusterJSON struct {
	ID      entity.ID `json:"id"`
	URI     string    `json:"uri"`
	Members []RefJSON `json:"members"`
}

// StatsJSON mirrors the resolver's counters plus the server's own.
type StatsJSON struct {
	Inserts        int64 `json:"inserts"`
	Updates        int64 `json:"updates"`
	Deletes        int64 `json:"deletes"`
	Live           int   `json:"live"`
	Comparisons    int64 `json:"comparisons"`
	Matches        int   `json:"matches"`
	Clusters       int   `json:"clusters"`
	CandidatePairs int   `json:"candidate_pairs,omitempty"`
	KeptPairs      int   `json:"kept_pairs,omitempty"`

	Server ServerStatsJSON `json:"server"`
}

// ServerStatsJSON is the serving layer's own request accounting — all
// atomics, so reading it never contends with the query or ingest path.
type ServerStatsJSON struct {
	// Queries counts answered query requests, QueryErrors the ones that
	// answered non-2xx (bad input, not-found, timeout), Refused the ones
	// shed at admission (503: draining or in-flight gate full).
	Queries     int64 `json:"queries"`
	QueryErrors int64 `json:"query_errors"`
	Refused     int64 `json:"refused"`
	// IngestRequests counts POST /v1/ops requests, IngestOps the
	// operations they applied, IngestRefused the 429 budget refusals and
	// IngestErrors the requests that failed (bad body, rejected batch).
	IngestRequests int64 `json:"ingest_requests"`
	IngestOps      int64 `json:"ingest_ops"`
	IngestRefused  int64 `json:"ingest_refused"`
	IngestErrors   int64 `json:"ingest_errors"`
	// CoalescedBatches counts server-formed multi-op batches and
	// CoalescedOps the singleton requests they merged (zero with
	// coalescing off).
	CoalescedBatches int64 `json:"coalesced_batches,omitempty"`
	CoalescedOps     int64 `json:"coalesced_ops,omitempty"`
	// DrainRate is the EWMA of ingest ops retired per second — the basis
	// of the 429 Retry-After hint.
	DrainRate float64 `json:"drain_rate_ops_per_sec,omitempty"`
}

func (s *Server) serverStats() ServerStatsJSON {
	out := ServerStatsJSON{
		Queries:        s.queriesServed.Load(),
		QueryErrors:    s.queryErrors.Load(),
		Refused:        s.queriesRefused.Load(),
		IngestRequests: s.ingestRequests.Load(),
		IngestOps:      s.ingestOps.Load(),
		IngestRefused:  s.ingestRefused.Load(),
		IngestErrors:   s.ingestErrors.Load(),
		DrainRate:      math.Float64frombits(s.drainRate.Load()),
	}
	if s.coal != nil {
		out.CoalescedBatches = s.coal.batches.Load()
		out.CoalescedOps = s.coal.coalesced.Load()
	}
	return out
}

func statsJSON(st incremental.Stats) StatsJSON {
	return StatsJSON{
		Inserts: st.Inserts, Updates: st.Updates, Deletes: st.Deletes,
		Live: st.Live, Comparisons: st.Comparisons,
		Matches: st.Matches, Clusters: st.Clusters,
		CandidatePairs: st.CandidatePairs, KeptPairs: st.KeptPairs,
	}
}

// httpError carries a status code through the handler plumbing.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// wrap applies admission control around one handler: the in-flight gate,
// the per-request deadline, and uniform JSON error rendering.
func (s *Server) wrap(h func(ctx context.Context, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.queriesRefused.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "serve: draining"})
			return
		}
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		default:
			s.queriesRefused.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "serve: too many in-flight requests"})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.requestTimeout())
		defer cancel()
		// The resolver call runs aside so an overlong query answers 504 at
		// the deadline instead of holding the connection; the stray result
		// is discarded when it eventually lands.
		type outcome struct {
			body any
			err  error
		}
		done := make(chan outcome, 1)
		go func() {
			body, err := h(ctx, r)
			done <- outcome{body, err}
		}()
		select {
		case <-ctx.Done():
			s.queriesServed.Add(1)
			s.queryErrors.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorJSON{Error: "serve: request deadline exceeded"})
		case out := <-done:
			s.queriesServed.Add(1)
			switch {
			case out.err == nil:
				writeJSON(w, http.StatusOK, out.body)
			default:
				s.queryErrors.Add(1)
				var nf *er.ErrNotFound
				var he *httpError
				switch {
				case errors.As(out.err, &nf):
					writeJSON(w, http.StatusNotFound, errorJSON{Error: out.err.Error()})
				case errors.As(out.err, &he):
					writeJSON(w, he.status, errorJSON{Error: he.msg})
				default:
					writeJSON(w, http.StatusInternalServerError, errorJSON{Error: out.err.Error()})
				}
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// parseQuery derives the er.Query a request selects.
func parseQuery(r *http.Request, cluster bool) (er.Query, error) {
	q := er.Query{URI: r.URL.Query().Get("uri"), Cluster: cluster}
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		if q.URI != "" {
			return q, &httpError{http.StatusBadRequest, "serve: pass uri or id, not both"}
		}
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil || id < 0 {
			return q, &httpError{http.StatusBadRequest, fmt.Sprintf("serve: bad id %q", idStr)}
		}
		q.ID = entity.ID(id)
	} else if q.URI == "" {
		return q, &httpError{http.StatusBadRequest, "serve: pass uri or id"}
	}
	return q, nil
}

func (s *Server) lookup(ctx context.Context, r *http.Request) (any, error) {
	q, err := parseQuery(r, false)
	if err != nil {
		return nil, err
	}
	res, err := s.res.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return DescriptionJSON{
		ID: res.ID, URI: res.Description.URI,
		Source: res.Description.Source, Attrs: attrsJSON(res.Description.Attrs),
	}, nil
}

// refs renders handles with their URIs (skipping any that died between the
// match read and the description read — reads are not transactional).
func (s *Server) refs(ctx context.Context, ids []entity.ID) []RefJSON {
	out := make([]RefJSON, 0, len(ids))
	for _, id := range ids {
		if res, err := s.res.Query(ctx, er.Query{ID: id}); err == nil {
			out = append(out, RefJSON{ID: id, URI: res.Description.URI})
		}
	}
	return out
}

func (s *Server) sameAs(ctx context.Context, r *http.Request) (any, error) {
	q, err := parseQuery(r, false)
	if err != nil {
		return nil, err
	}
	res, err := s.res.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return SameAsJSON{ID: res.ID, URI: res.Description.URI, SameAs: s.refs(ctx, res.SameAs)}, nil
}

func (s *Server) cluster(ctx context.Context, r *http.Request) (any, error) {
	q, err := parseQuery(r, true)
	if err != nil {
		return nil, err
	}
	res, err := s.res.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return ClusterJSON{ID: res.ID, URI: res.Description.URI, Members: s.refs(ctx, res.Cluster)}, nil
}

// OpJSON is one URI-addressed operation of a bulk-ingest request — the
// same wire form the op-log exchange format (er.ReadStreamOps) uses.
type OpJSON struct {
	Op     string     `json:"op"`
	URI    string     `json:"uri"`
	Source int        `json:"source,omitempty"`
	Attrs  []AttrJSON `json:"attrs,omitempty"`
}

// OpsRequestJSON is the POST /v1/ops body.
type OpsRequestJSON struct {
	Ops []OpJSON `json:"ops"`
}

// OpsResultJSON acknowledges an applied batch.
type OpsResultJSON struct {
	Applied int `json:"applied"`
}

// maxOpsBodyBytes bounds an ingest request body; matched to the journal
// layer's record bound, anything that fits an append fits a request.
const maxOpsBodyBytes = 32 << 20

// admitOps reserves n operations of the ingest budget by CAS, refusing
// rather than queueing past the bound.
func (s *Server) admitOps(n int) (ok bool, queued int64) {
	bound := int64(s.opts.maxQueuedOps())
	for {
		cur := s.queuedOps.Load()
		if cur+int64(n) > bound {
			return false, cur
		}
		if s.queuedOps.CompareAndSwap(cur, cur+int64(n)) {
			return true, cur + int64(n)
		}
	}
}

func (s *Server) releaseOps(n int) { s.queuedOps.Add(-int64(n)) }

// drainEWMAAlpha weights the newest drain-rate sample; one sample per
// completed apply, so roughly the last dozen applies dominate the hint.
const drainEWMAAlpha = 0.3

// noteDrain folds one completed apply of n operations over elapsed d into
// the drain-rate EWMA.
func (s *Server) noteDrain(n int, d time.Duration) {
	if n <= 0 || d <= 0 {
		return
	}
	sample := float64(n) / d.Seconds()
	for {
		old := s.drainRate.Load()
		next := sample
		if old != 0 {
			next = drainEWMAAlpha*sample + (1-drainEWMAAlpha)*math.Float64frombits(old)
		}
		if s.drainRate.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfter derives the 429 hint: the whole seconds the observed drain
// rate needs to retire the queued backlog, clamped to [1, 60]. Before any
// apply has completed there is no rate to extrapolate — hint 1.
func (s *Server) retryAfter(queued int64) int {
	rate := math.Float64frombits(s.drainRate.Load())
	if rate <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(queued) / rate))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// applyIngest runs one resolver batch, feeding the drain-rate EWMA and the
// applied-op counter on success. Both the direct ingest path and the
// coalescer commit through here.
func (s *Server) applyIngest(ctx context.Context, ops []er.StreamOp) error {
	start := time.Now()
	if err := s.res.ApplyBatch(ctx, ops); err != nil {
		return err
	}
	s.noteDrain(len(ops), time.Since(start))
	s.ingestOps.Add(int64(len(ops)))
	return nil
}

// commitCoalesced commits a server-formed batch under the server's own
// deadline: the merged batch belongs to several callers, so no single
// caller's context may cancel it (mirroring the admission-only contract of
// the direct path).
func (s *Server) commitCoalesced(ops []er.StreamOp) error {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.requestTimeout())
	defer cancel()
	return s.applyIngest(ctx, ops)
}

// ingest handles POST /v1/ops: one batch of URI-addressed operations,
// applied atomically through the resolver's batch path. Unlike queries,
// the resolver call is NOT abandoned at the deadline — the context gates
// batch ADMISSION only (an admitted batch completes), so the client's
// verdict always matches the resolver's.
func (s *Server) ingest(w http.ResponseWriter, r *http.Request) {
	s.ingestRequests.Add(1)
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "serve: draining"})
		return
	}
	var req OpsRequestJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxOpsBodyBytes)).Decode(&req); err != nil {
		s.ingestErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "serve: bad ops body: " + err.Error()})
		return
	}
	if len(req.Ops) == 0 {
		s.ingestErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "serve: ops batch is empty"})
		return
	}
	if len(req.Ops) > s.opts.maxBatchOps() {
		s.ingestErrors.Add(1)
		writeJSON(w, http.StatusRequestEntityTooLarge, errorJSON{
			Error: fmt.Sprintf("serve: batch of %d operations exceeds the %d-op bound; split it", len(req.Ops), s.opts.maxBatchOps()),
		})
		return
	}
	ops := make([]er.StreamOp, len(req.Ops))
	for i, j := range req.Ops {
		op := er.StreamOp{URI: j.URI, Source: j.Source}
		switch j.Op {
		case "insert":
			op.Kind = er.StreamInsert
		case "update":
			op.Kind = er.StreamUpdate
		case "delete":
			op.Kind = er.StreamDelete
		default:
			s.ingestErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("serve: ops[%d] has unknown op %q", i, j.Op)})
			return
		}
		for _, a := range j.Attrs {
			op.Attrs = append(op.Attrs, entity.Attribute{Name: a.Name, Value: a.Value})
		}
		ops[i] = op
	}
	ok, queued := s.admitOps(len(ops))
	if !ok {
		s.ingestRefused.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(queued)))
		writeJSON(w, http.StatusTooManyRequests, errorJSON{
			Error: fmt.Sprintf("serve: ingest budget exhausted (%d operations queued, bound %d); retry after the hinted delay", queued, s.opts.maxQueuedOps()),
		})
		return
	}
	defer s.releaseOps(len(ops))
	var err error
	if s.coal != nil && len(ops) == 1 {
		// A singleton joins the forming server-side batch and is answered
		// with its own op's outcome once the window commits.
		err = s.coal.apply(ops[0])
	} else {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.requestTimeout())
		err = s.applyIngest(ctx, ops)
		cancel()
	}
	if err != nil {
		s.ingestErrors.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, er.ErrBroken) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, OpsResultJSON{Applied: len(ops)})
}

func (s *Server) stats(ctx context.Context, r *http.Request) (any, error) {
	st, err := s.res.Stats()
	if err != nil {
		return nil, err
	}
	out := statsJSON(st)
	out.Server = s.serverStats()
	return out, nil
}
