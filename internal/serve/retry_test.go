package serve

import (
	"testing"
	"time"
)

// White-box coverage of the back-pressure math: the drain-rate EWMA and
// the Retry-After hint it derives, plus the CAS admission loop.

func TestRetryAfterDerivation(t *testing.T) {
	t.Parallel()
	s := NewServer(nil, Options{})

	// No apply has completed: no rate to extrapolate, hint 1.
	if got := s.retryAfter(8192); got != 1 {
		t.Fatalf("rateless hint = %d, want 1", got)
	}

	// One apply of 10 ops in 1s: rate 10/s. A 35-op backlog needs 4s.
	s.noteDrain(10, time.Second)
	if got := s.retryAfter(35); got != 4 {
		t.Fatalf("hint(35 queued, 10 ops/s) = %d, want ceil(3.5) = 4", got)
	}
	// A tiny backlog never hints below 1...
	if got := s.retryAfter(1); got != 1 {
		t.Fatalf("hint(1 queued) = %d, want the 1 floor", got)
	}
	// ...and a mountainous one clamps at 60.
	if got := s.retryAfter(100000); got != 60 {
		t.Fatalf("hint(100000 queued) = %d, want the 60 ceiling", got)
	}

	// The EWMA tracks rate shifts: fold in a much faster sample and the
	// hint drops. alpha=0.3 over 10 ops/s and 1000 ops/s lands at 307/s.
	s.noteDrain(1000, time.Second)
	if got := s.retryAfter(35); got != 1 {
		t.Fatalf("hint after speed-up = %d, want 1", got)
	}
	// Degenerate samples must not poison the rate.
	before := s.drainRate.Load()
	s.noteDrain(0, time.Second)
	s.noteDrain(5, 0)
	s.noteDrain(-3, time.Second)
	if s.drainRate.Load() != before {
		t.Fatal("degenerate drain samples moved the EWMA")
	}
}

func TestAdmitOpsCAS(t *testing.T) {
	t.Parallel()
	s := NewServer(nil, Options{MaxQueuedOps: 10})
	if ok, q := s.admitOps(7); !ok || q != 7 {
		t.Fatalf("admit(7) = %v, %d", ok, q)
	}
	// A refusal reports the backlog the hint is derived from.
	if ok, q := s.admitOps(4); ok || q != 7 {
		t.Fatalf("admit(4) over budget = %v, %d, want refused at 7", ok, q)
	}
	if ok, q := s.admitOps(3); !ok || q != 10 {
		t.Fatalf("admit(3) at the bound = %v, %d", ok, q)
	}
	s.releaseOps(10)
	if got := s.queuedOps.Load(); got != 0 {
		t.Fatalf("queuedOps after release = %d, want 0", got)
	}
}
