package matching

import (
	"context"
	"sort"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
)

func sortedPairs(m *entity.Matches) []entity.Pair {
	ps := m.Pairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	return ps
}

func parallelTestFixture(t testing.TB) (*entity.Collection, *blocking.Blocks) {
	t.Helper()
	c, _, err := datagen.GenerateDirty(datagen.Config{Entities: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, bs
}

// TestResolveBlocksParallelMatchesSequential checks the worker-pool
// executor returns the same match set and comparison count as the
// sequential executor, for several pool sizes and both similarity kinds
// (stateless and cached).
func TestResolveBlocksParallelMatchesSequential(t *testing.T) {
	c, bs := parallelTestFixture(t)
	matchers := []*Matcher{
		{Sim: &TokenJaccard{}, Threshold: 0.5},
		{Sim: NewTFIDFCosine(c, nil), Threshold: 0.5},
	}
	for _, m := range matchers {
		want := ResolveBlocks(c, bs, m)
		for _, workers := range []int{0, 1, 2, 4, 8} {
			got, err := ResolveBlocksParallel(context.Background(), c, bs, m, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m.Name(), workers, err)
			}
			if got.Comparisons != want.Comparisons {
				t.Fatalf("%s workers=%d: comparisons %d, want %d", m.Name(), workers, got.Comparisons, want.Comparisons)
			}
			gp, wp := sortedPairs(got.Matches), sortedPairs(want.Matches)
			if len(gp) != len(wp) {
				t.Fatalf("%s workers=%d: %d matches, want %d", m.Name(), workers, len(gp), len(wp))
			}
			for i := range wp {
				if gp[i] != wp[i] {
					t.Fatalf("%s workers=%d: match %d is %v, want %v", m.Name(), workers, i, gp[i], wp[i])
				}
			}
		}
	}
}

func TestResolveBlocksParallelCancelled(t *testing.T) {
	c, bs := parallelTestFixture(t)
	m := &Matcher{Sim: &TokenJaccard{}, Threshold: 0.5}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := ResolveBlocksParallel(ctx, c, bs, m, workers)
		if err == nil {
			t.Fatalf("workers=%d: want context error, got nil", workers)
		}
		full := ResolveBlocks(c, bs, m)
		if res.Comparisons >= full.Comparisons {
			t.Fatalf("workers=%d: cancelled run executed all %d comparisons", workers, res.Comparisons)
		}
	}
}
