// Package matching implements the entity-matching phase of the framework
// (Fig. 1 of the paper): profile similarity functions over whole
// descriptions, a thresholded Matcher, and executors that run a matcher
// over the candidate pairs suggested by blocking. Matching decisions are
// pairwise; equivalence classes are obtained through
// entity.Matches.Clusters (connected components).
package matching

import (
	"context"
	"fmt"
	"sync"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/index"
	"entityres/internal/similarity"
	"entityres/internal/token"
)

// ProfileSimilarity scores pairs of whole descriptions in [0, 1].
type ProfileSimilarity interface {
	// Name identifies the measure in experiment tables.
	Name() string
	// Sim returns the similarity of a and b.
	Sim(a, b *entity.Description) float64
}

// TokenJaccard is the schema-agnostic Jaccard similarity of the two
// descriptions' token sets — robust to schema heterogeneity, blind to
// token importance.
type TokenJaccard struct {
	// Profiler controls tokenization; nil means token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements ProfileSimilarity.
func (t *TokenJaccard) Name() string { return "token-jaccard" }

// Sim implements ProfileSimilarity.
func (t *TokenJaccard) Sim(a, b *entity.Description) float64 {
	p := t.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	return similarity.Jaccard(p.Set(a), p.Set(b))
}

// TokenContainment is the overlap coefficient |A∩B| / min(|A|,|B|) of the
// two descriptions' token sets. Unlike Jaccard it is not diluted when one
// side accumulates extra attributes, which makes it the right similarity
// for merging-based resolution (R-Swoosh, iterative blocking): a merged
// profile that absorbs new tokens never loses containment against the
// still-unmerged duplicates whose token sets it covers.
type TokenContainment struct {
	// Profiler controls tokenization; nil means token.DefaultProfiler.
	Profiler *token.Profiler
}

// Name implements ProfileSimilarity.
func (t *TokenContainment) Name() string { return "token-containment" }

// Sim implements ProfileSimilarity.
func (t *TokenContainment) Sim(a, b *entity.Description) float64 {
	p := t.Profiler
	if p == nil {
		p = token.DefaultProfiler()
	}
	return similarity.Overlap(p.Set(a), p.Set(b))
}

// TFIDFCosine is the cosine similarity of TF-IDF weighted token vectors
// under a corpus index: common tokens count little, discriminative tokens
// dominate. Vectors are cached per description pointer, so merged profiles
// (new pointers) are re-vectorized automatically. The cache is guarded so
// the measure is safe for concurrent use by matcher worker pools.
type TFIDFCosine struct {
	ix    *index.Inverted
	prof  *token.Profiler
	mu    sync.RWMutex
	cache map[*entity.Description]similarity.Vector
}

// NewTFIDFCosine indexes the collection and returns the measure.
func NewTFIDFCosine(c *entity.Collection, p *token.Profiler) *TFIDFCosine {
	if p == nil {
		p = token.DefaultProfiler()
	}
	return &TFIDFCosine{
		ix:    index.Build(c, p),
		prof:  p,
		cache: make(map[*entity.Description]similarity.Vector, c.Len()),
	}
}

// Name implements ProfileSimilarity.
func (t *TFIDFCosine) Name() string { return "tfidf-cosine" }

// Sim implements ProfileSimilarity.
func (t *TFIDFCosine) Sim(a, b *entity.Description) float64 {
	return similarity.Cosine(t.vector(a), t.vector(b))
}

func (t *TFIDFCosine) vector(d *entity.Description) similarity.Vector {
	t.mu.RLock()
	v, ok := t.cache[d]
	t.mu.RUnlock()
	if ok {
		return v
	}
	v = t.ix.TFIDFVector(t.prof.Tokens(d))
	t.mu.Lock()
	t.cache[d] = v
	t.mu.Unlock()
	return v
}

// BestValueJW is the maximum Jaro-Winkler similarity over the cross
// product of the two descriptions' attribute values (optionally restricted
// to the named attributes) — the classic name-matching measure.
type BestValueJW struct {
	// Attrs restricts which attributes contribute values; empty means all.
	Attrs []string
}

// Name implements ProfileSimilarity.
func (m *BestValueJW) Name() string { return "best-value-jw" }

// Sim implements ProfileSimilarity.
func (m *BestValueJW) Sim(a, b *entity.Description) float64 {
	va, vb := m.values(a), m.values(b)
	best := 0.0
	for _, x := range va {
		for _, y := range vb {
			if s := similarity.JaroWinkler(x, y); s > best {
				best = s
			}
		}
	}
	return best
}

func (m *BestValueJW) values(d *entity.Description) []string {
	if len(m.Attrs) == 0 {
		return d.AllValues()
	}
	var out []string
	for _, a := range m.Attrs {
		out = append(out, d.Values(a)...)
	}
	return out
}

// WeightedPart is one component of a Weighted similarity.
type WeightedPart struct {
	Measure ProfileSimilarity
	Weight  float64
}

// Weighted is the normalized weighted sum of component similarities — the
// composite matcher configuration of record-linkage practice.
type Weighted struct {
	Parts []WeightedPart
}

// Name implements ProfileSimilarity.
func (w *Weighted) Name() string { return "weighted" }

// Sim implements ProfileSimilarity.
func (w *Weighted) Sim(a, b *entity.Description) float64 {
	total, sum := 0.0, 0.0
	for _, p := range w.Parts {
		if p.Weight <= 0 {
			continue
		}
		total += p.Weight
		sum += p.Weight * p.Measure.Sim(a, b)
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// Matcher is a thresholded similarity decision.
type Matcher struct {
	Sim       ProfileSimilarity
	Threshold float64
}

// Name identifies the matcher configuration.
func (m *Matcher) Name() string {
	return fmt.Sprintf("%s@%.2f", m.Sim.Name(), m.Threshold)
}

// Match reports the decision and the underlying similarity.
func (m *Matcher) Match(a, b *entity.Description) (bool, float64) {
	s := m.Sim.Sim(a, b)
	return s >= m.Threshold, s
}

// Result is the outcome of executing a matcher over candidate pairs.
type Result struct {
	Matches     *entity.Matches
	Comparisons int64
}

// ResolveBlocks executes the matcher over every distinct comparison of bs.
// It delegates to the engine's workers==1 streaming path so the sequential
// pipeline and the parallel engine share one resolve loop.
func ResolveBlocks(c *entity.Collection, bs *blocking.Blocks, m *Matcher) Result {
	res, _ := resolveIteratorSequential(context.Background(), c, bs, m)
	return res
}

// ResolvePairs executes the matcher over an explicit pair list.
func ResolvePairs(c *entity.Collection, pairs []entity.Pair, m *Matcher) Result {
	res := Result{Matches: entity.NewMatches()}
	for _, p := range pairs {
		res.Comparisons++
		if ok, _ := m.Match(c.Get(p.A), c.Get(p.B)); ok {
			res.Matches.Add(p.A, p.B)
		}
	}
	return res
}
