package matching

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/token"
)

func TestTokenContainmentMergeFriendly(t *testing.T) {
	a := entity.NewDescription("").Add("n", "alice smith")
	b := entity.NewDescription("").Add("n", "alice smith").Add("extra", "painter paris 1950")
	tc := &TokenContainment{}
	tj := &TokenJaccard{}
	if got := tc.Sim(a, b); got != 1 {
		t.Fatalf("containment of subset = %v, want 1", got)
	}
	if tj.Sim(a, b) >= tc.Sim(a, b) {
		t.Fatal("jaccard should be diluted by the extra attributes, containment not")
	}
	if tc.Name() != "token-containment" {
		t.Fatal("name")
	}
}

func TestTokenContainmentCustomProfiler(t *testing.T) {
	prof := &token.Profiler{Scheme: token.SchemaAware}
	tc := &TokenContainment{Profiler: prof}
	a := entity.NewDescription("").Add("x", "smith")
	b := entity.NewDescription("").Add("y", "smith")
	if got := tc.Sim(a, b); got != 0 {
		t.Fatalf("schema-aware containment across attrs = %v", got)
	}
}

func TestProfileSimilarityNames(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "x"))
	for _, s := range []ProfileSimilarity{
		&TokenJaccard{}, &TokenContainment{}, NewTFIDFCosine(c, nil),
		&BestValueJW{}, &Weighted{},
	} {
		if s.Name() == "" {
			t.Fatalf("%T has empty name", s)
		}
	}
}

func TestBestValueJWEmptySides(t *testing.T) {
	m := &BestValueJW{}
	a := entity.NewDescription("")
	b := entity.NewDescription("").Add("n", "x")
	if got := m.Sim(a, b); got != 0 {
		t.Fatalf("empty side sim = %v", got)
	}
}

func TestTFIDFCosineSkipRefProfiler(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	c.MustAdd(entity.NewDescription("").Add("n", "alpha").Add("r", "http://x/1"))
	c.MustAdd(entity.NewDescription("").Add("n", "alpha").Add("r", "http://x/2"))
	prof := &token.Profiler{Scheme: token.SchemaAgnostic, SkipRefValues: true}
	tc := NewTFIDFCosine(c, prof)
	if got := tc.Sim(c.Get(0), c.Get(1)); got != 1 {
		t.Fatalf("ref-skipping cosine = %v, want 1 (URIs ignored)", got)
	}
}

func TestResolveBlocksEmpty(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	bs := blocking.NewBlocks(entity.Dirty)
	m := &Matcher{Sim: &TokenJaccard{}, Threshold: 0.5}
	res := ResolveBlocks(c, bs, m)
	if res.Comparisons != 0 || res.Matches.Len() != 0 {
		t.Fatalf("empty resolve = %+v", res)
	}
}
