package matching

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// compareChunk is how many pairs travel per channel send: large enough to
// amortize channel synchronization, small enough to keep workers balanced
// on skewed block-size distributions.
const compareChunk = 256

// ResolveBlocksParallel executes the matcher over every distinct comparison
// of bs using a pool of concurrent workers fed by a streaming
// CompareIterator — pairs are never materialized as one slice. The match
// output is identical to ResolveBlocks for any worker count, because a
// thresholded match decision depends only on the pair, never on execution
// order. The matcher's similarity must be safe for concurrent use (every
// similarity in this package is).
//
// When ctx is cancelled the stream stops early and the partial result is
// returned together with ctx.Err(). workers <= 0 means GOMAXPROCS.
func ResolveBlocksParallel(ctx context.Context, c *entity.Collection, bs *blocking.Blocks, m *Matcher, workers int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return resolveIteratorSequential(ctx, c, bs, m)
	}

	pairsCh := make(chan []entity.Pair, workers*2)
	matchedCh := make(chan []entity.Pair, workers*2)
	var comparisons atomic.Int64

	// Producer: pull from the streaming iterator, ship fixed-size chunks.
	go func() {
		defer close(pairsCh)
		it := blocking.NewCompareIterator(bs)
		chunk := make([]entity.Pair, 0, compareChunk)
		flush := func() bool {
			if len(chunk) == 0 {
				return true
			}
			// Check ctx before the select: when both cases are ready the
			// select would pick at random, letting a cancelled producer
			// keep streaming.
			if ctx.Err() != nil {
				return false
			}
			select {
			case pairsCh <- chunk:
				comparisons.Add(int64(len(chunk)))
				chunk = make([]entity.Pair, 0, compareChunk)
				return true
			case <-ctx.Done():
				return false
			}
		}
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			chunk = append(chunk, p)
			if len(chunk) == compareChunk && !flush() {
				return
			}
		}
		flush()
	}()

	// Workers: match each chunk, forward the positives.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range pairsCh {
				var hits []entity.Pair
				for _, p := range chunk {
					if ok, _ := m.Match(c.Get(p.A), c.Get(p.B)); ok {
						hits = append(hits, p)
					}
				}
				if len(hits) > 0 {
					matchedCh <- hits
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(matchedCh)
	}()

	// Collector (this goroutine): fold positives into the match set.
	res := Result{Matches: entity.NewMatches()}
	for hits := range matchedCh {
		for _, p := range hits {
			res.Matches.Add(p.A, p.B)
		}
	}
	res.Comparisons = comparisons.Load()
	return res, ctx.Err()
}

// resolveIteratorSequential is the workers==1 path: same streaming iterator
// and cancellation semantics, no goroutines.
func resolveIteratorSequential(ctx context.Context, c *entity.Collection, bs *blocking.Blocks, m *Matcher) (Result, error) {
	res := Result{Matches: entity.NewMatches()}
	it := blocking.NewCompareIterator(bs)
	for {
		if res.Comparisons%compareChunk == 0 && ctx.Err() != nil {
			return res, ctx.Err()
		}
		p, ok := it.Next()
		if !ok {
			return res, nil
		}
		res.Comparisons++
		if ok, _ := m.Match(c.Get(p.A), c.Get(p.B)); ok {
			res.Matches.Add(p.A, p.B)
		}
	}
}
