package matching

import (
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

func twoPeople(t *testing.T) (*entity.Collection, *entity.Description, *entity.Description) {
	t.Helper()
	c := entity.NewCollection(entity.Dirty)
	a := entity.NewDescription("").Add("name", "alice smith").Add("city", "paris")
	b := entity.NewDescription("").Add("label", "alice smith").Add("location", "paris")
	c.MustAdd(a)
	c.MustAdd(b)
	c.MustAdd(entity.NewDescription("").Add("name", "bob jones").Add("city", "rome"))
	return c, a, b
}

func TestTokenJaccard(t *testing.T) {
	_, a, b := twoPeople(t)
	tj := &TokenJaccard{}
	if got := tj.Sim(a, b); got != 1 {
		t.Fatalf("schema-agnostic jaccard = %v", got)
	}
	if tj.Name() == "" {
		t.Fatal("name")
	}
}

func TestTFIDFCosineWeighsRareTokens(t *testing.T) {
	c := entity.NewCollection(entity.Dirty)
	// "smith" is ubiquitous; "zanzibar" is rare.
	c.MustAdd(entity.NewDescription("").Add("n", "smith zanzibar"))
	c.MustAdd(entity.NewDescription("").Add("n", "smith zanzibar"))
	c.MustAdd(entity.NewDescription("").Add("n", "smith common"))
	c.MustAdd(entity.NewDescription("").Add("n", "smith common"))
	tc := NewTFIDFCosine(c, nil)
	simRare := tc.Sim(c.Get(0), c.Get(1))  // share rare token
	simSplit := tc.Sim(c.Get(0), c.Get(2)) // share only frequent token
	if !(simRare > simSplit) {
		t.Fatalf("rare-token pair should score higher: %v vs %v", simRare, simSplit)
	}
	// Cache should serve repeated calls identically.
	if tc.Sim(c.Get(0), c.Get(1)) != simRare {
		t.Fatal("cache changed the score")
	}
}

func TestBestValueJW(t *testing.T) {
	a := entity.NewDescription("").Add("name", "katherine").Add("x", "zzz")
	b := entity.NewDescription("").Add("label", "catherine")
	m := &BestValueJW{}
	if got := m.Sim(a, b); got < 0.85 {
		t.Fatalf("BestValueJW = %v", got)
	}
	restricted := &BestValueJW{Attrs: []string{"x"}}
	if got := restricted.Sim(a, b); got != 0 {
		t.Fatalf("restricted sim = %v (no values on b side)", got)
	}
}

func TestWeighted(t *testing.T) {
	_, a, b := twoPeople(t)
	w := &Weighted{Parts: []WeightedPart{
		{Measure: &TokenJaccard{}, Weight: 3},
		{Measure: &BestValueJW{}, Weight: 1},
		{Measure: &TokenJaccard{}, Weight: 0}, // ignored
	}}
	got := w.Sim(a, b)
	if got <= 0.9 || got > 1 {
		t.Fatalf("weighted = %v", got)
	}
	empty := &Weighted{}
	if empty.Sim(a, b) != 0 {
		t.Fatal("empty weighted should be 0")
	}
}

func TestMatcherDecision(t *testing.T) {
	_, a, b := twoPeople(t)
	m := &Matcher{Sim: &TokenJaccard{}, Threshold: 0.8}
	ok, s := m.Match(a, b)
	if !ok || s != 1 {
		t.Fatalf("Match = %v, %v", ok, s)
	}
	strict := &Matcher{Sim: &TokenJaccard{}, Threshold: 1.01}
	if ok, _ := strict.Match(a, b); ok {
		t.Fatal("impossible threshold matched")
	}
	if !strings.Contains(m.Name(), "token-jaccard@0.80") {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestResolveBlocks(t *testing.T) {
	c, _, _ := twoPeople(t)
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "k", S0: []entity.ID{0, 1, 2}})
	m := &Matcher{Sim: &TokenJaccard{}, Threshold: 0.8}
	res := ResolveBlocks(c, bs, m)
	if res.Comparisons != 3 {
		t.Fatalf("comparisons = %d", res.Comparisons)
	}
	if res.Matches.Len() != 1 || !res.Matches.Contains(0, 1) {
		t.Fatalf("matches = %v", res.Matches.Pairs())
	}
}

func TestResolvePairs(t *testing.T) {
	c, _, _ := twoPeople(t)
	m := &Matcher{Sim: &TokenJaccard{}, Threshold: 0.8}
	res := ResolvePairs(c, []entity.Pair{entity.NewPair(0, 1), entity.NewPair(0, 2)}, m)
	if res.Comparisons != 2 || res.Matches.Len() != 1 {
		t.Fatalf("result = %+v", res)
	}
}
