// ShardClient: the coordinator's connection to one shard server, with the
// retry discipline the routed stream needs. Transport failures — dial
// errors, torn frames, deadline expiries — are retried a bounded number of
// times over a fresh connection; re-delivery is safe because the shard
// acknowledges an already-applied sequence number without re-applying.
// Semantic refusals (frameErr) are NEVER retried: the request arrived and
// the shard rejected it, so re-sending cannot help and the error surfaces
// as a RemoteError for the coordinator to interpret.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"entityres/internal/incremental"
	"entityres/internal/wal"
)

// DialFunc opens a connection to a shard address. The default is a
// net.Dialer; tests inject fault-wrapping dialers to exercise disconnects,
// timeouts and retries deterministically.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// ClientOptions tunes a shard connection.
type ClientOptions struct {
	// Timeout bounds every request round-trip, dial included (default 5s).
	Timeout time.Duration
	// Attempts is the number of delivery attempts per request, each over a
	// fresh connection after a transport failure (default 3).
	Attempts int
	// Dial opens connections (default: net.Dialer through Timeout).
	Dial DialFunc
}

const (
	defaultTimeout  = 5 * time.Second
	defaultAttempts = 3
)

func (o ClientOptions) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return defaultTimeout
}

func (o ClientOptions) attempts() int {
	if o.Attempts > 0 {
		return o.Attempts
	}
	return defaultAttempts
}

// RemoteError is a shard's semantic refusal of a delivered request.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: shard refused: " + e.Msg }

// ShardClient is a synchronous frame-protocol client for one shard. It is
// not safe for concurrent use; the coordinator owns one per shard and
// serializes requests within its fan-out.
type ShardClient struct {
	addr   string
	expect Hello
	opts   ClientOptions

	mu   sync.Mutex
	conn net.Conn
	// lastHello is the server's reply from the connection's opening
	// handshake — the shard's durable position at connect time.
	lastHello Hello
}

// NewShardClient returns a lazily-dialing client. expect is the deployment
// identity the handshake asserts (built by the coordinator).
func NewShardClient(addr string, expect Hello, opts ClientOptions) *ShardClient {
	return &ShardClient{addr: addr, expect: expect, opts: opts}
}

// Hello (re)connects and returns the shard's handshake reply. It always
// dials fresh — rejoin uses it to observe the shard's current durable
// position rather than a cached one.
func (c *ShardClient) Hello(ctx context.Context) (Hello, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
	if err := c.ensureLocked(ctx); err != nil {
		return Hello{}, err
	}
	return c.lastHello, nil
}

// LastHello returns the most recent handshake reply without touching the
// network.
func (c *ShardClient) LastHello() Hello {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastHello
}

// ApplyOp delivers one routed operation, retrying over fresh connections on
// transport failure, and returns the shard's acknowledgement.
func (c *ShardClient) ApplyOp(ctx context.Context, op incremental.RoutedOp) (Ack, error) {
	rtyp, reply, err := c.roundTrip(ctx, frameOp, encodeOp(nil, op))
	if err != nil {
		return Ack{}, err
	}
	if rtyp != frameAck {
		return Ack{}, fmt.Errorf("transport: op answered with frame type %d", rtyp)
	}
	ack, err := decodeAck(reply)
	if err != nil {
		return Ack{}, err
	}
	if ack.Seq != op.Seq {
		return Ack{}, fmt.Errorf("transport: ack for seq %d answers op %d", ack.Seq, op.Seq)
	}
	return ack, nil
}

// ApplyBatch delivers a whole batch of routed operations in one round trip
// and returns the shard's cumulative acknowledgement. Retry over a fresh
// connection re-delivers the whole frame; the shard re-acks its already-
// applied prefix idempotently and resumes where it stopped.
func (c *ShardClient) ApplyBatch(ctx context.Context, ops []incremental.RoutedOp) (BatchAck, error) {
	if len(ops) == 0 {
		return BatchAck{}, fmt.Errorf("transport: empty batch")
	}
	rtyp, reply, err := c.roundTrip(ctx, frameBatch, encodeBatch(nil, ops))
	if err != nil {
		return BatchAck{}, err
	}
	if rtyp != frameBatchAck {
		return BatchAck{}, fmt.Errorf("transport: batch answered with frame type %d", rtyp)
	}
	ack, err := decodeBatchAck(reply)
	if err != nil {
		return BatchAck{}, err
	}
	if want := ops[len(ops)-1].Seq; ack.Seq != want {
		return BatchAck{}, fmt.Errorf("transport: batch ack at seq %d, final op is seq %d", ack.Seq, want)
	}
	if len(ack.Neighbors) != len(ops) {
		return BatchAck{}, fmt.Errorf("transport: batch ack carries %d neighbor lists for %d operations", len(ack.Neighbors), len(ops))
	}
	return ack, nil
}

// Bootstrap ships a full state transfer. Safe to retry: a shard already at
// the shipped sequence number acknowledges without restoring again.
func (c *ShardClient) Bootstrap(ctx context.Context, blob wal.Snapshot) error {
	rtyp, _, err := c.roundTrip(ctx, frameBootstrap, blob)
	if err != nil {
		return err
	}
	if rtyp != frameBootstrapOK {
		return fmt.Errorf("transport: bootstrap answered with frame type %d", rtyp)
	}
	return nil
}

// State fetches the shard's counters, stream position and match edges.
func (c *ShardClient) State(ctx context.Context) (stateJSON, error) {
	rtyp, reply, err := c.roundTrip(ctx, frameState, nil)
	if err != nil {
		return stateJSON{}, err
	}
	if rtyp != frameStateOK {
		return stateJSON{}, fmt.Errorf("transport: state answered with frame type %d", rtyp)
	}
	var st stateJSON
	if err := unmarshalJSON(reply, &st); err != nil {
		return stateJSON{}, err
	}
	return st, nil
}

// Close drops the connection. The client can be reused; the next request
// redials.
func (c *ShardClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
	return nil
}

// roundTrip sends one request frame and reads its reply, redialing and
// retrying on transport failure up to the attempt budget. A frameErr reply
// is returned as a *RemoteError without retrying.
func (c *ShardClient) roundTrip(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < c.opts.attempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		if err := c.ensureLocked(ctx); err != nil {
			// An identity refusal during the handshake is semantic, not
			// transport: redialing the same server cannot change its answer.
			var rerr *RemoteError
			if errors.As(err, &rerr) {
				return 0, nil, err
			}
			lastErr = err
			continue
		}
		rtyp, reply, err := c.exchangeLocked(ctx, typ, payload)
		if err != nil {
			// Transport failure: this connection is suspect. Drop it and
			// retry on a fresh one — the shard's sequence check makes
			// re-delivery idempotent.
			c.dropLocked()
			lastErr = err
			continue
		}
		if rtyp == frameErr {
			return 0, nil, &RemoteError{Msg: string(reply)}
		}
		return rtyp, reply, nil
	}
	return 0, nil, fmt.Errorf("transport: %s unreachable after %d attempts: %w", c.addr, c.opts.attempts(), lastErr)
}

// exchangeLocked performs one write/read round-trip under the request
// deadline. Callers hold c.mu with an established connection.
func (c *ShardClient) exchangeLocked(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	deadline := time.Now().Add(c.opts.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		return 0, nil, err
	}
	if err := writeFrame(c.conn, typ, payload); err != nil {
		return 0, nil, err
	}
	return readFrame(c.conn)
}

// ensureLocked establishes a connection and performs the opening
// handshake. Callers hold c.mu.
func (c *ShardClient) ensureLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	dial := c.opts.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, c.opts.timeout())
	defer cancel()
	conn, err := dial(dctx, c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	rtyp, reply, err := c.exchangeLocked(ctx, frameHello, marshalJSON(c.expect))
	if err != nil {
		c.dropLocked()
		return err
	}
	if rtyp == frameErr {
		// An identity refusal is permanent, but the connection itself is
		// fine to abandon either way.
		c.dropLocked()
		return &RemoteError{Msg: string(reply)}
	}
	if rtyp != frameHelloOK {
		c.dropLocked()
		return fmt.Errorf("transport: hello answered with frame type %d", rtyp)
	}
	var h Hello
	if err := unmarshalJSON(reply, &h); err != nil {
		c.dropLocked()
		return err
	}
	c.lastHello = h
	return nil
}

func (c *ShardClient) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
