// The hot-path binary codec: routed operations and their acknowledgements
// travel as hand-rolled uvarint records — no reflection, no per-field
// interface dispatch, one allocation per decode. Every decode is fully
// bounds-checked and returns an error rather than panicking; FuzzOpCodec
// drives arbitrary bytes through it.
package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"entityres/internal/entity"
	"entityres/internal/incremental"
)

// opFlagAdvance marks a slot-advance record in the encoded flags byte.
const opFlagAdvance = 1

// Ack is a shard's acknowledgement of one routed operation: the sequence
// number it is current through, its cumulative matcher-invocation counter,
// and the operated-on description's current match neighbors — the per-op
// edge feed the coordinator folds into the global match graph.
type Ack struct {
	Seq         uint64
	Comparisons int64
	Neighbors   []entity.ID
}

// encodeOp appends op's wire form to buf.
func encodeOp(buf []byte, op incremental.RoutedOp) []byte {
	buf = binary.AppendUvarint(buf, op.Seq)
	var flags byte
	if op.Advance {
		flags |= opFlagAdvance
	}
	buf = append(buf, byte(op.Kind), flags)
	buf = binary.AppendUvarint(buf, uint64(op.ID))
	buf = appendString(buf, op.URI)
	buf = binary.AppendUvarint(buf, uint64(op.Source))
	buf = binary.AppendUvarint(buf, uint64(len(op.Attrs)))
	for _, a := range op.Attrs {
		buf = appendString(buf, a.Name)
		buf = appendString(buf, a.Value)
	}
	return buf
}

// decodeOp parses one routed operation, rejecting truncated fields,
// oversized counts and trailing garbage.
func decodeOp(data []byte) (incremental.RoutedOp, error) {
	d := decoder{buf: data}
	op := d.op()
	d.finish()
	if d.err != nil {
		return incremental.RoutedOp{}, d.err
	}
	return op, nil
}

// op reads one routed operation from the cursor — the shared body of the
// single-op and batch decoders. Kind and flag validation fails the cursor
// like any truncation.
func (d *decoder) op() incremental.RoutedOp {
	var op incremental.RoutedOp
	op.Seq = d.uvarint()
	kind := d.byte()
	flags := d.byte()
	op.Kind = incremental.OpKind(kind)
	op.Advance = flags&opFlagAdvance != 0
	op.ID = entity.ID(d.length())
	op.URI = d.string()
	op.Source = int(d.length())
	n := d.length()
	// Each attribute needs at least two length bytes; a count beyond the
	// remaining payload is corrupt, and checking before allocating keeps a
	// hostile count from demanding gigabytes.
	if d.err == nil && n > len(d.buf)-d.off {
		d.fail("attribute count %d exceeds remaining payload", n)
	}
	if d.err == nil && n > 0 {
		op.Attrs = make([]entity.Attribute, 0, n)
		for i := 0; i < n; i++ {
			name := d.string()
			value := d.string()
			op.Attrs = append(op.Attrs, entity.Attribute{Name: name, Value: value})
		}
	}
	if d.err == nil && flags&^byte(opFlagAdvance) != 0 {
		d.fail("op record has unknown flags %#x", flags)
	}
	if d.err == nil {
		switch op.Kind {
		case incremental.OpInsert, incremental.OpUpdate, incremental.OpDelete:
		default:
			d.fail("op record has kind %d", kind)
		}
	}
	if d.err != nil {
		return incremental.RoutedOp{}
	}
	return op
}

// encodeBatch appends a batch frame's wire form to buf: a count prefix
// followed by each routed operation in stream order.
func encodeBatch(buf []byte, ops []incremental.RoutedOp) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = encodeOp(buf, op)
	}
	return buf
}

// decodeBatch parses a batch frame. An empty batch is rejected: the wire
// never carries one (ApplyBatch no-ops before framing), so seeing one means
// corruption.
func decodeBatch(data []byte) ([]incremental.RoutedOp, error) {
	d := decoder{buf: data}
	n := d.length()
	if d.err == nil && n == 0 {
		d.fail("batch frame carries no operations")
	}
	// Each op needs at least a handful of bytes; a count beyond the
	// remaining payload is corrupt.
	if d.err == nil && n > len(d.buf)-d.off {
		d.fail("batch op count %d exceeds remaining payload", n)
	}
	var ops []incremental.RoutedOp
	if d.err == nil {
		ops = make([]incremental.RoutedOp, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			ops = append(ops, d.op())
		}
	}
	d.finish()
	if d.err != nil {
		return nil, d.err
	}
	return ops, nil
}

// BatchAck is a shard's single cumulative acknowledgement of a whole batch
// frame: the final sequence number it is current through, its cumulative
// matcher-invocation counter after the batch, and — per operation, in
// stream order — the operated-on description's match neighbors AS OF that
// operation. The at-time capture is what lets the coordinator fold the
// batch exactly like N lockstep per-op acknowledgements.
type BatchAck struct {
	Seq         uint64
	Comparisons int64
	Neighbors   [][]entity.ID
}

// encodeBatchAck appends ack's wire form to buf.
func encodeBatchAck(buf []byte, ack BatchAck) []byte {
	buf = binary.AppendUvarint(buf, ack.Seq)
	buf = binary.AppendUvarint(buf, uint64(ack.Comparisons))
	buf = binary.AppendUvarint(buf, uint64(len(ack.Neighbors)))
	for _, nbs := range ack.Neighbors {
		buf = binary.AppendUvarint(buf, uint64(len(nbs)))
		for _, id := range nbs {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	return buf
}

// decodeBatchAck parses one cumulative batch acknowledgement.
func decodeBatchAck(data []byte) (BatchAck, error) {
	var ack BatchAck
	d := decoder{buf: data}
	ack.Seq = d.uvarint()
	comp := d.uvarint()
	if d.err == nil && comp > math.MaxInt64 {
		d.fail("comparison counter %d overflows", comp)
	}
	ack.Comparisons = int64(comp)
	n := d.length()
	if d.err == nil && n > len(d.buf)-d.off {
		d.fail("batch ack op count %d exceeds remaining payload", n)
	}
	if d.err == nil && n > 0 {
		ack.Neighbors = make([][]entity.ID, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			m := d.length()
			if d.err == nil && m > len(d.buf)-d.off {
				d.fail("neighbor count %d exceeds remaining payload", m)
			}
			var nbs []entity.ID
			if d.err == nil && m > 0 {
				nbs = make([]entity.ID, 0, m)
				for j := 0; j < m; j++ {
					nbs = append(nbs, entity.ID(d.length()))
				}
			}
			ack.Neighbors = append(ack.Neighbors, nbs)
		}
	}
	d.finish()
	if d.err != nil {
		return BatchAck{}, d.err
	}
	return ack, nil
}

// encodeAck appends ack's wire form to buf.
func encodeAck(buf []byte, ack Ack) []byte {
	buf = binary.AppendUvarint(buf, ack.Seq)
	buf = binary.AppendUvarint(buf, uint64(ack.Comparisons))
	buf = binary.AppendUvarint(buf, uint64(len(ack.Neighbors)))
	for _, id := range ack.Neighbors {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// decodeAck parses one acknowledgement.
func decodeAck(data []byte) (Ack, error) {
	var ack Ack
	d := decoder{buf: data}
	ack.Seq = d.uvarint()
	comp := d.uvarint()
	if d.err == nil && comp > math.MaxInt64 {
		d.fail("comparison counter %d overflows", comp)
	}
	ack.Comparisons = int64(comp)
	n := d.length()
	if d.err == nil && n > len(d.buf)-d.off {
		d.fail("neighbor count %d exceeds remaining payload", n)
	}
	if d.err == nil && n > 0 {
		ack.Neighbors = make([]entity.ID, 0, n)
		for i := 0; i < n; i++ {
			ack.Neighbors = append(ack.Neighbors, entity.ID(d.length()))
		}
	}
	d.finish()
	if d.err != nil {
		return Ack{}, d.err
	}
	return ack, nil
}

// decoder is a bounds-checked cursor over an encoded record. The first
// failure sticks; subsequent reads return zero values, so decode functions
// read straight through and check err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated record")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	d.off += n
	return v
}

// length reads a uvarint that must fit a non-negative int — handles,
// sources, counts and string lengths.
func (d *decoder) length() int {
	v := d.uvarint()
	if d.err == nil && v > math.MaxInt32 {
		d.fail("length %d overflows", v)
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	if n > len(d.buf)-d.off {
		d.fail("string of %d bytes exceeds remaining payload", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// finish rejects trailing bytes after a successful parse.
func (d *decoder) finish() {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing bytes after record", len(d.buf)-d.off)
	}
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}
