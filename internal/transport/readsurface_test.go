package transport_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"entityres/internal/entity"
	"entityres/internal/transport"
)

// TestCoordinatorReadSurface drives the serving accessors of a networked
// coordinator — the reads the HTTP query service rides — plus the exported
// error renderings and the client's cached handshake.
func TestCoordinatorReadSurface(t *testing.T) {
	t.Parallel()
	cfg := testShardCfg()
	cfg.Shards = 2
	c := startCluster(t, cfg, []string{"", ""})
	ctx := context.Background()
	co, err := c.open(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	mk := func(uri, name string) *entity.Description {
		return &entity.Description{ID: -1, URI: uri, Attrs: []entity.Attribute{{Name: "name", Value: name}}}
	}
	a, err := co.Insert(ctx, mk("u:a", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := co.Insert(ctx, mk("u:b", "alice smith"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Insert(ctx, mk("u:c", "carol jones")); err != nil {
		t.Fatal(err)
	}
	if err := co.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := mustClusters(t, co); !reflect.DeepEqual(got, [][]entity.ID{{a, b}}) {
		t.Fatalf("Clusters = %v", got)
	}
	if got := mustMatchedWith(t, co, a); !reflect.DeepEqual(got, []entity.ID{b}) {
		t.Fatalf("MatchedWith(%d) = %v", a, got)
	}
	if got := mustMatchedWith(t, co, 99); got != nil {
		t.Fatalf("MatchedWith(dead) = %v", got)
	}
	d, ok := co.Get(a)
	if !ok || d.URI != "u:a" {
		t.Fatalf("Get(%d) = %+v, %v", a, d, ok)
	}

	if msg := (&transport.ShardUnavailableError{Shards: []int{1}}).Error(); !strings.Contains(msg, "1") {
		t.Fatalf("ShardUnavailableError = %q", msg)
	}
	if msg := (&transport.RemoteError{Msg: "refused"}).Error(); !strings.Contains(msg, "refused") {
		t.Fatalf("RemoteError = %q", msg)
	}
}

// TestClientLastHello checks the handshake cache: zero before any
// exchange, the server's reply after one.
func TestClientLastHello(t *testing.T) {
	t.Parallel()
	_, addr := startTestServer(t)
	c := transport.NewShardClient(addr, testExpect(), transport.ClientOptions{})
	defer c.Close()
	if h := c.LastHello(); h.Shards != 0 {
		t.Fatalf("LastHello before any exchange = %+v", h)
	}
	h, err := c.Hello(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LastHello(); got != h || got.Shards != 1 {
		t.Fatalf("LastHello = %+v, handshake said %+v", got, h)
	}
}
