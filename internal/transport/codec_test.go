package transport

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"entityres/internal/entity"
	"entityres/internal/incremental"
)

func sampleOps() []incremental.RoutedOp {
	return []incremental.RoutedOp{
		{Seq: 1, Kind: incremental.OpInsert, ID: 0, URI: "urn:a", Source: 1,
			Attrs: []entity.Attribute{{Name: "name", Value: "alice"}, {Name: "city", Value: "athens"}}},
		{Seq: 2, Kind: incremental.OpInsert, Advance: true, ID: 1},
		{Seq: 3, Kind: incremental.OpUpdate, ID: 0, URI: "urn:a", Source: 1,
			Attrs: []entity.Attribute{{Name: "name", Value: ""}}},
		{Seq: 4, Kind: incremental.OpDelete, ID: 0},
		{Seq: 1 << 40, Kind: incremental.OpUpdate, Advance: true, ID: 1 << 30},
		{Seq: 5, Kind: incremental.OpInsert, URI: strings.Repeat("é", 300), Attrs: nil},
	}
}

func TestOpCodecRoundTrip(t *testing.T) {
	for _, op := range sampleOps() {
		got, err := decodeOp(encodeOp(nil, op))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", op, err)
		}
		if !reflect.DeepEqual(got, op) {
			t.Fatalf("round trip changed the op:\nsent %+v\ngot  %+v", op, got)
		}
	}
}

func TestAckCodecRoundTrip(t *testing.T) {
	for _, ack := range []Ack{
		{},
		{Seq: 7, Comparisons: 123},
		{Seq: 1 << 50, Comparisons: 1<<62 - 1, Neighbors: []entity.ID{0, 3, 1 << 20}},
	} {
		got, err := decodeAck(encodeAck(nil, ack))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", ack, err)
		}
		if !reflect.DeepEqual(got, ack) {
			t.Fatalf("round trip changed the ack:\nsent %+v\ngot  %+v", ack, got)
		}
	}
}

func TestOpCodecRejects(t *testing.T) {
	valid := encodeOp(nil, sampleOps()[0])
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": valid[:2],
		"truncated attrs":  valid[:len(valid)-3],
		"trailing bytes":   append(append([]byte{}, valid...), 0),
		"hostile count":    {1, byte(incremental.OpInsert), 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, data := range cases {
		if _, err := decodeOp(data); err == nil {
			t.Errorf("%s: corrupt op record accepted", name)
		}
	}
	// Unknown kinds and flags are refused even when well-formed.
	bad := encodeOp(nil, incremental.RoutedOp{Seq: 1, Kind: 99, ID: 0})
	if _, err := decodeOp(bad); err == nil {
		t.Error("unknown op kind accepted")
	}
	// The flags byte sits right after the 1-byte seq varint and the kind.
	flagged := append([]byte{}, valid...)
	flagged[2] |= 0x80
	if _, err := decodeOp(flagged); err == nil {
		t.Error("unknown flag bits accepted")
	}
}

func TestFrameBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameOp, make([]byte, maxFramePayload+1)); err == nil {
		t.Fatal("oversized frame written")
	}
	if err := writeFrame(&buf, frameOp, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil || typ != frameOp || string(payload) != "ok" {
		t.Fatalf("round trip: typ=%d payload=%q err=%v", typ, payload, err)
	}
}

// FuzzFrame drives arbitrary bytes through the frame reader (mirroring the
// WAL's FuzzSegmentRecords): it must never panic or over-allocate, and any
// frame it accepts must re-encode to bytes it accepts again identically.
func FuzzFrame(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(frame(frameHello, []byte(`{"shards":2}`)))
	f.Add(frame(frameOp, encodeOp(nil, incremental.RoutedOp{Seq: 1, Kind: incremental.OpInsert})))
	f.Add(frame(frameBatch, encodeBatch(nil, sampleOps()[:2])))
	f.Add(frame(frameErr, []byte("refused")))
	// Torn header, torn payload, unknown type, hostile length.
	f.Add([]byte{byte(frameOp), 0, 0})
	f.Add([]byte{byte(frameOp), 0, 0, 0, 9, 'x', 'y'})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{99, 0, 0, 0, 1, 'x'})
	f.Add([]byte{byte(frameAck), 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if typ < frameHello || typ > frameBatchAck {
			t.Fatalf("accepted frame type %d", typ)
		}
		if len(payload) > maxFramePayload {
			t.Fatalf("accepted %d-byte payload", len(payload))
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		typ2, payload2, err := readFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame not re-read identically: typ %d->%d err %v", typ, typ2, err)
		}
	})
}

// FuzzOpCodec drives arbitrary bytes through the hot-path op decoder: never
// a panic, never an accepted record that fails to round-trip bit-exactly.
func FuzzOpCodec(f *testing.F) {
	for _, op := range sampleOps() {
		f.Add(encodeOp(nil, op))
	}
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{1, 1, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, err := decodeOp(data)
		if err != nil {
			return
		}
		enc := encodeOp(nil, op)
		again, err := decodeOp(enc)
		if err != nil {
			t.Fatalf("re-decoding accepted op: %v", err)
		}
		if !reflect.DeepEqual(again, op) {
			t.Fatalf("op not re-decoded identically:\nfirst  %+v\nsecond %+v", op, again)
		}
	})
}

// FuzzAckCodec does the same for acknowledgements.
func FuzzAckCodec(f *testing.F) {
	f.Add(encodeAck(nil, Ack{Seq: 3, Comparisons: 9, Neighbors: []entity.ID{1, 2}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		ack, err := decodeAck(data)
		if err != nil {
			return
		}
		again, err := decodeAck(encodeAck(nil, ack))
		if err != nil || !reflect.DeepEqual(again, ack) {
			t.Fatalf("ack not re-decoded identically: %+v vs %+v (%v)", ack, again, err)
		}
	})
}
