package transport_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/sharded"
	"entityres/internal/transport"
)

// Fault-injection coverage of the client's retry discipline: transport
// failures (dial errors, connections that die mid-round-trip, servers that
// never answer) are retried over fresh connections within the attempt
// budget and surface as transport errors past it; semantic refusals are
// never retried; and a re-delivered operation — applied once, ack lost —
// is acknowledged idempotently, not applied twice.

func testShardCfg() sharded.Config {
	return sharded.Config{
		Kind:    entity.Dirty,
		Blocker: &blocking.TokenBlocking{},
		Matcher: &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5},
		Shards:  1,
	}
}

// startTestServer boots a single in-memory shard server on a real listener.
func startTestServer(t *testing.T) (*transport.ShardServer, string) {
	t.Helper()
	srv, err := transport.NewShardServer("", testShardCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

func testExpect() transport.Hello {
	return transport.Expectation(testShardCfg(), 0)
}

func testOp(seq uint64, id entity.ID) incremental.RoutedOp {
	return incremental.RoutedOp{
		Seq: seq, Kind: incremental.OpInsert, ID: id,
		URI: fmt.Sprintf("urn:op-%d", seq), Source: 0,
		Attrs: []entity.Attribute{{Name: "name", Value: "alice smith"}},
	}
}

// dropConn injects read failures: after failures is exhausted the wrapped
// connection behaves normally.
type dropConn struct {
	net.Conn
	fail *atomic.Int32
}

func (c *dropConn) Read(p []byte) (int, error) {
	if c.fail.Add(-1) >= 0 {
		c.Conn.Close()
		return 0, errors.New("injected read failure")
	}
	return c.Conn.Read(p)
}

func TestClientRetriesTransportFailures(t *testing.T) {
	t.Parallel()
	_, addr := startTestServer(t)
	var dialFails atomic.Int32
	dialFails.Store(1)
	var dials atomic.Int32
	dial := func(ctx context.Context, a string) (net.Conn, error) {
		dials.Add(1)
		if dialFails.Add(-1) >= 0 {
			return nil, errors.New("injected dial failure")
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", a)
	}
	c := transport.NewShardClient(addr, testExpect(), transport.ClientOptions{
		Timeout: 2 * time.Second, Attempts: 3, Dial: dial,
	})
	defer c.Close()
	if _, err := c.ApplyOp(context.Background(), testOp(1, 0)); err != nil {
		t.Fatalf("op failed despite retry budget: %v", err)
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("dialed %d times, want 2 (one failure, one success)", n)
	}
}

// TestClientIdempotentRedelivery kills the connection between the server's
// apply and the client's read of the ack: the retry re-delivers the same
// sequence number, the shard acknowledges WITHOUT re-applying, and the
// resolver holds the operation exactly once.
func TestClientIdempotentRedelivery(t *testing.T) {
	t.Parallel()
	srv, addr := startTestServer(t)
	var fail atomic.Int32
	dial := func(ctx context.Context, a string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", a)
		if err != nil {
			return nil, err
		}
		return &dropConn{Conn: conn, fail: &fail}, nil
	}
	c := transport.NewShardClient(addr, testExpect(), transport.ClientOptions{
		Timeout: 2 * time.Second, Attempts: 3, Dial: dial,
	})
	defer c.Close()
	ctx := context.Background()
	if _, err := c.ApplyOp(ctx, testOp(1, 0)); err != nil {
		t.Fatal(err)
	}
	// The next round-trip's reply read fails AFTER the request was written:
	// the server applies op 2 and acks into a dead connection, and the
	// retry re-delivers seq 2 over a fresh handshake.
	fail.Store(1)
	if _, err := c.ApplyOp(ctx, testOp(2, 1)); err != nil {
		t.Fatalf("redelivery failed: %v", err)
	}
	st := srv.Resolver().Counters()
	if st.Inserts != 2 || st.Live != 2 {
		t.Fatalf("after redelivery: inserts=%d live=%d, want 2/2 (applied exactly once)", st.Inserts, st.Live)
	}
	if got := srv.Resolver().LastSeq(); got != 2 {
		t.Fatalf("shard at seq %d, want 2", got)
	}
}

// TestClientTimesOut points the client at a server that accepts and then
// never answers: every attempt must end at the deadline, not hang.
func TestClientTimesOut(t *testing.T) {
	t.Parallel()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, answer nothing
		}
	}()
	c := transport.NewShardClient(lis.Addr().String(), testExpect(), transport.ClientOptions{
		Timeout: 100 * time.Millisecond, Attempts: 2,
	})
	defer c.Close()
	start := time.Now()
	_, err = c.ApplyOp(context.Background(), testOp(1, 0))
	if err == nil {
		t.Fatal("op succeeded against a mute server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("attempts took %v — deadlines are not bounding the round-trip", elapsed)
	}
}

// TestClientDoesNotRetryRefusals asserts a semantic refusal surfaces as a
// RemoteError after ONE attempt — re-sending a request the shard rejected
// cannot help, and retries would mask divergence.
func TestClientDoesNotRetryRefusals(t *testing.T) {
	t.Parallel()
	_, addr := startTestServer(t)
	var dials atomic.Int32
	dial := func(ctx context.Context, a string) (net.Conn, error) {
		dials.Add(1)
		var d net.Dialer
		return d.DialContext(ctx, "tcp", a)
	}
	// Wrong identity: the handshake itself is refused.
	wrong := testExpect()
	wrong.Shards = 9
	c := transport.NewShardClient(addr, wrong, transport.ClientOptions{
		Timeout: 2 * time.Second, Attempts: 3, Dial: dial,
	})
	defer c.Close()
	var rerr *transport.RemoteError
	if _, err := c.ApplyOp(context.Background(), testOp(1, 0)); !errors.As(err, &rerr) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("dialed %d times for a refusal, want 1", n)
	}

	// A sequence gap is refused by a healthy connection, again once.
	dials.Store(0)
	c2 := transport.NewShardClient(addr, testExpect(), transport.ClientOptions{
		Timeout: 2 * time.Second, Attempts: 3, Dial: dial,
	})
	defer c2.Close()
	if _, err := c2.ApplyOp(context.Background(), testOp(5, 4)); !errors.As(err, &rerr) {
		t.Fatalf("sequence gap: got %v, want RemoteError", err)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("dialed %d times for a refusal, want 1", n)
	}
}
