package transport_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
	"entityres/internal/transport"
)

// The networked differential property: a coordinator driving shard servers
// over real TCP connections — full payloads routed to key owners only,
// slot-advance records elsewhere — lands on bit-identical matches,
// comparison counts, blocks and restructured blocks as BOTH the in-process
// sharded resolver and the single-node streaming resolver, at every
// checkpoint of every op mix, while demonstrably delivering fewer full
// payloads than a replicating transport would.

// opMix weights the generator's choice between inserts, updates, deletes.
type opMix struct {
	name                   string
	insert, update, delete int
}

var opMixes = []opMix{
	{name: "insert-heavy", insert: 7, update: 2, delete: 1},
	{name: "churn", insert: 4, update: 3, delete: 3},
	{name: "delete-heavy", insert: 5, update: 1, delete: 4},
}

// pool generates the description universe an op stream draws from.
func pool(t *testing.T, kind entity.Kind, seed int64) []*entity.Description {
	t.Helper()
	var c *entity.Collection
	var err error
	if kind == entity.CleanClean {
		c, _, err = datagen.GenerateCleanClean(datagen.Config{Seed: seed, Entities: 60, DupRatio: 0.7})
	} else {
		c, _, err = datagen.GenerateDirty(datagen.Config{Seed: seed, Entities: 60, DupRatio: 0.7, MaxDuplicates: 2})
	}
	if err != nil {
		t.Fatal(err)
	}
	return c.All()
}

// mutate derives a deterministic attribute rewrite for an update.
func mutate(rng *rand.Rand, own, donor []entity.Attribute) []entity.Attribute {
	out := make([]entity.Attribute, 0, len(own))
	for _, a := range own {
		if rng.Intn(3) == 0 && len(donor) > 0 {
			d := donor[rng.Intn(len(donor))]
			out = append(out, entity.Attribute{Name: a.Name, Value: d.Value})
		} else {
			out = append(out, a)
		}
	}
	if len(donor) > 0 && rng.Intn(2) == 0 {
		out = append(out, donor[rng.Intn(len(donor))])
	}
	return out
}

// generateScript derives a deterministic URI-addressed op script honoring
// the mix.
func generateScript(t *testing.T, kind entity.Kind, seed int64, n int, mix opMix) []incremental.Op {
	t.Helper()
	descs := pool(t, kind, seed)
	rng := rand.New(rand.NewSource(seed * 104729))
	liveIdx := map[int]bool{}
	var liveList []int
	removeLive := func(pos int) {
		liveList[pos] = liveList[len(liveList)-1]
		liveList = liveList[:len(liveList)-1]
	}
	chooseOp := func() incremental.OpKind {
		if len(liveList) == 0 {
			return incremental.OpInsert
		}
		weights := [3]int{mix.insert, mix.update, mix.delete}
		if len(liveList) == len(descs) {
			weights[0] = 0
		}
		roll := rng.Intn(weights[0] + weights[1] + weights[2])
		if roll < weights[0] {
			return incremental.OpInsert
		}
		if roll < weights[0]+weights[1] {
			return incremental.OpUpdate
		}
		return incremental.OpDelete
	}
	ops := make([]incremental.Op, 0, n)
	for len(ops) < n {
		switch chooseOp() {
		case incremental.OpInsert:
			pi := rng.Intn(len(descs))
			if liveIdx[pi] {
				continue
			}
			ops = append(ops, incremental.Op{
				Kind: incremental.OpInsert, URI: descs[pi].URI,
				Source: descs[pi].Source, Attrs: descs[pi].Attrs,
			})
			liveIdx[pi] = true
			liveList = append(liveList, pi)
		case incremental.OpUpdate:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			donor := descs[rng.Intn(len(descs))]
			ops = append(ops, incremental.Op{
				Kind: incremental.OpUpdate, URI: descs[pi].URI,
				Attrs: mutate(rng, descs[pi].Attrs, donor.Attrs),
			})
		default:
			pos := rng.Intn(len(liveList))
			pi := liveList[pos]
			ops = append(ops, incremental.Op{Kind: incremental.OpDelete, URI: descs[pi].URI})
			delete(liveIdx, pi)
			removeLive(pos)
		}
	}
	return ops
}

// renderState renders a match set and its clusters deterministically.
func renderState(m *entity.Matches) string {
	ps := m.Pairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	return fmt.Sprintf("matches=%v\nclusters=%v\n", ps, m.Clusters())
}

// renderBlocks renders a block collection byte-exactly.
func renderBlocks(bs *blocking.Blocks) string {
	if bs == nil {
		return "<nil>"
	}
	var b strings.Builder
	for _, bl := range bs.All() {
		fmt.Fprintf(&b, "%s|%v|%v\n", bl.Key, bl.S0, bl.S1)
	}
	return b.String()
}

// addrBook maps stable shard names to the listener address currently
// serving that shard, so a restarted server (new ephemeral port) is
// reachable through the coordinator's unchanged address list.
type addrBook struct{ m sync.Map }

func (b *addrBook) set(name, addr string) { b.m.Store(name, addr) }

func (b *addrBook) dial(ctx context.Context, name string) (net.Conn, error) {
	v, ok := b.m.Load(name)
	if !ok {
		return nil, fmt.Errorf("no server registered for %q", name)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", v.(string))
}

// cluster is a set of shard servers on real TCP listeners plus the
// coordinator-side wiring to reach them.
type cluster struct {
	t       *testing.T
	cfg     sharded.Config
	book    *addrBook
	names   []string
	servers []*transport.ShardServer
	dirs    []string
}

// startCluster boots one shard server per shard. dirs[i] == "" runs shard i
// in memory; otherwise it opens durably under dirs[i].
func startCluster(t *testing.T, cfg sharded.Config, dirs []string) *cluster {
	t.Helper()
	c := &cluster{t: t, cfg: cfg, book: &addrBook{}, dirs: dirs,
		servers: make([]*transport.ShardServer, len(dirs))}
	for i := range dirs {
		c.names = append(c.names, fmt.Sprintf("shard-%d", i))
		c.startShard(i)
	}
	t.Cleanup(func() {
		for _, s := range c.servers {
			if s != nil {
				s.Close()
			}
		}
	})
	return c
}

// startShard (re)opens shard i's server on a fresh listener and registers
// its address.
func (c *cluster) startShard(i int) {
	c.t.Helper()
	srv, err := transport.NewShardServer(c.dirs[i], c.cfg, i)
	if err != nil {
		c.t.Fatalf("shard %d: %v", i, err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.t.Fatal(err)
	}
	c.book.set(c.names[i], lis.Addr().String())
	c.servers[i] = srv
	go srv.Serve(lis)
}

func (c *cluster) opts() transport.ClientOptions {
	return transport.ClientOptions{Timeout: 5 * time.Second, Attempts: 2, Dial: c.book.dial}
}

// open connects a coordinator to the cluster (dir "" = in-memory journal).
func (c *cluster) open(ctx context.Context, dir string) (*transport.Coordinator, error) {
	return transport.OpenCoordinator(ctx, dir, c.cfg, c.names, c.opts())
}

// assertCoordinatorEquals compares every acceptance observable of the
// networked coordinator against a reference resolver, bit for bit.
func assertCoordinatorEquals(t *testing.T, co *transport.Coordinator, ref interface {
	Stats() (incremental.Stats, error)
	Matches() (*entity.Matches, error)
	Blocks() *blocking.Blocks
	RestructuredBlocks() (*blocking.Blocks, error)
}, refName string, meta bool, step int) {
	t.Helper()
	if gs, ws := mustStats(t, co), mustStats(t, ref); gs != ws {
		t.Fatalf("step %d: stats diverge:\nnetworked %+v\n%-9s %+v", step, gs, refName, ws)
	}
	if g, w := renderState(mustMatches(t, co)), renderState(mustMatches(t, ref)); g != w {
		t.Fatalf("step %d: match state diverges:\nnetworked\n%s\n%s\n%s", step, g, refName, w)
	}
	if g, w := renderBlocks(co.Blocks()), renderBlocks(ref.Blocks()); g != w {
		t.Fatalf("step %d: blocks diverge:\nnetworked\n%s\n%s\n%s", step, g, refName, w)
	}
	if meta {
		if g, w := renderBlocks(mustRestructuredBlocks(t, co)), renderBlocks(mustRestructuredBlocks(t, ref)); g != w {
			t.Fatalf("step %d: restructured blocks diverge:\nnetworked\n%s\n%s\n%s", step, g, refName, w)
		}
	}
}

// transportDiffConfig is one networked differential scenario.
type transportDiffConfig struct {
	kind    entity.Kind
	blocker blocking.StreamableBlocker
	meta    *metablocking.MetaBlocker
	workers int
	shards  int
	seed    int64
	ops     int
	mix     opMix
}

func (dc transportDiffConfig) String() string {
	s := fmt.Sprintf("%s/%s/n%d/w%d/%s/seed%d", dc.kind, dc.blocker.Name(), dc.shards, dc.workers, dc.mix.name, dc.seed)
	if dc.meta != nil {
		s += "/" + dc.meta.Name()
	}
	return s
}

// runTransportDifferential drives one scenario: the same op script through
// the single-node resolver, the in-process sharded resolver and the
// networked deployment, with lockstep reads and checkpoints.
func runTransportDifferential(t *testing.T, dc transportDiffConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, dc.kind, dc.seed, dc.ops, dc.mix)
	cfg := sharded.Config{
		Kind: dc.kind, Blocker: dc.blocker, Matcher: matcher,
		Workers: dc.workers, Meta: dc.meta, Shards: dc.shards,
	}
	single, err := incremental.New(incremental.Config{
		Kind: dc.kind, Blocker: dc.blocker, Matcher: matcher, Workers: dc.workers, Meta: dc.meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := sharded.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := startCluster(t, cfg, make([]string, dc.shards))
	ctx := context.Background()
	co, err := cl.open(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	for i, op := range script {
		for name, r := range map[string]interface {
			Apply(context.Context, incremental.Op) error
		}{"single-node": single, "in-process": inproc, "networked": co} {
			if err := r.Apply(ctx, op); err != nil {
				t.Fatalf("op %d (%s %s): %s: %v", i, op.Kind, op.URI, name, err)
			}
		}
		if (i+1)%50 == 0 || i+1 == len(script) {
			assertCoordinatorEquals(t, co, single, "single-node", dc.meta != nil, i+1)
			assertCoordinatorEquals(t, co, inproc, "in-process", dc.meta != nil, i+1)
		}
	}
	// The routing must be real: every operation reached every shard (so the
	// slot spaces stayed aligned), but strictly fewer than ops×shards full
	// payloads crossed the wire when there is more than one shard.
	ts := co.TransportStats()
	total := int64(dc.ops) * int64(dc.shards)
	if ts.FullOps+ts.AdvanceOps != total {
		t.Fatalf("delivery counters: full=%d advance=%d, want total %d", ts.FullOps, ts.AdvanceOps, total)
	}
	if dc.shards > 1 {
		if ts.FullOps >= total {
			t.Fatalf("routing sent %d full payloads for %d op-deliveries — it is replicating, not routing", ts.FullOps, total)
		}
		if ts.AdvanceOps == 0 {
			t.Fatalf("routing never sent a slot-advance record across %d ops × %d shards", dc.ops, dc.shards)
		}
	}
	if len(ts.Down) != 0 {
		t.Fatalf("shards down after a clean run: %v", ts.Down)
	}
}

// TestTransportDifferential is the acceptance matrix: op scripts replayed
// through real TCP deployments at several shard counts, bit-exact against
// both in-process deployment forms.
func TestTransportDifferential(t *testing.T) {
	var configs []transportDiffConfig
	for si, n := range []int{1, 2, 4, 7} {
		configs = append(configs, transportDiffConfig{
			kind: entity.Dirty, blocker: &blocking.TokenBlocking{},
			workers: 4, shards: n, seed: int64(201 + si), ops: 200, mix: opMixes[si%len(opMixes)],
		})
	}
	configs = append(configs,
		transportDiffConfig{
			kind: entity.CleanClean, blocker: &blocking.TokenBlocking{},
			workers: 4, shards: 4, seed: 205, ops: 160, mix: opMixes[1],
		},
		transportDiffConfig{
			kind: entity.Dirty, blocker: &blocking.StandardBlocking{},
			workers: 2, shards: 3, seed: 206, ops: 160, mix: opMixes[2],
		},
	)
	for _, dc := range configs {
		dc := dc
		t.Run(dc.String(), func(t *testing.T) {
			if testing.Short() && dc.shards > 2 {
				t.Skip("short mode runs small shard counts only")
			}
			t.Parallel()
			runTransportDifferential(t, dc)
		})
	}
}

// TestTransportDifferentialMetaBlocking extends the matrix to deferred
// meta-blocking: shards defer all matching, the coordinator's replica
// reconciles the full weighted graph locally, and matches, comparison
// counts AND restructured blocks must stay bit-exact.
func TestTransportDifferentialMetaBlocking(t *testing.T) {
	metas := []*metablocking.MetaBlocker{
		{Weight: metablocking.CBS, Prune: metablocking.WEP},
		{Weight: metablocking.ECBS, Prune: metablocking.WNP},
	}
	var configs []transportDiffConfig
	for mi, meta := range metas {
		for _, n := range []int{2, 5} {
			configs = append(configs, transportDiffConfig{
				kind: entity.Dirty, blocker: &blocking.TokenBlocking{}, meta: meta,
				workers: 4, shards: n, seed: int64(221 + mi), ops: 140, mix: opMixes[mi%len(opMixes)],
			})
		}
	}
	for _, dc := range configs {
		dc := dc
		t.Run(dc.String(), func(t *testing.T) {
			if testing.Short() && dc.shards > 2 {
				t.Skip("short mode runs small shard counts only")
			}
			t.Parallel()
			runTransportDifferential(t, dc)
		})
	}
}
