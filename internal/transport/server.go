// ShardServer: one shard of the networked deployment, serving its slice of
// the routed op stream over the frame protocol. The server wraps a plain
// incremental.Resolver opened with sharded.Config.NodeConfig — byte-for-
// byte the configuration the in-process coordinator gives shard i — so a
// shard directory written by either deployment form recovers under the
// other, and the resolver's own WAL provides the idempotent-replay half of
// the ack/retry protocol (ApplyRouted acknowledges seq <= LastSeq without
// re-applying).
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/sharded"
)

// ShardServer serves one shard's resolver over the wire protocol.
type ShardServer struct {
	cfg   sharded.Config
	index int
	res   *incremental.Resolver

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShardServer opens shard index's resolver — durable under dir, fully
// in-memory when dir is empty — configured exactly as the in-process
// coordinator would configure it.
func NewShardServer(dir string, cfg sharded.Config, index int) (*ShardServer, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("transport: shard index %d out of range for %d shards", index, shards)
	}
	node := cfg.NodeConfig(index)
	var res *incremental.Resolver
	var err error
	if dir == "" {
		res, err = incremental.New(node)
	} else {
		res, err = incremental.OpenResolver(dir, node)
	}
	if err != nil {
		return nil, err
	}
	return &ShardServer{
		cfg:   cfg,
		index: index,
		res:   res,
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Resolver exposes the underlying shard resolver — the differential suites
// compare its state against the in-process deployment's shards.
func (s *ShardServer) Resolver() *incremental.Resolver { return s.res }

// Serve accepts connections on lis until Close. Each connection is handled
// on its own goroutine; the resolver serializes operations internally.
func (s *ShardServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("transport: shard server is closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Close stops accepting, tears down connections (an in-flight operation
// finishes its journaled apply first — the resolver holds its own lock) and
// seals the shard's journal.
func (s *ShardServer) Close() error {
	s.teardown()
	s.wg.Wait()
	return s.res.Close()
}

// Abandon is Close without the graceful half: the listener and connections
// drop, and the resolver abandons its WAL handles without sealing — the
// in-process crash of the chaos suites.
func (s *ShardServer) Abandon() {
	s.teardown()
	s.wg.Wait()
	s.res.Abandon()
}

func (s *ShardServer) teardown() {
	s.mu.Lock()
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// handle runs one connection's request loop. A transport error (torn frame,
// closed conn) ends the loop; a semantic refusal is reported as a frameErr
// reply and the loop continues — the client decides what it means.
func (s *ShardServer) handle(conn net.Conn) {
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		var rtyp byte
		var reply []byte
		switch typ {
		case frameHello:
			rtyp, reply, err = s.hello(payload)
		case frameOp:
			rtyp, reply, err = s.applyOp(payload)
		case frameBatch:
			rtyp, reply, err = s.applyBatch(payload)
		case frameBootstrap:
			rtyp, reply, err = s.bootstrap(payload)
		case frameState:
			rtyp, reply = s.state()
		default:
			err = fmt.Errorf("transport: shard does not answer frame type %d", typ)
		}
		if err != nil {
			rtyp, reply = frameErr, []byte(err.Error())
		}
		if werr := writeFrame(conn, rtyp, reply); werr != nil {
			return
		}
	}
}

// hello verifies the client's deployment expectation against this shard's
// own configuration and answers with the durable stream position.
func (s *ShardServer) hello(payload []byte) (byte, []byte, error) {
	var h Hello
	if err := unmarshalJSON(payload, &h); err != nil {
		return 0, nil, err
	}
	shards := s.cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if h.Shards != shards || h.Index != s.index {
		return 0, nil, fmt.Errorf("transport: connection expects shard %d/%d, this server is shard %d/%d", h.Index, h.Shards, s.index, shards)
	}
	if h.Kind != int(s.cfg.Kind) || h.Meta != (s.cfg.Meta != nil) {
		return 0, nil, fmt.Errorf("transport: connection expects kind=%d meta=%t, this server runs kind=%d meta=%t", h.Kind, h.Meta, s.cfg.Kind, s.cfg.Meta != nil)
	}
	c := s.res.Counters()
	reply := Hello{
		Shards: shards, Index: s.index, Kind: int(s.cfg.Kind), Meta: s.cfg.Meta != nil,
		LastSeq: s.res.LastSeq(),
		Inserts: c.Inserts, Updates: c.Updates, Deletes: c.Deletes, Comparisons: c.Comparisons,
	}
	return frameHelloOK, marshalJSON(reply), nil
}

// applyOp applies one routed operation and acknowledges with the shard's
// cumulative comparison counter and the operation target's current match
// neighbors. Re-delivery of an acknowledged sequence number re-acks
// without re-applying (the resolver enforces idempotency below the wire).
func (s *ShardServer) applyOp(payload []byte) (byte, []byte, error) {
	op, err := decodeOp(payload)
	if err != nil {
		return 0, nil, err
	}
	if err := s.res.ApplyRouted(context.Background(), op); err != nil {
		return 0, nil, err
	}
	ack := Ack{Seq: op.Seq, Comparisons: s.res.Counters().Comparisons}
	// Meta deployments defer all matching to the coordinator's reconcile;
	// the shard match graph is empty by design and must never be asked to
	// reconcile locally.
	if s.cfg.Meta == nil {
		ack.Neighbors = s.res.MatchNeighbors(op.ID)
	}
	return frameAck, encodeAck(nil, ack), nil
}

// applyBatch applies a pipelined batch of routed operations in stream order
// and acknowledges the whole frame once: the final sequence number, the
// cumulative comparison counter, and — per operation — the target's match
// neighbors AS OF that operation, so the coordinator can fold the batch
// exactly as it would N lockstep acknowledgements. The shard journals each
// operation individually (ApplyRouted), so a re-delivered frame re-acks its
// already-applied prefix idempotently and resumes mid-batch; only round
// trips collapse, not the shard's durability granularity.
func (s *ShardServer) applyBatch(payload []byte) (byte, []byte, error) {
	ops, err := decodeBatch(payload)
	if err != nil {
		return 0, nil, err
	}
	ack := BatchAck{Neighbors: make([][]entity.ID, len(ops))}
	for i, op := range ops {
		if err := s.res.ApplyRouted(context.Background(), op); err != nil {
			return 0, nil, fmt.Errorf("batch operation %d (seq %d): %w", i, op.Seq, err)
		}
		if s.cfg.Meta == nil {
			ack.Neighbors[i] = s.res.MatchNeighbors(op.ID)
		}
	}
	ack.Seq = ops[len(ops)-1].Seq
	ack.Comparisons = s.res.Counters().Comparisons
	return frameBatchAck, encodeBatchAck(nil, ack), nil
}

// bootstrap restores a shipped state into the (pristine) resolver. A
// re-delivered transfer — the first succeeded but its ack was lost — is
// acknowledged again when the resolver is already exactly at the shipped
// sequence number.
func (s *ShardServer) bootstrap(payload []byte) (byte, []byte, error) {
	bs, err := decodeBootstrap(payload)
	if err != nil {
		return 0, nil, err
	}
	if s.res.LastSeq() == bs.Seq && bs.Seq > 0 {
		return frameBootstrapOK, nil, nil
	}
	if err := s.res.Bootstrap(bs); err != nil {
		return 0, nil, err
	}
	return frameBootstrapOK, nil, nil
}

// state answers with counters, stream position and the full match edge set.
func (s *ShardServer) state() (byte, []byte) {
	c := s.res.Counters()
	st := stateJSON{
		LastSeq: s.res.LastSeq(),
		Inserts: c.Inserts, Updates: c.Updates, Deletes: c.Deletes, Comparisons: c.Comparisons,
	}
	if s.cfg.Meta == nil {
		for _, e := range s.res.MatchEdges() {
			st.Edges = append(st.Edges, edgeJSON{A: e.A, B: e.B})
		}
	}
	return frameStateOK, marshalJSON(st)
}
