// Package transport is the wire protocol of the networked deployment: a
// coordinator process streams ROUTED operations to shard-server processes
// over length-prefixed frames, with shard-side acknowledgement, bounded
// retry, idempotent replay keyed on the WAL sequence numbers, and snapshot
// shipping so a remote shard bootstraps from a wal.Snapshot blob instead of
// a shared filesystem.
//
// Routing is the traffic win over the in-process coordinator's replication:
// each operation's full payload travels only to the shards owning one of
// its blocking keys (sharded.KeyOwner over the key set — the key→shard
// directory of the hash partition); every other shard receives a compact
// slot-advance record that keeps its handle space and operation counters
// aligned. The differential contract survives bit for bit because a
// non-owning shard under replication indexes, matches and counts nothing
// for the operation anyway — see internal/incremental/routed.go.
//
// The frame layer below everything is deliberately dumb: one byte of
// message type, four bytes of big-endian payload length, payload. The
// per-operation hot path (frameOp, frameAck) is encoded with the
// hand-rolled binary codec in codec.go — no reflection, no interface
// dispatch per field; the control plane (hello, bootstrap, state) rides
// JSON, where clarity beats nanoseconds.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"entityres/internal/wal"
)

// Frame types. The zero value is invalid so a torn or zeroed header never
// parses as a legitimate frame.
const (
	// frameHello opens a connection: the client's identity expectation
	// (helloJSON). frameHelloOK answers with the server's identity and
	// durable stream position.
	frameHello byte = 1 + iota
	frameHelloOK
	// frameOp carries one routed operation (binary codec); frameAck its
	// acknowledgement.
	frameOp
	frameAck
	// frameErr carries a UTF-8 error message answering any request. It
	// signals a SEMANTIC refusal — the request was delivered and rejected —
	// never a transport failure.
	frameErr
	// frameBootstrap ships a full shard state as a wal.Snapshot blob;
	// frameBootstrapOK acknowledges the restore.
	frameBootstrap
	frameBootstrapOK
	// frameState requests the shard's counters and match edges (stateJSON);
	// frameStateOK answers.
	frameState
	frameStateOK
	// frameBatch pipelines a whole batch of routed operations in one round
	// trip (count-prefixed binary codec); frameBatchAck answers with one
	// cumulative acknowledgement carrying the final sequence number, the
	// cumulative comparison counter and the per-operation neighbor feed.
	frameBatch
	frameBatchAck
)

// frameHeaderBytes is the fixed frame header: type byte + length.
const frameHeaderBytes = 1 + 4

// maxFramePayload bounds a frame's payload. It matches the WAL's record
// bound: anything a shard can journal fits a frame, and a corrupt length
// field cannot demand a multi-gigabyte allocation.
const maxFramePayload = wal.MaxRecordBytes

// writeFrame writes one frame as a single Write call, so a concurrent
// writer bug can never interleave a header into another frame's payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("transport: frame payload of %d bytes exceeds the %d-byte bound", len(payload), maxFramePayload)
	}
	buf := make([]byte, frameHeaderBytes+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[frameHeaderBytes:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, validating the type and length fields before
// allocating for the payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ := hdr[0]
	if typ < frameHello || typ > frameBatchAck {
		return 0, nil, fmt.Errorf("transport: unknown frame type %d", typ)
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("transport: frame claims %d payload bytes, bound is %d", n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}
