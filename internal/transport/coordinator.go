// The networked coordinator: the client side of the routed op stream.
//
// The coordinator keeps a FULL local replica of the stream — a plain
// incremental.Resolver over the unpartitioned blocker — and that replica's
// WAL is the coordinator journal: every accepted operation is journaled and
// applied locally BEFORE it is fanned out, so a coordinator restart
// replays its own log back to exactly the acknowledged stream (operation
// counters, slot space, URI table, block index and, under meta-blocking,
// the decision cache and comparison counter — the journaled reconcile
// records re-earn it bit for bit).
//
// What the replica does NOT do is match (outside meta-blocking): its delta
// filter claims no candidate pair, so the matcher work — the expensive part
// — happens only on the shards, each evaluating exactly the pairs whose
// first shared blocking key it owns. Their acknowledgements stream the
// results back: the cumulative comparison counter and the operated-on
// description's current match neighbors, which the coordinator folds into
// its global match graph. Under meta-blocking the roles flip: shards defer
// all matching and the coordinator's replica reconciles the (full, local)
// weighted blocking graph itself — identical to the in-process
// coordinator's merged reconcile because the weight statistics are
// additive over the key partition.
//
// Delivery discipline: each operation travels in full only to the shards
// owning one of its blocking keys; the rest receive slot-advance records.
// A delivery failure marks the shard DOWN and the operation still counts —
// it is journaled locally and applied everywhere reachable — but further
// mutations are refused until RejoinShard, which closes the gap from the
// durable invariant that a non-wiped shard is always at seq or seq-1:
// nothing to do, one idempotent re-send, or a full bootstrap ship for a
// shard that lost its disk.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/incremental"
	"entityres/internal/sharded"
)

// ShardUnavailableError reports shards that could not be reached during a
// fan-out. The operation itself was accepted — journaled and applied on the
// coordinator and every reachable shard — and completes on the missing
// shards when they rejoin; until then further mutations are refused.
type ShardUnavailableError struct{ Shards []int }

func (e *ShardUnavailableError) Error() string {
	parts := make([]string, len(e.Shards))
	for i, s := range e.Shards {
		parts[i] = fmt.Sprint(s)
	}
	return fmt.Sprintf("transport: shard(s) %s unavailable; the operation is journaled and completes on rejoin", strings.Join(parts, ","))
}

// TransportStats are the coordinator's process-lifetime delivery counters —
// the routed-delivery evidence the test suites assert on.
type TransportStats struct {
	// FullOps counts full-payload deliveries, AdvanceOps slot-advance
	// deliveries. Under routing FullOps stays well below ops×shards; under
	// replication it would equal it.
	FullOps, AdvanceOps int64
	// Down lists the currently unavailable shards, ascending.
	Down []int
}

// Coordinator drives a networked deployment: local replica plus one
// ShardClient per shard. All methods are safe for concurrent use;
// operations are serialized and fanned out in parallel.
type Coordinator struct {
	cfg      sharded.Config
	shards   int
	rawKeyer blocking.KeyFunc

	// mu is a reader/writer lock: mutations and shard-state changes hold
	// it exclusively, read-only queries share it (the replica additionally
	// serializes on its own RWMutex, so meta-blocking reads that delegate
	// wholly to it never touch this lock at all).
	mu      sync.RWMutex
	rep     *incremental.Resolver
	clients []*ShardClient
	down    []bool
	// seq is the global stream position: the number of accepted operations.
	seq uint64
	// lastOps is the most recently journaled record's operations — one for
	// a single mutation, the whole batch for ApplyBatch — in full-payload
	// routed form, retained for the idempotent tail re-send a shard inside
	// the record's crash window needs.
	lastOps []incremental.RoutedOp
	// ackedSeq and shardComp mirror each shard's last acknowledgement:
	// stream position and cumulative matcher-invocation counter.
	ackedSeq  []uint64
	shardComp []int64
	// dyn is the global match graph, folded from shard acknowledgements
	// (nil under meta-blocking, where the replica reconciles it locally).
	dyn               *graph.Dynamic
	fullSent, advSent int64
	perf              incremental.PerfCounters
	broken            error
}

// OpenCoordinator connects a coordinator to its shard servers. dir is the
// coordinator's journal directory ("" for in-memory, tests only);
// len(addrs) is the shard count and must equal cfg.Shards when that is
// set. Every shard must be reachable: the open verifies each shard's
// stream position against the replayed journal, re-sends the one
// operation a crash may have torn off a shard, and refuses positions it
// cannot reconcile.
func OpenCoordinator(ctx context.Context, dir string, cfg sharded.Config, addrs []string, opts ClientOptions) (*Coordinator, error) {
	shards := len(addrs)
	if shards < 1 {
		return nil, fmt.Errorf("transport: a coordinator needs at least one shard address")
	}
	if cfg.Shards == 0 {
		cfg.Shards = shards
	}
	if cfg.Shards != shards {
		return nil, fmt.Errorf("transport: config names %d shards but %d addresses were given", cfg.Shards, shards)
	}
	repCfg := incremental.Config{
		Kind:    cfg.Kind,
		Blocker: cfg.Blocker,
		Matcher: cfg.Matcher,
		Workers: cfg.Workers,
		Meta:    cfg.Meta,
		Durable: cfg.Durable,
	}
	if cfg.Meta == nil {
		// The replica indexes everything and matches nothing: the claim
		// function yields every candidate pair to the shard owning its
		// first shared key. (With meta-blocking the filter stays nil — the
		// deferred path never delta-matches, and the reconcile must run the
		// exact single-node evaluation.)
		repCfg.DeltaFilter = func(*entity.Description) func(string, *entity.Description) bool {
			return func(string, *entity.Description) bool { return false }
		}
	}
	var rep *incremental.Resolver
	var err error
	if dir == "" {
		rep, err = incremental.New(repCfg)
	} else {
		rep, err = incremental.OpenResolver(dir, repCfg)
	}
	if err != nil {
		return nil, err
	}
	c := rep.Counters()
	r := &Coordinator{
		cfg:       cfg,
		shards:    shards,
		rawKeyer:  cfg.Blocker.StreamKeyer(),
		rep:       rep,
		down:      make([]bool, shards),
		ackedSeq:  make([]uint64, shards),
		shardComp: make([]int64, shards),
		seq:       uint64(c.Inserts + c.Updates + c.Deletes),
	}
	if cfg.Meta == nil {
		r.dyn = graph.NewDynamic()
	}
	if rec, ok := rep.LastRecord(); ok && r.seq > 0 {
		r.lastOps = r.routedTail(rec)
	}
	expect := Hello{Shards: shards, Kind: int(cfg.Kind), Meta: cfg.Meta != nil}
	for i, addr := range addrs {
		e := expect
		e.Index = i
		r.clients = append(r.clients, NewShardClient(addr, e, opts))
	}
	for i := range r.clients {
		r.down[i] = true
		if err := r.rejoinLocked(ctx, i); err != nil {
			rep.Close()
			return nil, fmt.Errorf("transport: connecting shard %d: %w", i, err)
		}
	}
	return r, nil
}

// routedFromRecord rebuilds the full-payload routed form of the replica's
// last journaled mutation — the re-send a shard at seq-1 is owed. An
// update record carries only the handle and attributes; identity comes
// from the replica (the handle is necessarily live: it was the last
// operation).
func (r *Coordinator) routedFromRecord(rec incremental.Record) (incremental.RoutedOp, bool) {
	op := incremental.RoutedOp{Seq: r.seq, Kind: rec.Kind, ID: rec.ID, URI: rec.URI, Source: rec.Source, Attrs: rec.Attrs}
	switch rec.Kind {
	case incremental.OpInsert, incremental.OpDelete:
		return op, true
	case incremental.OpUpdate:
		d, ok := r.rep.Get(rec.ID)
		if !ok {
			return incremental.RoutedOp{}, false
		}
		op.URI, op.Source, op.Attrs = d.URI, d.Source, d.Attrs
		return op, true
	default:
		return incremental.RoutedOp{}, false
	}
}

// routedTail rebuilds the routed forms of the replica's last journaled
// record — the re-send tail a shard inside the record's crash window is
// owed. A single mutation yields one op via routedFromRecord; an OpBatch
// record yields the whole batch verbatim: its update sub-records carry
// their identity inline (ApplyBatch enriches them at accept time), so the
// tail reconstructs even when a later sub-record deleted the handle.
// Returns nil when no tail can be rebuilt; rejoin then refuses gapped
// shards.
func (r *Coordinator) routedTail(rec incremental.Record) []incremental.RoutedOp {
	if rec.Kind != incremental.OpBatch {
		if op, ok := r.routedFromRecord(rec); ok {
			return []incremental.RoutedOp{op}
		}
		return nil
	}
	base := r.seq - uint64(len(rec.Batch))
	ops := make([]incremental.RoutedOp, 0, len(rec.Batch))
	for i, sub := range rec.Batch {
		switch sub.Kind {
		case incremental.OpInsert, incremental.OpUpdate, incremental.OpDelete:
		default:
			return nil
		}
		ops = append(ops, incremental.RoutedOp{Seq: base + uint64(i) + 1, Kind: sub.Kind, ID: sub.ID, URI: sub.URI, Source: sub.Source, Attrs: sub.Attrs})
	}
	return ops
}

// keysOf derives a description's distinct blocking key set with the raw
// (unpartitioned) keyer — the key→shard directory's domain.
func (r *Coordinator) keysOf(d *entity.Description) []string {
	return blocking.DistinctKeys(r.rawKeyer(d))
}

// ownersOf maps key sets to the shard set owning at least one of the keys.
func (r *Coordinator) ownersOf(keySets ...[]string) []bool {
	owners := make([]bool, r.shards)
	for _, keys := range keySets {
		for _, k := range keys {
			owners[sharded.KeyOwner(k, r.shards)] = true
		}
	}
	return owners
}

// ready refuses mutations while the coordinator is broken or a shard is
// down. Callers hold r.mu.
func (r *Coordinator) ready() error {
	if r.broken != nil {
		return r.broken
	}
	var down []int
	for i, d := range r.down {
		if d {
			down = append(down, i)
		}
	}
	if down != nil {
		return &ShardUnavailableError{Shards: down}
	}
	return nil
}

// Insert accepts a new description: journaled and applied on the replica,
// then routed — full payload to the shards owning one of its keys,
// slot-advance to the rest.
func (r *Coordinator) Insert(ctx context.Context, d *entity.Description) (entity.ID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return -1, err
	}
	id, err := r.rep.Insert(ctx, d)
	if err != nil {
		return -1, err
	}
	applied, _ := r.rep.Get(id)
	r.seq++
	op := incremental.RoutedOp{Seq: r.seq, Kind: incremental.OpInsert, ID: id, URI: applied.URI, Source: applied.Source, Attrs: applied.Attrs}
	r.lastOps = []incremental.RoutedOp{op}
	return id, r.fanout(ctx, op, r.ownersOf(r.keysOf(applied)))
}

// Update re-keys and re-resolves a live description. The full payload
// travels to the owners of the OLD keys (they must retire membership) and
// of the NEW keys (they must index it, materializing the slot if they only
// ever advanced past it).
func (r *Coordinator) Update(ctx context.Context, id entity.ID, attrs []entity.Attribute) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return err
	}
	old, ok := r.rep.Get(id)
	if !ok {
		return fmt.Errorf("transport: update of unknown description %d", id)
	}
	oldKeys := r.keysOf(old)
	if err := r.rep.Update(ctx, id, attrs); err != nil {
		return err
	}
	applied, _ := r.rep.Get(id)
	r.seq++
	op := incremental.RoutedOp{Seq: r.seq, Kind: incremental.OpUpdate, ID: id, URI: applied.URI, Source: applied.Source, Attrs: applied.Attrs}
	r.lastOps = []incremental.RoutedOp{op}
	if r.dyn != nil {
		// The old matches die with the old keys; the acknowledgements
		// below re-deliver the current ones.
		r.dyn.RemoveNode(id)
	}
	return r.fanout(ctx, op, r.ownersOf(oldKeys, r.keysOf(applied)))
}

// Delete removes a live description everywhere it is materialized.
func (r *Coordinator) Delete(ctx context.Context, id entity.ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return err
	}
	old, ok := r.rep.Get(id)
	if !ok {
		return fmt.Errorf("transport: delete of unknown description %d", id)
	}
	oldKeys := r.keysOf(old)
	if err := r.rep.Delete(id); err != nil {
		return err
	}
	r.seq++
	op := incremental.RoutedOp{Seq: r.seq, Kind: incremental.OpDelete, ID: id}
	r.lastOps = []incremental.RoutedOp{op}
	if r.dyn != nil {
		r.dyn.RemoveNode(id)
	}
	return r.fanout(ctx, op, r.ownersOf(oldKeys))
}

// ApplyBatch accepts a whole batch of insert, update and delete records as
// one sequential unit: validated up front, journaled and applied on the
// replica as ONE journal append, then delivered as ONE pipelined frame per
// shard — the amortized ingestion path. Per-operation routing is
// preserved inside the frame: each operation travels in full only to the
// shards owning one of its blocking keys and as a slot-advance record
// elsewhere, so the differential contract holds bit for bit against the
// lockstep per-op stream.
func (r *Coordinator) ApplyBatch(ctx context.Context, recs []incremental.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ready(); err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	err := incremental.PlanBatch(r.cfg.Kind, entity.ID(r.rep.Slots()),
		r.rep.Lookup,
		func(id entity.ID) bool { _, ok := r.rep.Get(id); return ok },
		func(id entity.ID) string {
			if d, ok := r.rep.Get(id); ok {
				return d.URI
			}
			return ""
		},
		recs)
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	// Build the routed forms and per-operation ownership BEFORE the replica
	// applies, while every pre-image is still readable: an update's full
	// payload must also reach the owners of its OLD keys, and its routed
	// form needs the description's identity. The overlay tracks descriptions
	// as the batch evolves them, so later records route against the state
	// their predecessors will have built.
	overlay := make(map[entity.ID]*entity.Description)
	desc := func(id entity.ID) (*entity.Description, bool) {
		if d, ok := overlay[id]; ok {
			return d, d != nil
		}
		return r.rep.Get(id)
	}
	ops := make([]incremental.RoutedOp, len(recs))
	owners := make([][]bool, len(recs))
	for i := range recs {
		rec := &recs[i]
		seq := r.seq + uint64(i) + 1
		switch rec.Kind {
		case incremental.OpInsert:
			d := &entity.Description{ID: rec.ID, URI: rec.URI, Source: rec.Source, Attrs: rec.Attrs}
			ops[i] = incremental.RoutedOp{Seq: seq, Kind: rec.Kind, ID: rec.ID, URI: rec.URI, Source: rec.Source, Attrs: rec.Attrs}
			owners[i] = r.ownersOf(r.keysOf(d))
			overlay[rec.ID] = d
		case incremental.OpUpdate:
			old, ok := desc(rec.ID)
			if !ok {
				return fmt.Errorf("transport: batch record %d updates dead handle %d after validation", i, rec.ID)
			}
			oldKeys := r.keysOf(old)
			next := &entity.Description{ID: rec.ID, URI: old.URI, Source: old.Source, Attrs: rec.Attrs}
			// Enrich the journaled record with the description's identity:
			// a restarted coordinator rebuilds the full routed form straight
			// from its last journal record (routedTail), even when a later
			// record in the same batch deletes the handle.
			rec.URI, rec.Source = old.URI, old.Source
			ops[i] = incremental.RoutedOp{Seq: seq, Kind: rec.Kind, ID: rec.ID, URI: old.URI, Source: old.Source, Attrs: rec.Attrs}
			owners[i] = r.ownersOf(oldKeys, r.keysOf(next))
			overlay[rec.ID] = next
		case incremental.OpDelete:
			old, ok := desc(rec.ID)
			if !ok {
				return fmt.Errorf("transport: batch record %d deletes dead handle %d after validation", i, rec.ID)
			}
			ops[i] = incremental.RoutedOp{Seq: seq, Kind: rec.Kind, ID: rec.ID}
			owners[i] = r.ownersOf(r.keysOf(old))
			overlay[rec.ID] = nil
		}
	}
	if err := r.rep.ApplyBatch(ctx, recs); err != nil {
		return err
	}
	r.seq += uint64(len(recs))
	r.lastOps = ops
	return r.fanoutBatch(ctx, ops, owners)
}

// fanoutBatch delivers an accepted batch to every shard as one frame each —
// full payload where the shard owns one of the operation's keys,
// slot-advance elsewhere — and folds the cumulative acknowledgements in
// operation order, reproducing exactly what N lockstep per-op fan-outs
// would have built. Callers hold r.mu.
func (r *Coordinator) fanoutBatch(ctx context.Context, ops []incremental.RoutedOp, owners [][]bool) error {
	r.perf.FanOuts++
	r.perf.TransportRoundTrips += int64(r.shards)
	frames := make([][]incremental.RoutedOp, r.shards)
	for j := 0; j < r.shards; j++ {
		frame := make([]incremental.RoutedOp, len(ops))
		for i, op := range ops {
			if owners[i][j] {
				frame[i] = op
				r.fullSent++
			} else {
				frame[i] = incremental.RoutedOp{Seq: op.Seq, Kind: op.Kind, Advance: true, ID: op.ID}
				r.advSent++
			}
		}
		frames[j] = frame
	}
	type result struct {
		ack BatchAck
		err error
	}
	results := make([]result, r.shards)
	var wg sync.WaitGroup
	for j := 0; j < r.shards; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ack, err := r.clients[j].ApplyBatch(ctx, frames[j])
			results[j] = result{ack: ack, err: err}
		}(j)
	}
	wg.Wait()
	var downed []int
	for j, res := range results {
		if res.err != nil {
			var rerr *RemoteError
			if errors.As(res.err, &rerr) {
				r.broken = fmt.Errorf("transport: shard %d refused the batch ending at operation %d — the deployment has diverged: %w", j, ops[len(ops)-1].Seq, res.err)
				return r.broken
			}
			r.down[j] = true
			downed = append(downed, j)
			continue
		}
		r.ackedSeq[j] = res.ack.Seq
		r.shardComp[j] = res.ack.Comparisons
	}
	if r.dyn != nil {
		// Fold in operation order: an update or delete first retires the
		// handle's edges UNCONDITIONALLY — the replica applied the whole
		// batch even where no shard acknowledged — then each acknowledging
		// shard's at-time neighbor list re-adds the operation's matches.
		// The interleaving is what makes a re-delivered frame safe: a
		// re-acked prefix operation may report final-state neighbors, but
		// any such edge that a later operation retires is removed again at
		// that operation's position and re-added from its accurate list.
		for i, op := range ops {
			if op.Kind == incremental.OpUpdate || op.Kind == incremental.OpDelete {
				r.dyn.RemoveNode(op.ID)
			}
			if op.Kind == incremental.OpDelete {
				continue
			}
			for j := range results {
				if results[j].err != nil {
					continue
				}
				for _, nb := range results[j].ack.Neighbors[i] {
					r.dyn.AddEdge(op.ID, nb, 1)
				}
			}
		}
	}
	if downed != nil {
		return &ShardUnavailableError{Shards: downed}
	}
	return nil
}

// fanout delivers operation op to every shard in parallel — full payload
// where owners[i], slot-advance elsewhere — and folds the
// acknowledgements. Unreachable shards are marked down; a semantic refusal
// breaks the coordinator (the states have diverged and nothing local can
// mend that). Callers hold r.mu.
func (r *Coordinator) fanout(ctx context.Context, op incremental.RoutedOp, owners []bool) error {
	r.perf.FanOuts++
	r.perf.TransportRoundTrips += int64(r.shards)
	type result struct {
		ack Ack
		err error
	}
	results := make([]result, r.shards)
	var wg sync.WaitGroup
	for i := 0; i < r.shards; i++ {
		send := op
		if owners[i] {
			r.fullSent++
		} else {
			send = incremental.RoutedOp{Seq: op.Seq, Kind: op.Kind, Advance: true, ID: op.ID}
			r.advSent++
		}
		wg.Add(1)
		go func(i int, send incremental.RoutedOp) {
			defer wg.Done()
			ack, err := r.clients[i].ApplyOp(ctx, send)
			results[i] = result{ack: ack, err: err}
		}(i, send)
	}
	wg.Wait()
	var downed []int
	for i, res := range results {
		if res.err != nil {
			var rerr *RemoteError
			if errors.As(res.err, &rerr) {
				r.broken = fmt.Errorf("transport: shard %d refused operation %d — the deployment has diverged: %w", i, op.Seq, res.err)
				return r.broken
			}
			r.down[i] = true
			downed = append(downed, i)
			continue
		}
		r.foldAck(op, res.ack, i)
	}
	if downed != nil {
		return &ShardUnavailableError{Shards: downed}
	}
	return nil
}

// foldAck records one shard's acknowledgement of op. Callers hold r.mu.
func (r *Coordinator) foldAck(op incremental.RoutedOp, ack Ack, i int) {
	r.ackedSeq[i] = op.Seq
	r.shardComp[i] = ack.Comparisons
	if r.dyn != nil {
		for _, nb := range ack.Neighbors {
			r.dyn.AddEdge(op.ID, nb, 1)
		}
	}
}

// RejoinShard reconnects a down shard and closes whatever gap its absence
// left: nothing for a shard that kept up, one idempotent re-send for a
// shard at seq-1, a full bootstrap ship for a pristine (wiped) shard.
func (r *Coordinator) RejoinShard(ctx context.Context, i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return r.broken
	}
	if i < 0 || i >= r.shards {
		return fmt.Errorf("transport: no shard %d", i)
	}
	return r.rejoinLocked(ctx, i)
}

func (r *Coordinator) rejoinLocked(ctx context.Context, i int) error {
	h, err := r.clients[i].Hello(ctx)
	if err != nil {
		return err
	}
	switch {
	case h.LastSeq == r.seq:
		// Fully caught up (possibly an acknowledgement we never saw).
	case h.LastSeq < r.seq && r.seq-h.LastSeq <= uint64(len(r.lastOps)):
		// The shard sits inside the last journaled record's delivery window
		// — at most one record (one op, or one whole batch) can be in
		// flight. Re-send the missing tail in full as one frame — a shard
		// the original routing only advanced tolerates the payload (its
		// lens ignores keys it does not own), and the frame's already-
		// applied prefix re-acks idempotently.
		tail := r.lastOps[len(r.lastOps)-int(r.seq-h.LastSeq):]
		if _, err := r.clients[i].ApplyBatch(ctx, tail); err != nil {
			return fmt.Errorf("transport: re-sending operations %d..%d to shard %d: %w", tail[0].Seq, r.seq, i, err)
		}
	case h.LastSeq == 0 && h.Inserts+h.Updates+h.Deletes == 0:
		// A pristine resolver where state should be: the shard lost its
		// disk. Ship its whole key-space projection.
		if r.seq > 0 {
			blob, err := r.bootstrapBlob(i)
			if err != nil {
				return err
			}
			if err := r.clients[i].Bootstrap(ctx, blob); err != nil {
				return fmt.Errorf("transport: bootstrapping shard %d: %w", i, err)
			}
		}
	default:
		return fmt.Errorf("transport: shard %d reports stream position %d, coordinator is at %d — no journal can close that gap", i, h.LastSeq, r.seq)
	}
	st, err := r.clients[i].State(ctx)
	if err != nil {
		return err
	}
	c := r.rep.Counters()
	if st.LastSeq != r.seq || st.Inserts != c.Inserts || st.Updates != c.Updates || st.Deletes != c.Deletes {
		return fmt.Errorf("transport: shard %d settled at seq=%d ops=%d/%d/%d, coordinator has seq=%d ops=%d/%d/%d",
			i, st.LastSeq, st.Inserts, st.Updates, st.Deletes, r.seq, c.Inserts, c.Updates, c.Deletes)
	}
	r.ackedSeq[i] = st.LastSeq
	r.shardComp[i] = st.Comparisons
	if r.dyn != nil {
		// Union the shard's full edge set: recovers matches whose
		// acknowledgement a crash swallowed. Additive is safe — edges this
		// shard owns can only have been (re)discovered by it.
		for _, e := range st.Edges {
			r.dyn.AddEdge(e.A, e.B, 1)
		}
	}
	r.down[i] = false
	return nil
}

// bootstrapBlob builds shard i's key-space projection of the replica: its
// owned slots, its owned slice of the match graph, the global operation
// counters, and the comparison counter an uninterrupted shard i would hold
// at this stream position. Callers hold r.mu.
func (r *Coordinator) bootstrapBlob(i int) (blob []byte, err error) {
	bs := incremental.BootstrapState{Seq: r.seq, MetaDirty: r.cfg.Meta != nil}
	c := r.rep.Counters()
	bs.Inserts, bs.Updates, bs.Deletes = c.Inserts, c.Updates, c.Deletes
	keys := make(map[entity.ID][]string)
	r.rep.EachSlot(func(id entity.ID, live bool, d *entity.Description) bool {
		var sl incremental.BootstrapSlot
		if live {
			full := r.keysOf(d)
			keys[id] = full
			var owned []string
			for _, k := range full {
				if sharded.KeyOwner(k, r.shards) == i {
					owned = append(owned, k)
				}
			}
			if owned != nil {
				sl = incremental.BootstrapSlot{
					Live:   true,
					URI:    d.URI,
					Source: d.Source,
					Attrs:  append([]entity.Attribute(nil), d.Attrs...),
					Keys:   owned,
				}
			}
		}
		bs.Slots = append(bs.Slots, sl)
		return true
	})
	if r.dyn != nil {
		for _, e := range r.dyn.SnapshotEdges() {
			if fs, ok := sharded.FirstSharedKey(keys[e.A], keys[e.B]); ok && sharded.KeyOwner(fs, r.shards) == i {
				bs.Edges = append(bs.Edges, e)
			}
		}
		comp, err := r.compAt(i)
		if err != nil {
			return nil, err
		}
		bs.Comparisons = comp
	}
	return encodeBootstrap(bs)
}

// compAt returns the cumulative comparison count an uninterrupted shard i
// would hold at the current stream position: its last acknowledged counter
// plus its claimed share of the unacknowledged tail — countable exactly
// from the replica's full index because the claim key of every frontier
// pair is known. A one-operation gap is always exact (the replica's final
// state IS that operation's post-state); a deeper gap is exact only for an
// all-insert tail, where an insert's at-time frontier is its final-state
// candidate set minus the pairs against later tail inserts (each counted
// at the LATER insert, whose enumeration sees both). A mixed deeper tail
// cannot be reconstructed and errors. Callers hold r.mu.
func (r *Coordinator) compAt(i int) (int64, error) {
	comp := r.shardComp[i]
	if r.ackedSeq[i] == r.seq {
		return comp, nil
	}
	if r.ackedSeq[i] < r.seq && r.seq-r.ackedSeq[i] <= uint64(len(r.lastOps)) {
		tail := r.lastOps[len(r.lastOps)-int(r.seq-r.ackedSeq[i]):]
		claimShare := func(opID entity.ID, skipAbove bool) {
			r.rep.EachDeltaCandidate(opID, func(other entity.ID, claimKey string) bool {
				if skipAbove && other > opID {
					return true
				}
				if sharded.KeyOwner(claimKey, r.shards) == i {
					comp++
				}
				return true
			})
		}
		if len(tail) == 1 {
			if tail[0].Kind != incremental.OpDelete {
				claimShare(tail[0].ID, false)
			}
			return comp, nil
		}
		allInsert := true
		for _, op := range tail {
			if op.Kind != incremental.OpInsert {
				allInsert = false
				break
			}
		}
		if allInsert {
			for _, op := range tail {
				claimShare(op.ID, true)
			}
			return comp, nil
		}
	}
	return 0, fmt.Errorf("transport: shard %d last acknowledged operation %d of %d — its comparison counter cannot be reconstructed (was the coordinator journal moved between deployments?)", i, r.ackedSeq[i], r.seq)
}

// Stats reports the deployment's counters: operations and blocks from the
// replica, comparisons from the shard acknowledgements — adjusted by the
// claimed share of an operation a down shard has not yet acknowledged, so
// the total equals the single-node count at every stream position.
func (r *Coordinator) Stats() (incremental.Stats, error) {
	if r.cfg.Meta != nil {
		// The replica IS the single-node resolver here (its reconcile does
		// the matching); its stats are exact verbatim.
		return r.rep.Stats()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := r.rep.Counters()
	st.Comparisons = 0
	for i := range r.shardComp {
		comp, err := r.compAt(i)
		if err != nil {
			// Unreconstructable share (cannot happen while the coordinator
			// lives — mutations refuse past one op of divergence); report
			// the acknowledged floor.
			comp = r.shardComp[i]
		}
		st.Comparisons += comp
	}
	st.Matches = r.dyn.NumEdges()
	st.Clusters = len(r.dyn.Clusters())
	return st, nil
}

// Matches returns the current global match pairs over internal handles.
func (r *Coordinator) Matches() (*entity.Matches, error) {
	if r.cfg.Meta != nil {
		return r.rep.Matches()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dyn.Matches(), nil
}

// Clusters returns the current non-singleton clusters over internal
// handles.
func (r *Coordinator) Clusters() ([][]entity.ID, error) {
	if r.cfg.Meta != nil {
		return r.rep.Clusters()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dyn.Clusters(), nil
}

// MatchedWith returns the handles currently matched to id, reconciling
// deferred meta-blocking work first. Nil when id is not live.
func (r *Coordinator) MatchedWith(id entity.ID) ([]entity.ID, error) {
	if r.cfg.Meta != nil {
		return r.rep.MatchedWith(id)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, live := r.rep.Get(id); !live {
		return nil, nil
	}
	return r.dyn.Graph().Neighbors(id), nil
}

// Blocks materializes the global block collection from the replica's full
// index — identical to the single-node resolver's.
func (r *Coordinator) Blocks() *blocking.Blocks { return r.rep.Blocks() }

// RestructuredBlocks reconciles and renders the pruned global blocking
// graph (meta-blocking deployments; nil otherwise).
func (r *Coordinator) RestructuredBlocks() (*blocking.Blocks, error) {
	return r.rep.RestructuredBlocks()
}

// Flush settles any deferred meta-blocking work.
func (r *Coordinator) Flush(ctx context.Context) error { return r.rep.Flush(ctx) }

// Lookup returns the handle of the live description with the given URI.
func (r *Coordinator) Lookup(uri string) (entity.ID, bool) { return r.rep.Lookup(uri) }

// Get returns a copy of the live description with the given handle.
func (r *Coordinator) Get(id entity.ID) (*entity.Description, bool) { return r.rep.Get(id) }

// Seq returns the global stream position: accepted operations so far.
func (r *Coordinator) Seq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seq
}

// Perf reports the coordinator PROCESS's perf counters: the replica's
// (journal appends, reconcile and snapshot work) plus the coordinator's own
// fan-out and round-trip counters. Shard-server-side work — their journal
// appends in particular — happens in other processes and is not included.
func (r *Coordinator) Perf() incremental.PerfCounters {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := r.perf
	out.Add(r.rep.Perf())
	return out
}

// TransportStats reports the delivery counters and down set.
func (r *Coordinator) TransportStats() TransportStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts := TransportStats{FullOps: r.fullSent, AdvanceOps: r.advSent}
	for i, d := range r.down {
		if d {
			ts.Down = append(ts.Down, i)
		}
	}
	sort.Ints(ts.Down)
	return ts
}

// Close disconnects from the shards and seals the coordinator journal.
// Shard servers are not touched — they are other processes.
func (r *Coordinator) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.clients {
		c.Close()
	}
	if r.broken == nil {
		r.broken = fmt.Errorf("transport: coordinator is closed")
	}
	return r.rep.Close()
}

// Abandon drops connections and abandons the replica's WAL handles without
// sealing — the coordinator half of the chaos suites' kill -9.
func (r *Coordinator) Abandon() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.clients {
		c.Close()
	}
	r.broken = fmt.Errorf("transport: coordinator is abandoned")
	r.rep.Abandon()
}

// Apply executes one URI-addressed operation — the same op-script form the
// single-node and in-process sharded resolvers accept, so the differential
// suites replay identical scripts through all three deployments.
func (r *Coordinator) Apply(ctx context.Context, op incremental.Op) error {
	switch op.Kind {
	case incremental.OpInsert:
		d := &entity.Description{ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
		_, err := r.Insert(ctx, d)
		return err
	case incremental.OpUpdate:
		id, ok := r.Lookup(op.URI)
		if !ok {
			return fmt.Errorf("transport: update of unknown URI %q", op.URI)
		}
		return r.Update(ctx, id, op.Attrs)
	case incremental.OpDelete:
		id, ok := r.Lookup(op.URI)
		if !ok {
			return fmt.Errorf("transport: delete of unknown URI %q", op.URI)
		}
		return r.Delete(ctx, id)
	default:
		return fmt.Errorf("transport: unknown op kind %d", op.Kind)
	}
}
