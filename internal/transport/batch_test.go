package transport_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
	"entityres/internal/transport"
)

// The networked batched-ingestion property: a coordinator shipping whole
// batches — one replica append, one frame per shard per batch, one
// cumulative ack back — stays bit-exact with the in-process sharded
// resolver and the single-node resolver; a batch torn by a crash (shards
// down mid-fan-out, coordinator restart, connection death between apply
// and ack) is re-delivered idempotently from the journal tail; and the
// wire amortization is measurable: round trips per batch, not per op.

// coBatchRecords converts a script chunk into coordinator batch records.
func coBatchRecords(ops []incremental.Op) []incremental.Record {
	recs := make([]incremental.Record, len(ops))
	for i, op := range ops {
		recs[i] = incremental.Record{Kind: op.Kind, ID: -1, URI: op.URI, Source: op.Source, Attrs: op.Attrs}
	}
	return recs
}

// transportBatchConfig is one networked batched-ingestion scenario.
type transportBatchConfig struct {
	shards int
	size   int
	seed   int64
	ops    int
	meta   *metablocking.MetaBlocker
	mix    opMix
}

func (bc transportBatchConfig) String() string {
	s := fmt.Sprintf("n%d/b%d/%s/seed%d", bc.shards, bc.size, bc.mix.name, bc.seed)
	if bc.meta != nil {
		s += "/" + bc.meta.Name()
	}
	return s
}

func runTransportBatchDifferential(t *testing.T, bc transportBatchConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, bc.seed, bc.ops, bc.mix)
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 4, Meta: bc.meta, Shards: bc.shards,
	}
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4, Meta: bc.meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := sharded.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := startCluster(t, cfg, make([]string, bc.shards))
	ctx := context.Background()
	co, err := cl.open(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	chunks := 0
	for at := 0; at < bc.ops; at += bc.size {
		end := min(at+bc.size, bc.ops)
		chunk := script[at:end]
		if err := co.ApplyBatch(ctx, coBatchRecords(chunk)); err != nil {
			t.Fatalf("networked batch at op %d: %v", at, err)
		}
		if err := inproc.ApplyBatch(ctx, coBatchRecords(chunk)); err != nil {
			t.Fatalf("in-process batch at op %d: %v", at, err)
		}
		chunks++
		for i := at; i < end; i++ {
			if err := single.Apply(ctx, script[i]); err != nil {
				t.Fatalf("op %d (%s %s): %v", i, script[i].Kind, script[i].URI, err)
			}
		}
		if at/50 != end/50 || end == bc.ops {
			assertCoordinatorEquals(t, co, single, "single-node", bc.meta != nil, end)
			assertCoordinatorEquals(t, co, inproc, "in-process", bc.meta != nil, end)
		}
	}
	// The wire amortization is the acceptance criterion: one fan-out and
	// shards round trips per BATCH, one replica journal append per batch.
	perf := co.Perf()
	if perf.FanOuts != int64(chunks) {
		t.Fatalf("%d fan-outs for %d batches", perf.FanOuts, chunks)
	}
	if perf.TransportRoundTrips != int64(chunks*bc.shards) {
		t.Fatalf("%d round trips for %d batches on %d shards", perf.TransportRoundTrips, chunks, bc.shards)
	}
	if bc.meta == nil && perf.JournalAppends != int64(chunks) {
		t.Fatalf("%d replica journal appends for %d batches", perf.JournalAppends, chunks)
	}
	// Routing stays real inside batch frames: every op reaches every shard,
	// but as a slot-advance wherever the shard owns none of its keys.
	ts := co.TransportStats()
	total := int64(bc.ops) * int64(bc.shards)
	if ts.FullOps+ts.AdvanceOps != total {
		t.Fatalf("delivery counters: full=%d advance=%d, want total %d", ts.FullOps, ts.AdvanceOps, total)
	}
	if bc.shards > 1 && (ts.FullOps >= total || ts.AdvanceOps == 0) {
		t.Fatalf("batch frames are replicating, not routing: full=%d advance=%d of %d", ts.FullOps, ts.AdvanceOps, total)
	}
}

// TestTransportDifferentialBatch is the networked batched-ingestion
// acceptance matrix. Named to ride the transport differential race job.
func TestTransportDifferentialBatch(t *testing.T) {
	configs := []transportBatchConfig{
		{shards: 1, size: 16, seed: 441, ops: 160, mix: opMixes[0]},
		{shards: 3, size: 1, seed: 442, ops: 120, mix: opMixes[1]},
		{shards: 3, size: 16, seed: 443, ops: 160, mix: opMixes[1]},
		{shards: 4, size: 64, seed: 444, ops: 160, mix: opMixes[2]},
		{shards: 2, size: 16, seed: 445, ops: 140, mix: opMixes[1],
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}},
		{shards: 5, size: 9, seed: 446, ops: 140, mix: opMixes[0],
			meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}},
	}
	for _, bc := range configs {
		bc := bc
		t.Run(bc.String(), func(t *testing.T) {
			if testing.Short() && bc.shards > 2 {
				t.Skip("short mode runs small shard counts only")
			}
			t.Parallel()
			runTransportBatchDifferential(t, bc)
		})
	}
}

// TestCoordinatorRestartMidBatch: the batch analog of the torn-op crash.
// A whole batch is journaled on the coordinator while every shard misses
// it; the coordinator dies; the reopened coordinator reconstructs the
// batch tail from its journal's OpBatch record and re-sends it during the
// opening handshake.
func TestCoordinatorRestartMidBatch(t *testing.T) {
	t.Parallel()
	for _, meta := range []*metablocking.MetaBlocker{
		nil,
		{Weight: metablocking.CBS, Prune: metablocking.WEP},
	} {
		meta := meta
		name := "plain"
		if meta != nil {
			name = meta.Name()
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
			const ops, k, size, shards = 96, 48, 6, 3
			script := generateScript(t, entity.Dirty, 451, ops, opMixes[1])
			cfg := sharded.Config{
				Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
				Workers: 4, Meta: meta, Shards: shards, Durable: durableOpts(),
			}
			base := t.TempDir()
			dirs := make([]string, shards)
			for i := range dirs {
				dirs[i] = fmt.Sprintf("%s/srv-%d", base, i)
			}
			cl := startCluster(t, cfg, dirs)
			ctx := context.Background()
			cdir := base + "/coord"
			co, err := cl.open(ctx, cdir)
			if err != nil {
				t.Fatal(err)
			}
			single, err := incremental.New(incremental.Config{
				Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4, Meta: meta,
			})
			if err != nil {
				t.Fatal(err)
			}
			mirror := func(from, to int) {
				t.Helper()
				for i := from; i < to; i++ {
					if err := single.Apply(ctx, script[i]); err != nil {
						t.Fatalf("reference op %d: %v", i, err)
					}
				}
			}
			// Stream the prefix in batches, then kill every shard and apply
			// one more batch: journaled whole on the coordinator, received
			// by nobody — a torn BATCH, not a torn op.
			for at := 0; at < k; at += size {
				if err := co.ApplyBatch(ctx, coBatchRecords(script[at:at+size])); err != nil {
					t.Fatalf("batch at op %d: %v", at, err)
				}
			}
			mirror(0, k)
			for i := 0; i < shards; i++ {
				cl.servers[i].Abandon()
			}
			var sue *transport.ShardUnavailableError
			if err := co.ApplyBatch(ctx, coBatchRecords(script[k:k+size])); !errors.As(err, &sue) {
				t.Fatalf("torn batch: got %v, want ShardUnavailableError", err)
			} else if len(sue.Shards) != shards {
				t.Fatalf("unavailable set %v, want all %d shards", sue.Shards, shards)
			}
			mirror(k, k+size)
			co.Abandon()

			// Everything restarts. The reopened coordinator finds every
			// shard a whole batch behind and re-sends the tail idempotently.
			for i := 0; i < shards; i++ {
				cl.startShard(i)
			}
			co2, err := cl.open(ctx, cdir)
			if err != nil {
				t.Fatalf("reopening coordinator after torn batch: %v", err)
			}
			defer co2.Close()
			if co2.Seq() != uint64(k+size) {
				t.Fatalf("Seq() = %d after restart, want %d", co2.Seq(), k+size)
			}
			for at := k + size; at < ops; at += size {
				if err := co2.ApplyBatch(ctx, coBatchRecords(script[at:at+size])); err != nil {
					t.Fatalf("batch at op %d after restart: %v", at, err)
				}
			}
			mirror(k+size, ops)
			assertCoordinatorEquals(t, co2, single, "single-node", meta != nil, ops)
		})
	}
}

// TestCoordinatorRestartShardMissesBatch: one shard dies mid-fan-out, so
// the batch lands everywhere else; the coordinator survives, keeps exact
// counters while the shard is down (the all-insert tail is reconstructed
// comparison-for-comparison), and RejoinShard re-sends the whole batch to
// the returning shard in one frame.
func TestCoordinatorRestartShardMissesBatch(t *testing.T) {
	t.Parallel()
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	const prefix, size, shards, victim = 40, 5, 3, 1
	script := generateScript(t, entity.Dirty, 452, prefix, opMixes[1])
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 4, Shards: shards, Durable: durableOpts(),
	}
	base := t.TempDir()
	dirs := make([]string, shards)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("%s/srv-%d", base, i)
	}
	cl := startCluster(t, cfg, dirs)
	ctx := context.Background()
	co, err := cl.open(ctx, base+"/coord")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < prefix; i++ {
		if err := co.Apply(ctx, script[i]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := single.Apply(ctx, script[i]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// An all-insert batch while the victim is down: accepted, journaled,
	// applied on the live shards — and the victim misses all of it.
	batch := make([]incremental.Op, size)
	for i := range batch {
		batch[i] = incremental.Op{
			Kind: incremental.OpInsert, URI: fmt.Sprintf("urn:batch-%d", i),
			Attrs: []entity.Attribute{{Name: "name", Value: fmt.Sprintf("alice smith %d", i)}},
		}
	}
	cl.servers[victim].Abandon()
	var sue *transport.ShardUnavailableError
	if err := co.ApplyBatch(ctx, coBatchRecords(batch)); !errors.As(err, &sue) {
		t.Fatalf("batch with shard %d dead: got %v, want ShardUnavailableError", victim, err)
	} else if len(sue.Shards) != 1 || sue.Shards[0] != victim {
		t.Fatalf("unavailable set %v, want [%d]", sue.Shards, victim)
	}
	for _, op := range batch {
		if err := single.Apply(ctx, op); err != nil {
			t.Fatal(err)
		}
	}
	// Counters stay exact while the tail is un-acked on the victim: the
	// comparison count of an all-insert batch tail is reconstructed from
	// the replica, not floored at the last acknowledged op.
	if gs, ws := mustStats(t, co), mustStats(t, single); gs != ws {
		t.Fatalf("stats with shard %d down:\nnetworked   %+v\nsingle-node %+v", victim, gs, ws)
	}
	cl.startShard(victim)
	if err := co.RejoinShard(ctx, victim); err != nil {
		t.Fatalf("rejoining shard %d: %v", victim, err)
	}
	if ts := co.TransportStats(); len(ts.Down) != 0 {
		t.Fatalf("Down = %v after rejoin", ts.Down)
	}
	assertCoordinatorEquals(t, co, single, "single-node", false, prefix+size)
}

// TestClientBatchRedelivery kills the connection between the server's
// batch apply and the client's read of the cumulative ack: the retry
// re-delivers the whole frame, the shard re-acks its already-applied
// prefix without re-applying, and every operation is held exactly once.
func TestClientBatchRedelivery(t *testing.T) {
	t.Parallel()
	srv, addr := startTestServer(t)
	var fail atomic.Int32
	dial := func(ctx context.Context, a string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", a)
		if err != nil {
			return nil, err
		}
		return &dropConn{Conn: conn, fail: &fail}, nil
	}
	c := transport.NewShardClient(addr, testExpect(), transport.ClientOptions{
		Timeout: 2 * time.Second, Attempts: 3, Dial: dial,
	})
	defer c.Close()
	ctx := context.Background()
	first := []incremental.RoutedOp{testOp(1, 0), testOp(2, 1), testOp(3, 2)}
	ack, err := c.ApplyBatch(ctx, first)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 3 || len(ack.Neighbors) != 3 {
		t.Fatalf("batch ack %+v, want seq 3 with 3 neighbor lists", ack)
	}
	// The next reply read fails AFTER the frame was written: the server
	// applies ops 4..6 and acks into a dead connection; the retry
	// re-delivers the whole batch over a fresh handshake.
	fail.Store(1)
	ack, err = c.ApplyBatch(ctx, []incremental.RoutedOp{testOp(4, 3), testOp(5, 4), testOp(6, 5)})
	if err != nil {
		t.Fatalf("batch redelivery failed: %v", err)
	}
	if ack.Seq != 6 {
		t.Fatalf("redelivered batch acked at seq %d, want 6", ack.Seq)
	}
	st := srv.Resolver().Counters()
	if st.Inserts != 6 || st.Live != 6 {
		t.Fatalf("after redelivery: inserts=%d live=%d, want 6/6 (each op applied exactly once)", st.Inserts, st.Live)
	}
	if got := srv.Resolver().LastSeq(); got != 6 {
		t.Fatalf("shard at seq %d, want 6", got)
	}
}

// TestClientBatchShape covers the client-side frame checks: an empty batch
// never touches the wire, and a server refusal surfaces as a RemoteError
// without retry.
func TestClientBatchShape(t *testing.T) {
	t.Parallel()
	_, addr := startTestServer(t)
	c := transport.NewShardClient(addr, testExpect(), transport.ClientOptions{Timeout: 2 * time.Second})
	defer c.Close()
	ctx := context.Background()
	if _, err := c.ApplyBatch(ctx, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	// Seq 0 repeats the shard's current position (0): the server refuses
	// the batch semantically rather than applying it.
	var rerr *transport.RemoteError
	if _, err := c.ApplyBatch(ctx, []incremental.RoutedOp{testOp(0, 0)}); !errors.As(err, &rerr) {
		t.Fatalf("mis-sequenced batch: got %v, want RemoteError", err)
	}
}
