// Control-plane message shapes: connection hello, shard state fetch, and
// the bootstrap blob — a JSON-encoded incremental.BootstrapState framed as
// a wal.Snapshot, so a state transfer over the wire carries the same
// integrity check as a snapshot file read from disk.
package transport

import (
	"encoding/json"
	"fmt"

	"entityres/internal/entity"
	"entityres/internal/graph"
	"entityres/internal/incremental"
	"entityres/internal/sharded"
	"entityres/internal/wal"
)

// Hello opens every connection. The client states the deployment shape
// it expects; the server refuses a mismatch — a coordinator pointed at the
// wrong shard, or a shard directory opened under a different partition,
// dies loudly instead of corrupting a stream. The reply carries the
// server's durable stream position and counters.
type Hello struct {
	// Shards and Index identify the partition slot this connection expects
	// to talk to.
	Shards int `json:"shards"`
	Index  int `json:"index"`
	// Kind is the resolution setting (entity.Kind).
	Kind int `json:"kind"`
	// Meta marks a deferred meta-blocking deployment.
	Meta bool `json:"meta,omitempty"`
	// LastSeq is the routed-stream sequence number the shard is current
	// through (reply only).
	LastSeq uint64 `json:"last_seq,omitempty"`
	// Operation and comparison counters (reply only).
	Inserts     int64 `json:"inserts,omitempty"`
	Updates     int64 `json:"updates,omitempty"`
	Deletes     int64 `json:"deletes,omitempty"`
	Comparisons int64 `json:"comparisons,omitempty"`
}

// stateJSON answers a frameState request: the shard's durable position,
// counters and full match edge set — what a coordinator folds in when it
// reopens or a shard rejoins.
type stateJSON struct {
	LastSeq     uint64     `json:"last_seq"`
	Inserts     int64      `json:"inserts"`
	Updates     int64      `json:"updates"`
	Deletes     int64      `json:"deletes"`
	Comparisons int64      `json:"comparisons"`
	Edges       []edgeJSON `json:"edges,omitempty"`
}

type edgeJSON struct {
	A entity.ID `json:"a"`
	B entity.ID `json:"b"`
}

// bootstrapJSON is the serialized incremental.BootstrapState.
type bootstrapJSON struct {
	Slots       []bootstrapSlotJSON `json:"slots"`
	Edges       []edgeJSON          `json:"edges,omitempty"`
	Inserts     int64               `json:"inserts"`
	Updates     int64               `json:"updates"`
	Deletes     int64               `json:"deletes"`
	Comparisons int64               `json:"comparisons"`
	Seq         uint64              `json:"seq"`
	MetaDirty   bool                `json:"meta_dirty,omitempty"`
}

type bootstrapSlotJSON struct {
	Live   bool       `json:"live,omitempty"`
	URI    string     `json:"uri,omitempty"`
	Source int        `json:"source,omitempty"`
	Attrs  []attrJSON `json:"attrs,omitempty"`
	Keys   []string   `json:"keys,omitempty"`
}

type attrJSON struct {
	Name  string `json:"n"`
	Value string `json:"v"`
}

// marshalJSON marshals a control-plane message; the shapes above cannot
// fail to marshal.
func marshalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("transport: marshaling control message: %v", err))
	}
	return b
}

// unmarshalJSON parses a control-plane message.
func unmarshalJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("transport: decoding control message: %w", err)
	}
	return nil
}

// encodeBootstrap renders bs as a CRC-framed wal.Snapshot blob.
func encodeBootstrap(bs incremental.BootstrapState) (wal.Snapshot, error) {
	out := bootstrapJSON{
		Inserts:     bs.Inserts,
		Updates:     bs.Updates,
		Deletes:     bs.Deletes,
		Comparisons: bs.Comparisons,
		Seq:         bs.Seq,
		MetaDirty:   bs.MetaDirty,
		Slots:       make([]bootstrapSlotJSON, 0, len(bs.Slots)),
	}
	for _, sl := range bs.Slots {
		js := bootstrapSlotJSON{Live: sl.Live, URI: sl.URI, Source: sl.Source, Keys: sl.Keys}
		for _, a := range sl.Attrs {
			js.Attrs = append(js.Attrs, attrJSON{Name: a.Name, Value: a.Value})
		}
		out.Slots = append(out.Slots, js)
	}
	for _, e := range bs.Edges {
		out.Edges = append(out.Edges, edgeJSON{A: e.A, B: e.B})
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("transport: encoding bootstrap state: %w", err)
	}
	return wal.EncodeFramed(payload)
}

// decodeBootstrap validates the blob's frame and parses the state.
func decodeBootstrap(blob wal.Snapshot) (incremental.BootstrapState, error) {
	var bs incremental.BootstrapState
	payload, err := wal.DecodeFramed(blob)
	if err != nil {
		return bs, fmt.Errorf("transport: bootstrap blob: %w", err)
	}
	var js bootstrapJSON
	if err := json.Unmarshal(payload, &js); err != nil {
		return bs, fmt.Errorf("transport: decoding bootstrap state: %w", err)
	}
	bs.Inserts, bs.Updates, bs.Deletes = js.Inserts, js.Updates, js.Deletes
	bs.Comparisons = js.Comparisons
	bs.Seq = js.Seq
	bs.MetaDirty = js.MetaDirty
	bs.Slots = make([]incremental.BootstrapSlot, 0, len(js.Slots))
	for _, sl := range js.Slots {
		s := incremental.BootstrapSlot{Live: sl.Live, URI: sl.URI, Source: sl.Source, Keys: sl.Keys}
		for _, a := range sl.Attrs {
			s.Attrs = append(s.Attrs, entity.Attribute{Name: a.Name, Value: a.Value})
		}
		bs.Slots = append(bs.Slots, s)
	}
	for _, e := range js.Edges {
		bs.Edges = append(bs.Edges, graph.Edge{A: e.A, B: e.B, Weight: 1})
	}
	return bs, nil
}

// Expectation builds the deployment identity a client of shard index under
// cfg asserts in its opening handshake.
func Expectation(cfg sharded.Config, index int) Hello {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	return Hello{Shards: shards, Index: index, Kind: int(cfg.Kind), Meta: cfg.Meta != nil}
}
