package transport_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/incremental"
	"entityres/internal/matching"
	"entityres/internal/metablocking"
	"entityres/internal/sharded"
	"entityres/internal/transport"
)

// The networked chaos property: a shard server hard-stopped mid-stream and
// rejoined — through its own recovered journal, or through a snapshot
// shipped over the wire after its disk is wiped — leaves the deployment
// bit-exact with an uninterrupted single-node run; and a coordinator
// hard-stopped and reopened from its journal resumes with restart-exact
// counters, re-sending the one operation a crash can tear off the shards.

// transportChaosConfig is one networked crash scenario.
type transportChaosConfig struct {
	name   string
	shards int
	seed   int64
	ops    int
	meta   *metablocking.MetaBlocker
	// wipe destroys the victim's directory before rejoin, forcing the
	// snapshot-shipping bootstrap path instead of local journal recovery.
	wipe bool
}

func (cc transportChaosConfig) String() string {
	s := fmt.Sprintf("%s/n%d/seed%d", cc.name, cc.shards, cc.seed)
	if cc.meta != nil {
		s += "/" + cc.meta.Name()
	}
	return s
}

func durableOpts() incremental.DurableOptions {
	return incremental.DurableOptions{SnapshotEvery: 40, SegmentBytes: 4096, NoSync: true}
}

// runShardCrashRejoin drives one scenario: stream to a random boundary,
// hard-stop one shard server, observe refusal, rejoin (recovered or wiped),
// finish the stream, and compare against an uninterrupted single-node run.
func runShardCrashRejoin(t *testing.T, cc transportChaosConfig) {
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	script := generateScript(t, entity.Dirty, cc.seed, cc.ops, cc.mixedMeta())
	rng := rand.New(rand.NewSource(cc.seed * 31337))
	k := 1 + rng.Intn(cc.ops-2)
	victim := rng.Intn(cc.shards)

	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 4, Meta: cc.meta, Shards: cc.shards, Durable: durableOpts(),
	}
	base := t.TempDir()
	dirs := make([]string, cc.shards)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("srv-%d", i))
	}
	cl := startCluster(t, cfg, dirs)
	ctx := context.Background()
	co, err := cl.open(ctx, filepath.Join(base, "coord"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4, Meta: cc.meta,
	})
	if err != nil {
		t.Fatal(err)
	}
	apply := func(r interface {
		Apply(context.Context, incremental.Op) error
	}, from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := r.Apply(ctx, script[i]); err != nil {
				t.Fatalf("op %d (%s %s): %v", i, script[i].Kind, script[i].URI, err)
			}
		}
	}

	apply(co, 0, k)
	apply(single, 0, k)

	// Hard-stop the victim. The next operation is ACCEPTED — journaled on
	// the coordinator and applied on every reachable shard — but reports the
	// victim unavailable, and every operation after that is refused outright
	// until the shard rejoins.
	cl.servers[victim].Abandon()
	var sue *transport.ShardUnavailableError
	if err := co.Apply(ctx, script[k]); !errors.As(err, &sue) {
		t.Fatalf("op %d with shard %d dead: got %v, want ShardUnavailableError", k, victim, err)
	} else if len(sue.Shards) != 1 || sue.Shards[0] != victim {
		t.Fatalf("unavailable set %v, want [%d]", sue.Shards, victim)
	}
	apply(single, k, k+1) // the op counted: mirror it
	if err := co.Apply(ctx, script[k+1]); !errors.As(err, &sue) {
		t.Fatalf("op %d while shard %d is down: got %v, want refusal", k+1, victim, err)
	}
	if ts := co.TransportStats(); len(ts.Down) != 1 || ts.Down[0] != victim {
		t.Fatalf("Down = %v, want [%d]", ts.Down, victim)
	}

	// Rejoin: journal recovery (server reopens its abandoned directory and
	// the coordinator re-sends at most one operation) or snapshot shipping
	// (the directory is wiped first; the coordinator ships full state).
	if cc.wipe {
		if err := os.RemoveAll(cl.dirs[victim]); err != nil {
			t.Fatal(err)
		}
	}
	cl.startShard(victim)
	if err := co.RejoinShard(ctx, victim); err != nil {
		t.Fatalf("rejoining shard %d (wipe=%t): %v", victim, cc.wipe, err)
	}
	if ts := co.TransportStats(); len(ts.Down) != 0 {
		t.Fatalf("Down = %v after rejoin", ts.Down)
	}

	// The stream flows again and lands bit-exact.
	apply(co, k+1, cc.ops)
	apply(single, k+1, cc.ops)
	assertCoordinatorEquals(t, co, single, "single-node", cc.meta != nil, cc.ops)
}

// mixedMeta picks the op mix: churn exercises the most routing shapes.
func (cc transportChaosConfig) mixedMeta() opMix { return opMixes[1] }

// TestShardCrashRejoin covers the journal-recovery rejoin path.
func TestShardCrashRejoin(t *testing.T) {
	configs := []transportChaosConfig{
		{name: "recover", shards: 3, seed: 301, ops: 120},
		{name: "recover", shards: 5, seed: 302, ops: 120},
		{name: "recover", shards: 3, seed: 303, ops: 120,
			meta: &metablocking.MetaBlocker{Weight: metablocking.CBS, Prune: metablocking.WEP}},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			t.Parallel()
			runShardCrashRejoin(t, cc)
		})
	}
}

// TestShardWipeBootstrap covers snapshot shipping: the victim loses its
// directory entirely and bootstraps from a state blob over the wire.
func TestShardWipeBootstrap(t *testing.T) {
	configs := []transportChaosConfig{
		{name: "wipe", shards: 3, seed: 311, ops: 120, wipe: true},
		{name: "wipe", shards: 5, seed: 312, ops: 120, wipe: true},
		{name: "wipe", shards: 3, seed: 313, ops: 120, wipe: true,
			meta: &metablocking.MetaBlocker{Weight: metablocking.ECBS, Prune: metablocking.WNP}},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			t.Parallel()
			runShardWipeBootstrap(t, cc)
		})
	}
}

func runShardWipeBootstrap(t *testing.T, cc transportChaosConfig) {
	runShardCrashRejoin(t, cc)
}

// TestCoordinatorRestart hard-stops the coordinator mid-stream and reopens
// it from its journal against the still-running shard servers: counters
// must be restart-exact and the remainder of the stream bit-exact.
func TestCoordinatorRestart(t *testing.T) {
	t.Parallel()
	for _, meta := range []*metablocking.MetaBlocker{
		nil,
		{Weight: metablocking.CBS, Prune: metablocking.WEP},
	} {
		meta := meta
		name := "plain"
		if meta != nil {
			name = meta.Name()
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
			const ops, k, shards = 120, 67, 3
			script := generateScript(t, entity.Dirty, 321, ops, opMixes[1])
			cfg := sharded.Config{
				Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
				Workers: 4, Meta: meta, Shards: shards, Durable: durableOpts(),
			}
			base := t.TempDir()
			dirs := make([]string, shards)
			for i := range dirs {
				dirs[i] = filepath.Join(base, fmt.Sprintf("srv-%d", i))
			}
			cl := startCluster(t, cfg, dirs)
			ctx := context.Background()
			cdir := filepath.Join(base, "coord")
			co, err := cl.open(ctx, cdir)
			if err != nil {
				t.Fatal(err)
			}
			single, err := incremental.New(incremental.Config{
				Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4, Meta: meta,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if err := co.Apply(ctx, script[i]); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if err := single.Apply(ctx, script[i]); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			// Reads reconcile under meta-blocking, so the single-node mirror
			// follows the same read schedule as the coordinator.
			single.Stats()
			before := mustStats(t, co)
			co.Abandon()

			co2, err := cl.open(ctx, cdir)
			if err != nil {
				t.Fatalf("reopening coordinator: %v", err)
			}
			defer co2.Close()
			if after := mustStats(t, co2); after != before {
				t.Fatalf("restart is not counter-exact:\nbefore %+v\nafter  %+v", before, after)
			}
			if co2.Seq() != uint64(k) {
				t.Fatalf("Seq() = %d after restart, want %d", co2.Seq(), k)
			}
			for i := k; i < ops; i++ {
				if err := co2.Apply(ctx, script[i]); err != nil {
					t.Fatalf("op %d after restart: %v", i, err)
				}
				if err := single.Apply(ctx, script[i]); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			assertCoordinatorEquals(t, co2, single, "single-node", meta != nil, ops)
		})
	}
}

// TestCoordinatorTornOp covers the one-op tear: the coordinator journals an
// operation, every shard misses it (all servers die first), the
// coordinator itself dies, and the reopened coordinator re-sends that
// operation to every restarted shard during its opening handshake.
func TestCoordinatorTornOp(t *testing.T) {
	t.Parallel()
	matcher := &matching.Matcher{Sim: &matching.TokenJaccard{}, Threshold: 0.5}
	const ops, k, shards = 90, 41, 3
	script := generateScript(t, entity.Dirty, 331, ops, opMixes[0])
	cfg := sharded.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher,
		Workers: 4, Shards: shards, Durable: durableOpts(),
	}
	base := t.TempDir()
	dirs := make([]string, shards)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("srv-%d", i))
	}
	cl := startCluster(t, cfg, dirs)
	ctx := context.Background()
	cdir := filepath.Join(base, "coord")
	co, err := cl.open(ctx, cdir)
	if err != nil {
		t.Fatal(err)
	}
	single, err := incremental.New(incremental.Config{
		Kind: entity.Dirty, Blocker: &blocking.TokenBlocking{}, Matcher: matcher, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := co.Apply(ctx, script[i]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := single.Apply(ctx, script[i]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Kill every shard, then apply one op: it is journaled on the
	// coordinator but reaches nobody — the tear.
	for i := 0; i < shards; i++ {
		cl.servers[i].Abandon()
	}
	var sue *transport.ShardUnavailableError
	if err := co.Apply(ctx, script[k]); !errors.As(err, &sue) {
		t.Fatalf("torn op: got %v, want ShardUnavailableError", err)
	} else if len(sue.Shards) != shards {
		t.Fatalf("unavailable set %v, want all %d shards", sue.Shards, shards)
	}
	if err := single.Apply(ctx, script[k]); err != nil {
		t.Fatal(err)
	}
	co.Abandon()

	// Everything restarts. The reopened coordinator finds every shard one
	// operation behind and re-sends it idempotently.
	for i := 0; i < shards; i++ {
		cl.startShard(i)
	}
	co2, err := cl.open(ctx, cdir)
	if err != nil {
		t.Fatalf("reopening coordinator after torn op: %v", err)
	}
	defer co2.Close()
	if co2.Seq() != uint64(k+1) {
		t.Fatalf("Seq() = %d after restart, want %d", co2.Seq(), k+1)
	}
	for i := k + 1; i < ops; i++ {
		if err := co2.Apply(ctx, script[i]); err != nil {
			t.Fatalf("op %d after restart: %v", i, err)
		}
		if err := single.Apply(ctx, script[i]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	assertCoordinatorEquals(t, co2, single, "single-node", false, ops)
}
