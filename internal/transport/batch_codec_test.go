package transport

import (
	"reflect"
	"strings"
	"testing"

	"entityres/internal/entity"
	"entityres/internal/incremental"
)

func sampleBatchAcks() []BatchAck {
	return []BatchAck{
		{Seq: 3, Comparisons: 9, Neighbors: [][]entity.ID{{1, 2}, nil, {0}}},
		{Seq: 1, Comparisons: 0, Neighbors: [][]entity.ID{nil}},
		{Seq: 1 << 40, Comparisons: 1 << 50, Neighbors: [][]entity.ID{{1 << 30}}},
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	for _, ops := range [][]incremental.RoutedOp{
		sampleOps(),
		sampleOps()[:1],
	} {
		got, err := decodeBatch(encodeBatch(nil, ops))
		if err != nil {
			t.Fatalf("decode(encode(%d ops)): %v", len(ops), err)
		}
		if !reflect.DeepEqual(got, ops) {
			t.Fatalf("batch did not round-trip:\nin  %+v\nout %+v", ops, got)
		}
	}
}

func TestBatchCodecRejects(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty-payload", nil, "truncated"},
		{"zero-ops", []byte{0}, "no operations"},
		{"count-overruns-payload", []byte{9, 1}, "exceeds remaining payload"},
		{"torn-op", encodeBatch(nil, sampleOps()[:1])[:4], ""},
		{"trailing-bytes", append(encodeBatch(nil, sampleOps()[:1]), 'x'), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeBatch(tc.data)
			if err == nil {
				t.Fatalf("accepted %q", tc.data)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBatchAckCodecRoundTrip(t *testing.T) {
	for _, ack := range sampleBatchAcks() {
		got, err := decodeBatchAck(encodeBatchAck(nil, ack))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", ack, err)
		}
		if !reflect.DeepEqual(got, ack) {
			t.Fatalf("batch ack did not round-trip:\nin  %+v\nout %+v", ack, got)
		}
	}
	// A comparison counter past MaxInt64 must be refused, not wrapped.
	if _, err := decodeBatchAck([]byte{1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0}); err == nil {
		t.Fatal("accepted an overflowing comparison counter")
	}
}

// FuzzBatchCodec drives arbitrary bytes through the batch-frame decoder:
// never a panic, never an accepted batch that fails to round-trip
// bit-exactly.
func FuzzBatchCodec(f *testing.F) {
	f.Add(encodeBatch(nil, sampleOps()))
	f.Add(encodeBatch(nil, sampleOps()[:1]))
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := decodeBatch(data)
		if err != nil {
			return
		}
		again, err := decodeBatch(encodeBatch(nil, ops))
		if err != nil {
			t.Fatalf("re-decoding accepted batch: %v", err)
		}
		if !reflect.DeepEqual(again, ops) {
			t.Fatalf("batch not re-decoded identically:\nfirst  %+v\nsecond %+v", ops, again)
		}
	})
}

// FuzzBatchAckCodec does the same for cumulative acknowledgements.
func FuzzBatchAckCodec(f *testing.F) {
	for _, ack := range sampleBatchAcks() {
		f.Add(encodeBatchAck(nil, ack))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		ack, err := decodeBatchAck(data)
		if err != nil {
			return
		}
		again, err := decodeBatchAck(encodeBatchAck(nil, ack))
		if err != nil || !reflect.DeepEqual(again, ack) {
			t.Fatalf("batch ack not re-decoded identically: %+v vs %+v (%v)", ack, again, err)
		}
	})
}
