package similarity

import "entityres/internal/token"

// QGramSim returns the Jaccard similarity of the padded q-gram sets of a
// and b. It tolerates both typos and token reordering, sitting between
// pure edit distance and pure token overlap.
func QGramSim(a, b string, q int) float64 {
	return Jaccard(token.NewSet(token.QGrams(a, q)...), token.NewSet(token.QGrams(b, q)...))
}

// MongeElkan computes the Monge-Elkan hybrid similarity: for each token of
// a, the best inner similarity against any token of b, averaged. The inner
// measure defaults to JaroWinkler when nil. Note the measure is asymmetric;
// use MongeElkanSym for a symmetric variant.
func MongeElkan(a, b []string, inner func(string, string) float64) float64 {
	if inner == nil {
		inner = JaroWinkler
	}
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sum := 0.0
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := inner(ta, tb); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}

// MongeElkanSym symmetrizes MongeElkan by averaging both directions.
func MongeElkanSym(a, b []string, inner func(string, string) float64) float64 {
	return (MongeElkan(a, b, inner) + MongeElkan(b, a, inner)) / 2
}

// Vector is a sparse weighted term vector (e.g. TF-IDF weights).
type Vector map[string]float64

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, w := range v {
		s += w * w
	}
	return sqrt(s)
}

// Dot returns the dot product of v and o.
func (v Vector) Dot(o Vector) float64 {
	small, large := v, o
	if len(large) < len(small) {
		small, large = large, small
	}
	s := 0.0
	for t, w := range small {
		if w2, ok := large[t]; ok {
			s += w * w2
		}
	}
	return s
}

// Cosine returns the cosine similarity of two weighted vectors; 1 when both
// are empty, 0 when exactly one is empty.
func Cosine(a, b Vector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}
