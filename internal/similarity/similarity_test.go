package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"entityres/internal/token"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccard(t *testing.T) {
	a := token.NewSet("x", "y", "z")
	b := token.NewSet("y", "z", "w")
	if got := Jaccard(a, b); !almost(got, 0.5) {
		t.Fatalf("Jaccard = %v", got)
	}
	if got := Jaccard(token.NewSet(), token.NewSet()); got != 1 {
		t.Fatalf("Jaccard empty = %v", got)
	}
	if got := Jaccard(a, token.NewSet()); got != 0 {
		t.Fatalf("Jaccard vs empty = %v", got)
	}
}

func TestDiceOverlapCosine(t *testing.T) {
	a := token.NewSet("x", "y")
	b := token.NewSet("y")
	if got := Dice(a, b); !almost(got, 2.0/3.0) {
		t.Fatalf("Dice = %v", got)
	}
	if got := Overlap(a, b); !almost(got, 1) {
		t.Fatalf("Overlap = %v", got)
	}
	if got := CosineSets(a, b); !almost(got, 1/math.Sqrt(2)) {
		t.Fatalf("CosineSets = %v", got)
	}
	empty := token.NewSet()
	for name, got := range map[string]float64{
		"dice":    Dice(empty, empty),
		"overlap": Overlap(empty, empty),
		"cosine":  CosineSets(empty, empty),
	} {
		if got != 1 {
			t.Fatalf("%s on empty pair = %v", name, got)
		}
	}
	if Overlap(a, empty) != 0 || CosineSets(a, empty) != 0 {
		t.Fatal("similarity vs empty should be 0")
	}
}

func TestJaccardSortedAgreesWithSet(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := token.NewSet(), token.NewSet()
		for _, x := range xs {
			a.Add(string(rune('a' + x%12)))
		}
		for _, y := range ys {
			b.Add(string(rune('a' + y%12)))
		}
		return almost(JaccardSorted(a.Sorted(), b.Sorted()), Jaccard(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSortedSize(t *testing.T) {
	if got := IntersectSortedSize([]string{"a", "c", "e"}, []string{"b", "c", "e", "f"}); got != 2 {
		t.Fatalf("IntersectSortedSize = %d", got)
	}
	if got := IntersectSortedSize(nil, []string{"a"}); got != 0 {
		t.Fatalf("IntersectSortedSize nil = %d", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"ab", "ba", 2},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Metric properties of Levenshtein on small random strings: symmetry,
// identity, triangle inequality.
func TestLevenshteinMetricProperties(t *testing.T) {
	gen := func(n uint8) string {
		s := make([]byte, n%6)
		for i := range s {
			s[i] = 'a' + byte(i*7+int(n))%3
		}
		return string(s)
	}
	f := func(x, y, z uint8) bool {
		a, b, c := gen(x), gen(y), gen(z)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if Levenshtein(a, a) != 0 {
			return false
		}
		return Levenshtein(a, c) <= dab+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	if got := DamerauLevenshtein("ab", "ba"); got != 1 {
		t.Fatalf("transposition cost = %d, want 1", got)
	}
	if got := DamerauLevenshtein("smith", "smiht"); got != 1 {
		t.Fatalf("DamerauLevenshtein = %d", got)
	}
	if got := DamerauLevenshtein("", "xy"); got != 2 {
		t.Fatalf("empty case = %d", got)
	}
	if got := DamerauLevenshtein("xy", ""); got != 2 {
		t.Fatalf("empty case = %d", got)
	}
}

func TestNormalizedSims(t *testing.T) {
	if got := LevenshteinSim("", ""); got != 1 {
		t.Fatalf("LevenshteinSim empty = %v", got)
	}
	if got := LevenshteinSim("abcd", "abcd"); got != 1 {
		t.Fatalf("identical = %v", got)
	}
	if got := LevenshteinSim("abcd", "wxyz"); got != 0 {
		t.Fatalf("disjoint = %v", got)
	}
	if got := DamerauSim("ab", "ba"); !almost(got, 0.5) {
		t.Fatalf("DamerauSim = %v", got)
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("martha", "marhta"); !almost(got, 0.944444444444444) {
		t.Fatalf("Jaro(martha,marhta) = %v", got)
	}
	if got := Jaro("dixon", "dicksonx"); math.Abs(got-0.7667) > 1e-3 {
		t.Fatalf("Jaro(dixon,dicksonx) = %v", got)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Fatal("Jaro empty cases")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Fatal("Jaro disjoint should be 0")
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); !almost(got, 0.961111111111111) {
		t.Fatalf("JaroWinkler = %v", got)
	}
	// Prefix boost never lowers the score.
	f := func(x, y uint8) bool {
		a := string([]byte{'a' + x%4, 'b', 'c' + y%4})
		b := string([]byte{'a' + y%4, 'b', 'c' + x%4})
		return JaroWinkler(a, b) >= Jaro(a, b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQGramSim(t *testing.T) {
	if got := QGramSim("smith", "smith", 2); got != 1 {
		t.Fatalf("identical q-gram sim = %v", got)
	}
	if got := QGramSim("smith", "smyth", 2); got <= 0 || got >= 1 {
		t.Fatalf("near-match q-gram sim = %v", got)
	}
}

func TestMongeElkan(t *testing.T) {
	a := []string{"alice", "smith"}
	b := []string{"smith", "alicia"}
	s := MongeElkan(a, b, nil)
	if s <= 0.8 || s > 1 {
		t.Fatalf("MongeElkan = %v", s)
	}
	if MongeElkan(nil, nil, nil) != 1 {
		t.Fatal("MongeElkan empty pair should be 1")
	}
	if MongeElkan(a, nil, nil) != 0 {
		t.Fatal("MongeElkan vs empty should be 0")
	}
	sym := MongeElkanSym(a, b, nil)
	if !almost(sym, (MongeElkan(a, b, nil)+MongeElkan(b, a, nil))/2) {
		t.Fatal("MongeElkanSym mismatch")
	}
}

func TestVectorCosine(t *testing.T) {
	a := Vector{"x": 1, "y": 2}
	b := Vector{"x": 1, "y": 2}
	if got := Cosine(a, b); !almost(got, 1) {
		t.Fatalf("Cosine identical = %v", got)
	}
	if got := Cosine(a, Vector{"z": 5}); got != 0 {
		t.Fatalf("Cosine orthogonal = %v", got)
	}
	if Cosine(Vector{}, Vector{}) != 1 {
		t.Fatal("Cosine empty pair should be 1")
	}
	if Cosine(a, Vector{}) != 0 {
		t.Fatal("Cosine vs empty should be 0")
	}
	if got := a.Dot(b); !almost(got, 5) {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Norm(); !almost(got, math.Sqrt(5)) {
		t.Fatalf("Norm = %v", got)
	}
}

// All measures stay within [0,1] on random token material.
func TestRangeProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var sa, sb []string
		for _, x := range xs {
			sa = append(sa, string(rune('a'+x%10)))
		}
		for _, y := range ys {
			sb = append(sb, string(rune('a'+y%10)))
		}
		a, b := token.NewSet(sa...), token.NewSet(sb...)
		stra, strb := "", ""
		for _, s := range sa {
			stra += s
		}
		for _, s := range sb {
			strb += s
		}
		vals := []float64{
			Jaccard(a, b), Dice(a, b), Overlap(a, b), CosineSets(a, b),
			LevenshteinSim(stra, strb), DamerauSim(stra, strb),
			Jaro(stra, strb), JaroWinkler(stra, strb),
			MongeElkan(sa, sb, nil),
		}
		for _, v := range vals {
			if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
