package similarity

import "math"

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions) between a and b, operating on runes. It runs in O(|a|·|b|)
// time and O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes Levenshtein distance into a similarity:
// 1 − dist/max(|a|,|b|); 1 when both strings are empty.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := max(la, lb)
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// DamerauLevenshtein returns the optimal-string-alignment distance, which
// additionally counts transposition of two adjacent runes as one edit —
// the dominant typo class in person and title data.
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i−2, i−1, i.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				cur[j] = min(cur[j], prev2[j-2]+1)
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// DamerauSim normalizes DamerauLevenshtein into a similarity in [0,1].
func DamerauSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := max(la, lb)
	return 1 - float64(DamerauLevenshtein(a, b))/float64(m)
}

// Jaro returns the Jaro similarity of a and b in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix of up to
// four runes, with the standard scaling factor p = 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}
