// Package similarity implements the string- and set-similarity substrate of
// the entity-resolution framework: set measures over token sets (Jaccard,
// Dice, overlap, cosine), character edit measures (Levenshtein, Damerau,
// Jaro, Jaro-Winkler), q-gram similarity, hybrid token-level measures
// (Monge-Elkan) and weighted vector cosine for TF-IDF models.
//
// All measures return values in [0, 1] with 1 meaning identical, so they
// compose freely in matchers, meta-blocking edge weights and progressive
// schedulers.
package similarity

import "entityres/internal/token"

// Jaccard returns |a∩b| / |a∪b|; 1 when both sets are empty.
func Jaccard(a, b token.Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := a.IntersectionSize(b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|a∩b| / (|a|+|b|); 1 when both sets are empty.
func Dice(a, b token.Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	den := len(a) + len(b)
	if den == 0 {
		return 0
	}
	return 2 * float64(a.IntersectionSize(b)) / float64(den)
}

// Overlap returns |a∩b| / min(|a|,|b|); 1 when both sets are empty, 0 when
// exactly one is empty.
func Overlap(a, b token.Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	m := min(len(a), len(b))
	if m == 0 {
		return 0
	}
	return float64(a.IntersectionSize(b)) / float64(m)
}

// CosineSets returns |a∩b| / √(|a|·|b|), the set (binary-vector) cosine.
func CosineSets(a, b token.Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(a.IntersectionSize(b)) / sqrtProduct(len(a), len(b))
}

// JaccardSorted computes Jaccard over two ascending-sorted token slices
// without allocating sets — the hot-path form used by similarity joins.
// Duplicate tokens within one slice must already be removed.
func JaccardSorted(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := IntersectSortedSize(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// IntersectSortedSize returns the intersection size of two ascending-sorted
// deduplicated slices by linear merge.
func IntersectSortedSize(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

func sqrtProduct(a, b int) float64 {
	// Computed via float64 to avoid overflow for large set sizes.
	x := float64(a) * float64(b)
	// Newton iteration is overkill; math.Sqrt is fine, but keep the import
	// surface minimal in this file.
	return sqrt(x)
}
