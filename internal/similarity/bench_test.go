package similarity

import (
	"testing"

	"entityres/internal/token"
)

var benchSink float64

// BenchmarkEditDistances compares the character-level measures on typical
// name-length strings.
func BenchmarkEditDistances(b *testing.B) {
	a, c := "katherine johnson", "catherine jonson"
	b.Run("levenshtein", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = LevenshteinSim(a, c)
		}
	})
	b.Run("damerau", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = DamerauSim(a, c)
		}
	})
	b.Run("jarowinkler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = JaroWinkler(a, c)
		}
	})
	b.Run("qgram2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = QGramSim(a, c, 2)
		}
	})
}

// BenchmarkSetMeasures compares the token-set measures on realistic
// profile sizes.
func BenchmarkSetMeasures(b *testing.B) {
	x := token.NewSet("alice", "smith", "paris", "painter", "1950", "france")
	y := token.NewSet("alicia", "smith", "paris", "artist", "1950")
	b.Run("jaccard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = Jaccard(x, y)
		}
	})
	b.Run("overlap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = Overlap(x, y)
		}
	})
	b.Run("sorted-jaccard", func(b *testing.B) {
		xs, ys := x.Sorted(), y.Sorted()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink = JaccardSorted(xs, ys)
		}
	})
}
