// Package multiblock implements multidimensional overlapping blocks in the
// spirit of MultiBlock [17] (§II of the paper): several blockers — one per
// similarity dimension — each produce a block collection, and the
// collections are aggregated into a single multidimensional one. A
// candidate pair is retained when it co-occurs in at least MinAgree
// dimensions, so agreement across independent similarity views substitutes
// for any single view's precision.
package multiblock

import (
	"fmt"
	"sort"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// Aggregator combines the block collections of several blockers.
type Aggregator struct {
	// Blockers are the similarity dimensions; at least one is required.
	Blockers []blocking.Blocker
	// MinAgree is the number of dimensions that must suggest a pair for it
	// to survive (default: majority, ⌈(len(Blockers)+1)/2⌉).
	MinAgree int
}

// Name implements blocking.Blocker.
func (a *Aggregator) Name() string { return "multiblock" }

// Block implements blocking.Blocker. Each surviving pair becomes one
// two-description block whose key records the agreement count, ordered by
// (agreement desc, pair) so that stronger evidence is processed first.
func (a *Aggregator) Block(c *entity.Collection) (*blocking.Blocks, error) {
	if len(a.Blockers) == 0 {
		return nil, fmt.Errorf("multiblock: no blockers configured")
	}
	minAgree := a.MinAgree
	if minAgree < 1 {
		minAgree = (len(a.Blockers) + 2) / 2
	}
	votes := make(map[entity.Pair]int)
	for _, bl := range a.Blockers {
		bs, err := bl.Block(c)
		if err != nil {
			return nil, fmt.Errorf("multiblock: dimension %s: %w", bl.Name(), err)
		}
		bs.EachDistinctComparison(func(p entity.Pair) bool {
			votes[p]++
			return true
		})
	}
	type scored struct {
		p entity.Pair
		n int
	}
	var keep []scored
	for p, n := range votes {
		if n >= minAgree {
			keep = append(keep, scored{p, n})
		}
	}
	sort.Slice(keep, func(i, j int) bool {
		if keep[i].n != keep[j].n {
			return keep[i].n > keep[j].n
		}
		if keep[i].p.A != keep[j].p.A {
			return keep[i].p.A < keep[j].p.A
		}
		return keep[i].p.B < keep[j].p.B
	})
	bs := blocking.NewBlocks(c.Kind())
	for _, s := range keep {
		b := &blocking.Block{Key: fmt.Sprintf("multi:%d:%d-%d", s.n, s.p.A, s.p.B)}
		for _, id := range []entity.ID{s.p.A, s.p.B} {
			if c.Get(id).Source == 1 {
				b.S1 = append(b.S1, id)
			} else {
				b.S0 = append(b.S0, id)
			}
		}
		bs.Add(b)
	}
	return bs, nil
}
