package multiblock

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// stubBlocker emits a fixed pair list as blocks.
type stubBlocker struct {
	name  string
	pairs [][2]entity.ID
}

func (s *stubBlocker) Name() string { return s.name }

func (s *stubBlocker) Block(c *entity.Collection) (*blocking.Blocks, error) {
	bs := blocking.NewBlocks(c.Kind())
	for _, p := range s.pairs {
		bs.Add(&blocking.Block{Key: s.name, S0: []entity.ID{p[0], p[1]}})
	}
	return bs, nil
}

func collection(n int) *entity.Collection {
	c := entity.NewCollection(entity.Dirty)
	for i := 0; i < n; i++ {
		c.MustAdd(entity.NewDescription("").Add("x", "v"))
	}
	return c
}

func TestAggregatorMajority(t *testing.T) {
	c := collection(4)
	a := &Aggregator{Blockers: []blocking.Blocker{
		&stubBlocker{"d1", [][2]entity.ID{{0, 1}, {2, 3}}},
		&stubBlocker{"d2", [][2]entity.ID{{0, 1}}},
		&stubBlocker{"d3", [][2]entity.ID{{0, 1}, {1, 2}}},
	}}
	bs, err := a.Block(c)
	if err != nil {
		t.Fatal(err)
	}
	pairs := bs.DistinctPairs()
	if !pairs.Contains(0, 1) {
		t.Fatal("3-vote pair lost")
	}
	if pairs.Contains(2, 3) || pairs.Contains(1, 2) {
		t.Fatal("1-vote pair survived majority aggregation")
	}
}

func TestAggregatorMinAgreeOne(t *testing.T) {
	c := collection(4)
	a := &Aggregator{
		MinAgree: 1,
		Blockers: []blocking.Blocker{
			&stubBlocker{"d1", [][2]entity.ID{{0, 1}}},
			&stubBlocker{"d2", [][2]entity.ID{{2, 3}}},
		},
	}
	bs, err := a.Block(c)
	if err != nil {
		t.Fatal(err)
	}
	if bs.DistinctPairs().Len() != 2 {
		t.Fatalf("union size = %d", bs.DistinctPairs().Len())
	}
}

func TestAggregatorOrdering(t *testing.T) {
	c := collection(4)
	a := &Aggregator{
		MinAgree: 1,
		Blockers: []blocking.Blocker{
			&stubBlocker{"d1", [][2]entity.ID{{2, 3}, {0, 1}}},
			&stubBlocker{"d2", [][2]entity.ID{{0, 1}}},
		},
	}
	bs, err := a.Block(c)
	if err != nil {
		t.Fatal(err)
	}
	// Strongest agreement first.
	first := bs.Get(0)
	if first.S0[0] != 0 || first.S0[1] != 1 {
		t.Fatalf("strongest pair not first: %v", first.S0)
	}
}

func TestAggregatorNoBlockers(t *testing.T) {
	if _, err := (&Aggregator{}).Block(collection(2)); err == nil {
		t.Fatal("empty aggregator must error")
	}
}

func TestAggregatorName(t *testing.T) {
	if (&Aggregator{}).Name() != "multiblock" {
		t.Fatal("name")
	}
}
