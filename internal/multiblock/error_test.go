package multiblock

import (
	"errors"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

type failingBlocker struct{}

func (f *failingBlocker) Name() string { return "failing" }

func (f *failingBlocker) Block(*entity.Collection) (*blocking.Blocks, error) {
	return nil, errors.New("boom")
}

func TestAggregatorPropagatesDimensionError(t *testing.T) {
	a := &Aggregator{Blockers: []blocking.Blocker{&failingBlocker{}}}
	_, err := a.Block(entity.NewCollection(entity.Dirty))
	if err == nil || !strings.Contains(err.Error(), "failing") {
		t.Fatalf("err = %v", err)
	}
}
