package metablocking

import (
	"runtime"
	"sync"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
)

// BuildGraphParallel builds the weighted blocking graph with the block list
// sharded across concurrent workers: each shard accumulates co-occurrence
// statistics (common-block counts, reciprocal-comparison mass, blocks per
// description) over a contiguous block range, and the shard partials are
// merged in block order before weighting.
//
// For the counting-based schemes — CBS, ECBS, JS, EJS — every statistic is
// an integer count, so the weights are bit-identical to BuildGraph for any
// worker count. ARCS sums floating-point reciprocals; merging shard
// subtotals can differ from the sequential left-to-right sum in the last
// ulp, so ARCS weights are equal up to that rounding (the edge ranking is
// unaffected except on exact ties).
//
// mapreduce.ParallelBuildGraph computes the same graph as an explicit
// MapReduce job (the distributed formulation the paper surveys) with its
// own weighting tail; this function is the in-process fast path the
// pipeline engine uses. A change to weighting semantics here (in
// graphFromStats, shared with the sequential build) must be mirrored
// there.
func BuildGraphParallel(bs *blocking.Blocks, scheme WeightScheme, workers int) *graph.Graph {
	nb := bs.Len()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		return BuildGraph(bs, scheme)
	}
	type shardAcc struct {
		pairStats map[entity.Pair]*stats
		blocksPer map[entity.ID]int
	}
	kind := bs.Kind()
	accs := make([]shardAcc, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo, hi := s*nb/workers, (s+1)*nb/workers
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			ps := make(map[entity.Pair]*stats)
			bp := make(map[entity.ID]int)
			for i := lo; i < hi; i++ {
				b := bs.Get(i)
				comp := b.Comparisons(kind)
				for _, id := range b.S0 {
					bp[id]++
				}
				for _, id := range b.S1 {
					bp[id]++
				}
				b.EachComparison(kind, func(x, y entity.ID) bool {
					p := entity.NewPair(x, y)
					st, ok := ps[p]
					if !ok {
						st = &stats{}
						ps[p] = st
					}
					st.cbs++
					st.arcs += 1 / float64(comp)
					return true
				})
			}
			accs[s] = shardAcc{pairStats: ps, blocksPer: bp}
		}(s, lo, hi)
	}
	wg.Wait()
	// Merge partials in ascending shard order (= block order).
	pairStats := accs[0].pairStats
	blocksPer := accs[0].blocksPer
	for s := 1; s < workers; s++ {
		for p, st := range accs[s].pairStats {
			dst, ok := pairStats[p]
			if !ok {
				pairStats[p] = st
				continue
			}
			dst.cbs += st.cbs
			dst.arcs += st.arcs
		}
		for id, n := range accs[s].blocksPer {
			blocksPer[id] += n
		}
	}
	return graphFromStats(bs, scheme, pairStats, blocksPer)
}

// RestructureParallel is Restructure with the graph build sharded across
// workers. Pruning and emission are unchanged, so the output equals
// Restructure whenever the weights do (always, for the counting schemes;
// up to last-ulp ARCS rounding otherwise — see BuildGraphParallel).
func (m *MetaBlocker) RestructureParallel(c *entity.Collection, bs *blocking.Blocks, workers int) *blocking.Blocks {
	return m.restructure(c, bs, BuildGraphParallel(bs, m.Weight, workers))
}
