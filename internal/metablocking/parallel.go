package metablocking

import (
	"runtime"
	"sync"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
)

// BuildGraphParallel builds the weighted blocking graph with the block list
// sharded across concurrent workers: each shard accumulates a WeightedGraph
// (common-block counts, reciprocal-comparison mass, blocks per description)
// over a contiguous block range, and the shard partials are merged in block
// order before weighting.
//
// For the counting-based schemes — CBS, ECBS, JS, EJS — every statistic is
// an integer count, so the weights are bit-identical to BuildGraph for any
// worker count. ARCS sums floating-point reciprocals; merging shard
// subtotals can differ from the sequential left-to-right sum in the last
// ulp, so ARCS weights are equal up to that rounding (the edge ranking is
// unaffected except on exact ties).
//
// mapreduce.ParallelBuildGraph computes the same graph as an explicit
// MapReduce job (the distributed formulation the paper surveys) with its
// own weighting tail; this function is the in-process fast path the
// pipeline engine uses. A change to weighting semantics here (in
// WeightedGraph.Graph, shared with the sequential build and the streaming
// resolver) must be mirrored there.
func BuildGraphParallel(bs *blocking.Blocks, scheme WeightScheme, workers int) *graph.Graph {
	nb := bs.Len()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		return BuildGraph(bs, scheme)
	}
	accs := make([]*WeightedGraph, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo, hi := s*nb/workers, (s+1)*nb/workers
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			acc := NewWeightedGraph(bs.Kind())
			for i := lo; i < hi; i++ {
				acc.AccumulateBlock(bs.Get(i))
			}
			accs[s] = acc
		}(s, lo, hi)
	}
	wg.Wait()
	// Merge partials in ascending shard order (= block order).
	merged := accs[0]
	for s := 1; s < workers; s++ {
		merged.Merge(accs[s])
	}
	return merged.Graph(scheme)
}

// RestructureParallel is Restructure with the graph build sharded across
// workers. Pruning and emission are unchanged, so the output equals
// Restructure whenever the weights do (always, for the counting schemes;
// up to last-ulp ARCS rounding otherwise — see BuildGraphParallel).
func (m *MetaBlocker) RestructureParallel(c *entity.Collection, bs *blocking.Blocks, workers int) *blocking.Blocks {
	return m.restructure(c, bs, BuildGraphParallel(bs, m.Weight, workers))
}
