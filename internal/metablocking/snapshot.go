package metablocking

import (
	"fmt"
	"sort"

	"entityres/internal/entity"
)

// WeightedGraphSnapshot is the serializable form of a WeightedGraph: the
// integer co-occurrence statistics (plus the batch-only ARCS masses) in a
// deterministic, validated layout. The durable streaming resolver persists
// the live weighted blocking graph through it at every compaction — the
// statistics are expensive to re-derive from the block index (each
// document's delta scans its keys' full posting lists) but cheap to dump
// and reload, so snapshot restore costs O(pairs) instead of a rebuild.
type WeightedGraphSnapshot struct {
	// Kind is the resolution setting of the graph.
	Kind entity.Kind `json:"kind"`
	// NumBlocks is the number of accumulated comparison-suggesting blocks.
	NumBlocks int `json:"num_blocks"`
	// BlocksPer lists each description's block-appearance count, sorted by
	// ID ascending.
	BlocksPer []DocBlockCount `json:"blocks_per,omitempty"`
	// Pairs lists each co-occurring pair's statistics in canonical (A < B)
	// form, sorted by (A, B) ascending.
	Pairs []PairStats `json:"pairs,omitempty"`
}

// DocBlockCount is one description's block-appearance count.
type DocBlockCount struct {
	ID    entity.ID `json:"id"`
	Count int       `json:"count"`
}

// PairStats is one pair's co-occurrence statistics.
type PairStats struct {
	A    entity.ID `json:"a"`
	B    entity.ID `json:"b"`
	CBS  int       `json:"cbs"`
	ARCS float64   `json:"arcs,omitempty"`
}

// Snapshot dumps the graph's statistics in the deterministic snapshot
// layout. Two graphs with equal statistics snapshot byte-identically once
// encoded, regardless of the maintenance regime that produced them.
func (wg *WeightedGraph) Snapshot() *WeightedGraphSnapshot {
	s := &WeightedGraphSnapshot{Kind: wg.kind, NumBlocks: wg.numBlocks}
	s.BlocksPer = make([]DocBlockCount, 0, len(wg.blocksPer))
	for id, n := range wg.blocksPer {
		s.BlocksPer = append(s.BlocksPer, DocBlockCount{ID: id, Count: n})
	}
	sort.Slice(s.BlocksPer, func(i, j int) bool { return s.BlocksPer[i].ID < s.BlocksPer[j].ID })
	s.Pairs = make([]PairStats, 0, len(wg.pairs))
	for p, st := range wg.pairs {
		s.Pairs = append(s.Pairs, PairStats{A: p.A, B: p.B, CBS: st.cbs, ARCS: st.arcs})
	}
	sort.Slice(s.Pairs, func(i, j int) bool {
		if s.Pairs[i].A != s.Pairs[j].A {
			return s.Pairs[i].A < s.Pairs[j].A
		}
		return s.Pairs[i].B < s.Pairs[j].B
	})
	return s
}

// WeightedGraphFromSnapshot validates a snapshot and rebuilds the graph it
// describes. The restored graph continues under either maintenance regime
// exactly as the original would have.
func WeightedGraphFromSnapshot(s *WeightedGraphSnapshot) (*WeightedGraph, error) {
	if s == nil {
		return nil, fmt.Errorf("metablocking: nil weighted-graph snapshot")
	}
	switch s.Kind {
	case entity.Dirty, entity.CleanClean:
	default:
		return nil, fmt.Errorf("metablocking: snapshot has unknown kind %d", int(s.Kind))
	}
	if s.NumBlocks < 0 {
		return nil, fmt.Errorf("metablocking: snapshot has negative block count %d", s.NumBlocks)
	}
	wg := NewWeightedGraph(s.Kind)
	wg.numBlocks = s.NumBlocks
	for _, bc := range s.BlocksPer {
		if bc.Count <= 0 {
			return nil, fmt.Errorf("metablocking: snapshot credits description %d with %d blocks", bc.ID, bc.Count)
		}
		if _, dup := wg.blocksPer[bc.ID]; dup {
			return nil, fmt.Errorf("metablocking: snapshot lists description %d twice", bc.ID)
		}
		wg.blocksPer[bc.ID] = bc.Count
	}
	for _, ps := range s.Pairs {
		if ps.A >= ps.B {
			return nil, fmt.Errorf("metablocking: snapshot pair (%d,%d) is not in canonical A<B form", ps.A, ps.B)
		}
		if ps.CBS <= 0 {
			return nil, fmt.Errorf("metablocking: snapshot pair (%d,%d) has non-positive CBS %d", ps.A, ps.B, ps.CBS)
		}
		p := entity.NewPair(ps.A, ps.B)
		if _, dup := wg.pairs[p]; dup {
			return nil, fmt.Errorf("metablocking: snapshot lists pair (%d,%d) twice", ps.A, ps.B)
		}
		wg.pairs[p] = &stats{cbs: ps.CBS, arcs: ps.ARCS}
	}
	return wg, nil
}
