package metablocking

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
)

// TestWeightedGraphDeltaEqualsBatch is the core invariant of incremental
// meta-blocking: a WeightedGraph maintained by AddDocument/RemoveDocument
// deltas under random add/remove/re-add churn carries, at every
// checkpoint, exactly the statistics FromBlocks accumulates over the
// surviving membership — and therefore bit-identical CBS/ECBS/JS/EJS
// weights.
func TestWeightedGraphDeltaEqualsBatch(t *testing.T) {
	for _, kind := range []entity.Kind{entity.Dirty, entity.CleanClean} {
		t.Run(kind.String(), func(t *testing.T) {
			var c *entity.Collection
			var err error
			if kind == entity.Dirty {
				c, _, err = datagen.GenerateDirty(datagen.Config{Seed: 17, Entities: 50, DupRatio: 0.6})
			} else {
				c, _, err = datagen.GenerateCleanClean(datagen.Config{Seed: 17, Entities: 50, DupRatio: 0.6})
			}
			if err != nil {
				t.Fatal(err)
			}
			sb := &blocking.TokenBlocking{}
			keyer := sb.StreamKeyer()
			bi := blocking.NewBlockIndex(kind)
			wg := NewWeightedGraph(kind)
			bi.Observe(wg)

			rng := rand.New(rand.NewSource(99))
			descs := c.All()
			live := make(map[entity.ID]bool)
			for step := 0; step < 400; step++ {
				d := descs[rng.Intn(len(descs))]
				if live[d.ID] {
					bi.Remove(d.ID)
					live[d.ID] = false
				} else {
					if err := bi.Add(d.ID, d.Source, keyer(d)); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					live[d.ID] = true
				}
				if step%25 == 0 || step == 399 {
					assertSameStats(t, step, wg, FromBlocks(bi.Blocks()))
				}
			}
		})
	}
}

// assertSameStats compares every maintained statistic and the materialized
// weights of the counting schemes. ARCS is exempt: its reciprocal mass is
// only accumulated by the batch regime (the documented reason streaming
// rejects it).
func assertSameStats(t *testing.T, step int, got, want *WeightedGraph) {
	t.Helper()
	if got.NumBlocks() != want.NumBlocks() {
		t.Fatalf("step %d: NumBlocks = %d, batch = %d", step, got.NumBlocks(), want.NumBlocks())
	}
	if got.NumPairs() != want.NumPairs() {
		t.Fatalf("step %d: NumPairs = %d, batch = %d", step, got.NumPairs(), want.NumPairs())
	}
	want.EachPair(func(p entity.Pair, cbs int) bool {
		if g := got.CommonBlocks(p); g != cbs {
			t.Fatalf("step %d: CommonBlocks(%v) = %d, batch = %d", step, p, g, cbs)
		}
		if g, w := got.BlockCount(p.A), want.BlockCount(p.A); g != w {
			t.Fatalf("step %d: BlockCount(%d) = %d, batch = %d", step, p.A, g, w)
		}
		return true
	})
	for _, scheme := range []WeightScheme{CBS, ECBS, JS, EJS} {
		ge, we := got.Graph(scheme).Edges(), want.Graph(scheme).Edges()
		if !reflect.DeepEqual(ge, we) {
			t.Fatalf("step %d: %s weights diverge:\nincremental %v\nbatch       %v", step, scheme, ge, we)
		}
	}
}

// TestWeightedGraphSpringsAndDissolves pins the block-existence edge
// cases: a block contributes nothing until it suggests a comparison, is
// credited to all members the moment it does, and is debited from all the
// moment it no longer does.
func TestWeightedGraphSpringsAndDissolves(t *testing.T) {
	bi := blocking.NewBlockIndex(entity.Dirty)
	wg := NewWeightedGraph(entity.Dirty)
	bi.Observe(wg)

	if err := bi.Add(1, 0, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	// A singleton block suggests no comparison and stays invisible.
	if wg.NumBlocks() != 0 || wg.BlockCount(1) != 0 {
		t.Fatalf("singleton block counted: blocks=%d count=%d", wg.NumBlocks(), wg.BlockCount(1))
	}
	if err := bi.Add(2, 0, []string{"k", "solo"}); err != nil {
		t.Fatal(err)
	}
	// The second member springs "k" into existence for BOTH members; the
	// still-singleton "solo" stays out.
	if wg.NumBlocks() != 1 || wg.BlockCount(1) != 1 || wg.BlockCount(2) != 1 {
		t.Fatalf("after spring: blocks=%d counts=%d/%d", wg.NumBlocks(), wg.BlockCount(1), wg.BlockCount(2))
	}
	if cbs := wg.CommonBlocks(entity.NewPair(1, 2)); cbs != 1 {
		t.Fatalf("CommonBlocks(1,2) = %d, want 1", cbs)
	}
	// Removing 2 dissolves "k": every statistic returns to zero.
	bi.Remove(2)
	if wg.NumBlocks() != 0 || wg.NumPairs() != 0 || wg.BlockCount(1) != 0 {
		t.Fatalf("after dissolve: blocks=%d pairs=%d count=%d", wg.NumBlocks(), wg.NumPairs(), wg.BlockCount(1))
	}
}

// TestWeightedGraphCleanCleanSides: a one-sided clean-clean block never
// contributes, and only cross-source pairs exist.
func TestWeightedGraphCleanCleanSides(t *testing.T) {
	bi := blocking.NewBlockIndex(entity.CleanClean)
	wg := NewWeightedGraph(entity.CleanClean)
	bi.Observe(wg)
	for id, src := range map[entity.ID]int{1: 0, 2: 0, 3: 1} {
		if err := bi.Add(id, src, []string{"k"}); err != nil {
			t.Fatal(err)
		}
	}
	if wg.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d, want 1", wg.NumBlocks())
	}
	if wg.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d, want 2 (cross-source only)", wg.NumPairs())
	}
	if wg.CommonBlocks(entity.NewPair(1, 2)) != 0 {
		t.Fatal("same-source pair {1,2} counted")
	}
	// Removing the only source-1 member makes the block one-sided again.
	bi.Remove(3)
	if wg.NumBlocks() != 0 || wg.NumPairs() != 0 || wg.BlockCount(1) != 0 {
		t.Fatalf("one-sided block still counted: blocks=%d pairs=%d", wg.NumBlocks(), wg.NumPairs())
	}
}

// TestValidateStreaming pins the accept set and the specific rejection
// reasons of the stream-safety check.
func TestValidateStreaming(t *testing.T) {
	for _, w := range []WeightScheme{CBS, ECBS, JS} {
		for _, p := range []PruneScheme{WEP, WNP} {
			m := &MetaBlocker{Weight: w, Prune: p, Reciprocal: true}
			if err := m.ValidateStreaming(); err != nil {
				t.Errorf("%s rejected: %v", m.Name(), err)
			}
		}
	}
	rejected := map[string]*MetaBlocker{
		"EJS weighting cannot stream":  {Weight: EJS, Prune: WEP},
		"ARCS weighting cannot stream": {Weight: ARCS, Prune: WNP},
		"CEP pruning cannot stream":    {Weight: CBS, Prune: CEP},
		"CNP pruning cannot stream":    {Weight: JS, Prune: CNP},
	}
	for want, m := range rejected {
		err := m.ValidateStreaming()
		if err == nil {
			t.Errorf("%s accepted by ValidateStreaming", m.Name())
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error %q does not carry %q", m.Name(), err, want)
		}
	}
	for _, m := range []*MetaBlocker{
		{Weight: WeightScheme(99), Prune: WEP},
		{Weight: CBS, Prune: PruneScheme(99)},
	} {
		if err := m.ValidateStreaming(); err == nil || !strings.Contains(err.Error(), "unknown") {
			t.Errorf("%s: unknown scheme not rejected, err=%v", m.Name(), err)
		}
	}
}

// TestFromBlocksMatchesBuildGraph: the batch regime of the WeightedGraph
// reproduces BuildGraph exactly for every scheme (they share the code, but
// this pins the refactor against the original public contract).
func TestFromBlocksMatchesBuildGraph(t *testing.T) {
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: 5, Entities: 80, DupRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	wg := FromBlocks(bs)
	if wg.Kind() != bs.Kind() {
		t.Fatalf("Kind = %v, want %v", wg.Kind(), bs.Kind())
	}
	for _, scheme := range WeightSchemes() {
		got, want := wg.Graph(scheme).Edges(), BuildGraph(bs, scheme).Edges()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: FromBlocks weights diverge from BuildGraph", scheme)
		}
	}
	// EachPair enumerates every edge exactly once.
	seen := 0
	wg.EachPair(func(p entity.Pair, cbs int) bool {
		if cbs <= 0 {
			t.Fatalf("EachPair(%v) cbs = %d", p, cbs)
		}
		seen++
		return true
	})
	if seen != wg.NumPairs() {
		t.Fatalf("EachPair enumerated %d pairs, NumPairs = %d", seen, wg.NumPairs())
	}
	wg.EachPair(func(entity.Pair, int) bool { return false }) // early stop
}

// TestWeightedGraphBumpDefensive: a negative delta for an untracked pair is
// ignored rather than creating a phantom negative-count edge.
func TestWeightedGraphBumpDefensive(t *testing.T) {
	wg := NewWeightedGraph(entity.Dirty)
	wg.bump(entity.NewPair(1, 2), -1)
	if wg.NumPairs() != 0 {
		t.Fatalf("NumPairs = %d after negative bump of untracked pair", wg.NumPairs())
	}
	if wg.CommonBlocks(entity.NewPair(1, 2)) != 0 {
		t.Fatal("phantom pair created")
	}
}

// TestMergeLeavesSourceIndependent: merged graphs must not share stats
// storage — mutating either afterwards cannot leak into the other.
func TestMergeLeavesSourceIndependent(t *testing.T) {
	b := &blocking.Block{Key: "k", S0: []entity.ID{1, 2}}
	src := NewWeightedGraph(entity.Dirty)
	src.AccumulateBlock(b)
	dst := NewWeightedGraph(entity.Dirty)
	dst.Merge(src)
	dst.AccumulateBlock(b) // bump the pair only in dst
	p := entity.NewPair(1, 2)
	if got := src.CommonBlocks(p); got != 1 {
		t.Fatalf("source CommonBlocks mutated through merge: %d, want 1", got)
	}
	if got := dst.CommonBlocks(p); got != 2 {
		t.Fatalf("merged CommonBlocks = %d, want 2", got)
	}
}
