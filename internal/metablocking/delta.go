// Delta pruning: re-deriving WEP/WNP fates for only the edges that could
// have changed since the last reconcile, bit-exactly with a full
// PruneGraph pass.
//
// The full pruners (metablocking.go) rescan every edge on every call. The
// DeltaPruner instead rides a ChangeSet (changes.go) over the live
// WeightedGraph and maintains the pruning statistics — edge weights, the
// exact WEP global sum, the exact WNP per-node sums — incrementally. A
// Sync examines only the candidate set: edges whose statistics moved,
// edges whose weight expression depends on a moved statistic, and (for
// WEP) unchanged edges whose weight lies inside the inclusive band swept
// by the threshold between the old and new mean — provably the only
// untouched edges whose fate can flip. Because the sums are exact
// (exact.go, order-independent), the fate every candidate receives equals
// the fate the full pruner would assign, and non-candidates provably keep
// their previous fate — so the kept set after Apply is identical, edge for
// edge and bit for bit, to PruneGraph over a fresh materialization.
//
// Candidate expansion per weight scheme:
//
//   - CBS: an edge's weight is its own common-block count — dirty pairs
//     suffice.
//   - JS: the weight also divides by both endpoints' block counts — dirty
//     pairs plus every edge incident to a dirty node.
//   - ECBS: the weight additionally multiplies by log(|B|/|B_x|); when the
//     total block count changed, every weight in the graph moves and the
//     sync degrades to a full re-derive (still bit-exact; accepted
//     degradation), otherwise it expands like JS.
//
// And per prune scheme:
//
//   - WEP: the global mean moves only when the sum or edge count does; an
//     untouched edge flips only if its weight lies in [min(thr,thr'),
//     max(thr,thr')], found via a bucketed weight index in time
//     proportional to the band.
//   - WNP: a node's local mean moves only when an incident edge's weight
//     or its degree changed; the (conservative) band is the full
//     neighborhood of every such node — already delta-proportional, so no
//     index is kept.
//
// Sync/Apply are split for cancellation safety: Sync commits the pure
// statistics (weights, sums, thresholds, adjacency — all re-derivable from
// the graph) but never the kept set. The caller evaluates the returned
// refates (matcher calls may fail mid-way) and either Apply-s them,
// committing the fate flips, or Requeue-s them, returning the pairs to the
// pending log so the next Sync re-derives the same refates against the
// unchanged kept set.
package metablocking

import (
	"fmt"
	"math"
	"sort"

	"entityres/internal/entity"
	"entityres/internal/graph"
)

// Refate is one candidate edge's re-derived pruning fate. Sync returns
// only consequential refates: those kept now or kept before (an edge both
// out before and out now changes nothing downstream).
type Refate struct {
	Pair entity.Pair
	// Weight is the edge's current weight; meaningless when !InGraph.
	Weight float64
	// InGraph reports whether the pair still co-occurs at all.
	InGraph bool
	// WasKept is the fate before this sync, Kept the fate after.
	WasKept, Kept bool
}

// DeltaPruner maintains WEP/WNP pruning fates incrementally over a live
// WeightedGraph. Not safe for concurrent use; the streaming resolver
// serializes reconciles.
type DeltaPruner struct {
	wg  *WeightedGraph
	m   MetaBlocker
	log *ChangeSet

	// Mirror of the graph's edge weights as of the last Sync.
	weights map[entity.Pair]float64
	// adjacency over the mirrored edges: JS/ECBS candidate expansion and
	// WNP degrees/neighborhoods.
	adj map[entity.ID]map[entity.ID]struct{}
	// kept is the committed fate set: pair → weight at commit time.
	kept map[entity.Pair]float64

	// WEP state: exact global sum, last threshold, bucketed weight index.
	sum   exactSum
	thr   float64
	index weightIndex

	// WNP state: exact per-node sums and last per-node thresholds.
	nodeSum map[entity.ID]*exactSum
	nodeThr map[entity.ID]float64

	examined int64
}

// NewDeltaPruner registers a pruner on wg. The configuration must satisfy
// ValidateStreaming (the resolver checks at construction); everything
// currently in the graph is pending, so the first Sync is a full derive.
func NewDeltaPruner(wg *WeightedGraph, m MetaBlocker) *DeltaPruner {
	if err := m.ValidateStreaming(); err != nil {
		panic(err)
	}
	p := &DeltaPruner{
		wg:      wg,
		m:       m,
		log:     wg.Track(),
		weights: make(map[entity.Pair]float64),
		adj:     make(map[entity.ID]map[entity.ID]struct{}),
		kept:    make(map[entity.Pair]float64),
	}
	if m.Prune == WNP {
		p.nodeSum = make(map[entity.ID]*exactSum)
		p.nodeThr = make(map[entity.ID]float64)
	} else {
		p.index.buckets = make(map[uint64]map[entity.Pair]struct{})
	}
	for pr := range wg.pairs {
		p.log.pairs[pr] = struct{}{}
	}
	return p
}

// Seed declares the previously committed kept set — restoring a snapshot
// or adopting bootstrapped match edges — and schedules every seeded pair
// for re-examination, so the first Sync diffs the fresh derivation against
// this baseline exactly like the old full reconcile diffed against its
// remembered kept list. Seeded pairs absent from the graph surface as
// removal refates (stale-edge cleanup).
func (p *DeltaPruner) Seed(kept []graph.Edge) {
	for _, e := range kept {
		pr := entity.NewPair(e.A, e.B)
		p.kept[pr] = e.Weight
		p.log.pairs[pr] = struct{}{}
	}
}

// Sync folds the pending graph changes into the pruning statistics and
// returns the consequential refates, sorted by pair. It does NOT commit
// the fates — call Apply after acting on them, or Requeue on failure.
func (p *DeltaPruner) Sync() []Refate {
	pairs, nodes, blocksChanged := p.log.drain()
	if len(pairs) == 0 && len(nodes) == 0 && !blocksChanged {
		return nil
	}
	dirty := pairs

	// Expand to edges whose weight expression depends on a moved statistic.
	switch p.m.Weight {
	case CBS:
		// Weight is the pair's own count; dirty pairs suffice.
	case ECBS:
		if blocksChanged {
			// log(|B|/|B_x|) moved for every edge: full re-derive.
			for pr := range p.weights {
				dirty[pr] = struct{}{}
			}
			break
		}
		fallthrough
	case JS:
		for id := range nodes {
			for nb := range p.adj[id] {
				dirty[entity.NewPair(id, nb)] = struct{}{}
			}
		}
	}

	// Recompute the dirty weights, maintaining sums, index and adjacency.
	wnp := p.m.Prune == WNP
	var moved map[entity.ID]struct{}
	if wnp {
		moved = make(map[entity.ID]struct{})
	}
	sumsChanged := false
	touch := func(pr entity.Pair) {
		sumsChanged = true
		if wnp {
			moved[pr.A] = struct{}{}
			moved[pr.B] = struct{}{}
		}
	}
	for pr := range dirty {
		oldW, had := p.weights[pr]
		st, in := p.wg.pairs[pr]
		switch {
		case in:
			newW := p.wg.weightOf(pr, st, p.m.Weight)
			if had && newW == oldW {
				continue
			}
			if had {
				p.dropWeight(pr, oldW)
			} else {
				p.link(pr)
			}
			p.putWeight(pr, newW)
			p.weights[pr] = newW
			touch(pr)
		case had:
			p.dropWeight(pr, oldW)
			p.unlink(pr)
			delete(p.weights, pr)
			touch(pr)
		}
	}

	// Move the thresholds and pull in the untouched edges inside the band.
	n := len(p.weights)
	if wnp {
		for id := range moved {
			if len(p.adj[id]) == 0 {
				delete(p.nodeSum, id)
				delete(p.nodeThr, id)
				continue
			}
			p.nodeThr[id] = p.nodeSum[id].Mean(len(p.adj[id]))
			// The node's whole neighborhood is the (conservative) band.
			for nb := range p.adj[id] {
				dirty[entity.NewPair(id, nb)] = struct{}{}
			}
		}
	} else {
		oldThr := p.thr
		if n == 0 {
			p.thr = 0
		} else {
			p.thr = p.sum.Mean(n)
		}
		if sumsChanged && p.thr != oldThr {
			lo, hi := oldThr, p.thr
			if lo > hi {
				lo, hi = hi, lo
			}
			p.index.eachInBand(lo, hi, p.weights, func(pr entity.Pair) {
				dirty[pr] = struct{}{}
			})
		}
	}

	// Re-derive every candidate's fate against the new thresholds.
	refates := make([]Refate, 0, len(dirty))
	var tieKeep, tieValid bool
	for pr := range dirty {
		p.examined++
		w, in := p.weights[pr]
		_, wasKept := p.kept[pr]
		kept := false
		if in {
			if wnp {
				kept = p.keepWNP(pr, w)
			} else {
				kept = p.keepWEP(w, n, &tieKeep, &tieValid)
			}
		}
		if wasKept || kept {
			refates = append(refates, Refate{Pair: pr, Weight: w, InGraph: in, WasKept: wasKept, Kept: kept})
		}
	}
	sort.Slice(refates, func(i, j int) bool {
		if refates[i].Pair.A != refates[j].Pair.A {
			return refates[i].Pair.A < refates[j].Pair.A
		}
		return refates[i].Pair.B < refates[j].Pair.B
	})
	return refates
}

// Apply commits the refates' fates to the kept set.
func (p *DeltaPruner) Apply(refates []Refate) {
	for _, f := range refates {
		if f.Kept {
			p.kept[f.Pair] = f.Weight
		} else {
			delete(p.kept, f.Pair)
		}
	}
}

// Requeue returns the refates' pairs to the pending log after the caller
// failed to act on them (a cancelled or failed evaluation), so the next
// Sync re-derives the same fates against the unchanged kept set.
func (p *DeltaPruner) Requeue(refates []Refate) {
	for _, f := range refates {
		p.log.pairs[f.Pair] = struct{}{}
	}
}

// KeptCount returns the size of the committed kept set.
func (p *DeltaPruner) KeptCount() int { return len(p.kept) }

// KeptEdges returns the committed kept set as edges sorted by pair — the
// same set a full PruneGraph over the current graph would retain (after
// the pending changes are synced and applied).
func (p *DeltaPruner) KeptEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(p.kept))
	for pr, w := range p.kept {
		out = append(out, graph.Edge{A: pr.A, B: pr.B, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Examined returns the cumulative number of candidate fate derivations —
// the delta-proportional work metric the benchmarks report.
func (p *DeltaPruner) Examined() int64 { return p.examined }

// Pending reports whether changes await the next Sync.
func (p *DeltaPruner) Pending() bool { return !p.log.Empty() }

func (p *DeltaPruner) keepWEP(w float64, n int, tieKeep, tieValid *bool) bool {
	if w > p.thr {
		return true
	}
	if w < p.thr {
		return false
	}
	// All ties this sync share one exact verdict; derive it once.
	if !*tieValid {
		*tieKeep = p.sum.atLeastMean(w, n)
		*tieValid = true
	}
	return *tieKeep
}

func (p *DeltaPruner) keepWNP(pr entity.Pair, w float64) bool {
	inA := p.keepNode(pr.A, w)
	inB := p.keepNode(pr.B, w)
	if p.m.Reciprocal {
		return inA && inB
	}
	return inA || inB
}

func (p *DeltaPruner) keepNode(id entity.ID, w float64) bool {
	// id has at least this incident edge, so its sum and threshold exist.
	return p.nodeSum[id].keepAtLeastMean(w, p.nodeThr[id], len(p.adj[id]))
}

func (p *DeltaPruner) putWeight(pr entity.Pair, w float64) {
	if p.m.Prune == WNP {
		p.nodeAcc(pr.A).Add(w)
		p.nodeAcc(pr.B).Add(w)
		return
	}
	p.sum.Add(w)
	p.index.add(pr, w)
}

func (p *DeltaPruner) dropWeight(pr entity.Pair, w float64) {
	if p.m.Prune == WNP {
		p.nodeAcc(pr.A).Sub(w)
		p.nodeAcc(pr.B).Sub(w)
		return
	}
	p.sum.Sub(w)
	p.index.remove(pr, w)
}

func (p *DeltaPruner) nodeAcc(id entity.ID) *exactSum {
	s, ok := p.nodeSum[id]
	if !ok {
		s = &exactSum{}
		p.nodeSum[id] = s
	}
	return s
}

func (p *DeltaPruner) link(pr entity.Pair) {
	p.halfLink(pr.A, pr.B)
	p.halfLink(pr.B, pr.A)
}

func (p *DeltaPruner) halfLink(a, b entity.ID) {
	ns, ok := p.adj[a]
	if !ok {
		ns = make(map[entity.ID]struct{})
		p.adj[a] = ns
	}
	ns[b] = struct{}{}
}

func (p *DeltaPruner) unlink(pr entity.Pair) {
	p.halfUnlink(pr.A, pr.B)
	p.halfUnlink(pr.B, pr.A)
}

func (p *DeltaPruner) halfUnlink(a, b entity.ID) {
	ns := p.adj[a]
	delete(ns, b)
	if len(ns) == 0 {
		delete(p.adj, a)
	}
}

// weightIndex buckets edges by the high bits of their weight's IEEE-754
// representation. For non-negative floats the bit pattern orders like the
// value, so a weight band maps to a contiguous bucket-key range that can
// be stepped through in time proportional to its width.
type weightIndex struct {
	buckets map[uint64]map[entity.Pair]struct{}
}

// bucketShift keeps the top 24 bits (sign, exponent, 12 mantissa bits):
// ~4096 buckets per power of two, so typical threshold movements span few
// buckets.
const bucketShift = 40

// maxBandBuckets caps the stepped range; a band wider than this falls back
// to one full scan of the mirrored weights (correct, just not
// delta-proportional).
const maxBandBuckets = 1 << 12

func bucketOf(w float64) uint64 { return math.Float64bits(w) >> bucketShift }

func (ix *weightIndex) add(pr entity.Pair, w float64) {
	k := bucketOf(w)
	b, ok := ix.buckets[k]
	if !ok {
		b = make(map[entity.Pair]struct{})
		ix.buckets[k] = b
	}
	b[pr] = struct{}{}
}

func (ix *weightIndex) remove(pr entity.Pair, w float64) {
	k := bucketOf(w)
	b, ok := ix.buckets[k]
	if !ok {
		panic(fmt.Sprintf("metablocking: weight index missing bucket %#x for pair (%d,%d)", k, pr.A, pr.B))
	}
	delete(b, pr)
	if len(b) == 0 {
		delete(ix.buckets, k)
	}
}

// eachInBand visits every indexed pair whose weight could lie in the
// inclusive band [lo, hi]. Bucket members slightly outside the band are
// visited too — harmless extra candidates whose fates re-derive unchanged.
func (ix *weightIndex) eachInBand(lo, hi float64, weights map[entity.Pair]float64, fn func(entity.Pair)) {
	kLo, kHi := bucketOf(lo), bucketOf(hi)
	if kHi-kLo >= maxBandBuckets {
		for pr, w := range weights {
			if w >= lo && w <= hi {
				fn(pr)
			}
		}
		return
	}
	for k := kLo; k <= kHi; k++ {
		for pr := range ix.buckets[k] {
			fn(pr)
		}
	}
}
