package metablocking

import (
	"reflect"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
)

// snapshotFixture builds a weighted graph with non-trivial statistics.
func snapshotFixture(t *testing.T) *WeightedGraph {
	t.Helper()
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "a", S0: []entity.ID{0, 1, 2}})
	bs.Add(&blocking.Block{Key: "b", S0: []entity.ID{1, 2, 3}})
	bs.Add(&blocking.Block{Key: "c", S0: []entity.ID{0, 3}})
	return FromBlocks(bs)
}

func TestWeightedGraphSnapshotRoundTrip(t *testing.T) {
	wg := snapshotFixture(t)
	snap := wg.Snapshot()
	got, err := WeightedGraphFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != wg.Kind() || got.NumBlocks() != wg.NumBlocks() || got.NumPairs() != wg.NumPairs() {
		t.Fatalf("restored shape differs: kind %v/%v blocks %d/%d pairs %d/%d",
			got.Kind(), wg.Kind(), got.NumBlocks(), wg.NumBlocks(), got.NumPairs(), wg.NumPairs())
	}
	// Every weighting scheme materializes identical graphs from the
	// restored statistics — the restored snapshot is bit-exact.
	for _, scheme := range []WeightScheme{CBS, ECBS, JS, EJS, ARCS} {
		want := wg.Graph(scheme).Edges()
		have := got.Graph(scheme).Edges()
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("%v weights diverge after round trip:\nwant %v\ngot  %v", scheme, want, have)
		}
	}
	// Snapshots are deterministic: same statistics, same layout.
	if !reflect.DeepEqual(snap, got.Snapshot()) {
		t.Fatal("snapshot of restored graph differs from the original snapshot")
	}
}

func TestWeightedGraphSnapshotRestoredGraphKeepsMaintaining(t *testing.T) {
	// A restored graph continues under delta maintenance exactly as the
	// original. This mirrors the durable resolver's recovery sequence:
	// restore the graph from the snapshot, rebuild the block index WITHOUT
	// observers (or every Add would double-count into the restored
	// statistics), then attach the graph for subsequent deltas.
	seedIndex := func(bi *blocking.BlockIndex) {
		bi.Add(0, 0, []string{"x", "y"})
		bi.Add(1, 0, []string{"x"})
		bi.Add(2, 0, []string{"y", "z"})
	}
	live, wgLive := blocking.NewBlockIndex(entity.Dirty), NewWeightedGraph(entity.Dirty)
	live.Observe(wgLive)
	seedIndex(live)

	restored, err := WeightedGraphFromSnapshot(wgLive.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	recovered := blocking.NewBlockIndex(entity.Dirty)
	seedIndex(recovered)        // membership rebuilt silently
	recovered.Observe(restored) // observe only after the rebuild

	// The same post-restore delta on both sides.
	for _, bi := range []*blocking.BlockIndex{live, recovered} {
		bi.Add(3, 0, []string{"z", "x"})
		bi.Remove(1)
	}
	if !reflect.DeepEqual(wgLive.Snapshot(), restored.Snapshot()) {
		t.Fatalf("restored graph drifts under continued maintenance:\nwant %+v\ngot  %+v", wgLive.Snapshot(), restored.Snapshot())
	}
}

func TestWeightedGraphSnapshotValidation(t *testing.T) {
	base := snapshotFixture(t).Snapshot()
	cases := []struct {
		name   string
		mutate func(s *WeightedGraphSnapshot)
	}{
		{"unknown kind", func(s *WeightedGraphSnapshot) { s.Kind = 9 }},
		{"negative blocks", func(s *WeightedGraphSnapshot) { s.NumBlocks = -1 }},
		{"zero appearance count", func(s *WeightedGraphSnapshot) { s.BlocksPer[0].Count = 0 }},
		{"duplicate description", func(s *WeightedGraphSnapshot) { s.BlocksPer[1] = s.BlocksPer[0] }},
		{"non-canonical pair", func(s *WeightedGraphSnapshot) { s.Pairs[0].A, s.Pairs[0].B = s.Pairs[0].B, s.Pairs[0].A }},
		{"non-positive cbs", func(s *WeightedGraphSnapshot) { s.Pairs[0].CBS = 0 }},
		{"duplicate pair", func(s *WeightedGraphSnapshot) { s.Pairs[1] = s.Pairs[0] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := snapshotFixture(t).Snapshot()
			tc.mutate(s)
			if _, err := WeightedGraphFromSnapshot(s); err == nil {
				t.Fatalf("validation accepted %s", tc.name)
			}
		})
	}
	if _, err := WeightedGraphFromSnapshot(nil); err == nil {
		t.Fatal("validation accepted nil snapshot")
	}
	if _, err := WeightedGraphFromSnapshot(base); err != nil {
		t.Fatalf("validation rejected a well-formed snapshot: %v", err)
	}
}
