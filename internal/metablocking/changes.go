// Change tracking over WeightedGraph: the dirt feed of everything that
// wants to stay proportional to the delta instead of rescanning the graph.
// A tracker (ChangeSet) registered through Track receives every statistic
// the graph touches from that moment on — pairs whose co-occurrence counts
// moved, descriptions whose block-appearance counts moved, and whether the
// comparison-suggesting block count changed. Two independent consumers ride
// it today: the DeltaPruner (delta.go) drains one tracker per reconcile,
// and the durable resolver's delta snapshots (internal/incremental) drain
// another per checkpoint — their lifetimes differ, so each holds its own.
package metablocking

import (
	"fmt"
	"sort"

	"entityres/internal/entity"
)

// ChangeSet accumulates the statistics a WeightedGraph touched since the
// set was created or last drained. The zero value is not usable; obtain one
// through WeightedGraph.Track.
type ChangeSet struct {
	pairs  map[entity.Pair]struct{}
	nodes  map[entity.ID]struct{}
	blocks bool
}

func newChangeSet() *ChangeSet {
	return &ChangeSet{
		pairs: make(map[entity.Pair]struct{}),
		nodes: make(map[entity.ID]struct{}),
	}
}

// Empty reports whether nothing changed since the last drain.
func (c *ChangeSet) Empty() bool {
	return len(c.pairs) == 0 && len(c.nodes) == 0 && !c.blocks
}

// drain hands the accumulated dirt to the caller and resets the set.
func (c *ChangeSet) drain() (pairs map[entity.Pair]struct{}, nodes map[entity.ID]struct{}, blocks bool) {
	pairs, nodes, blocks = c.pairs, c.nodes, c.blocks
	c.pairs = make(map[entity.Pair]struct{}, 16)
	c.nodes = make(map[entity.ID]struct{}, 16)
	c.blocks = false
	return pairs, nodes, blocks
}

// Reset discards the accumulated dirt without rendering it — the consumer
// captured the whole graph some other way (a full snapshot) and the
// tracked changes are subsumed.
func (c *ChangeSet) Reset() {
	c.drain()
}

// Track registers and returns a fresh change set: it sees nothing of the
// graph's existing state (consumers that need a baseline build it
// themselves) and every mutation from now on.
func (wg *WeightedGraph) Track() *ChangeSet {
	cs := newChangeSet()
	wg.trackers = append(wg.trackers, cs)
	return cs
}

func (wg *WeightedGraph) markPair(p entity.Pair) {
	for _, t := range wg.trackers {
		t.pairs[p] = struct{}{}
	}
}

func (wg *WeightedGraph) markNode(id entity.ID) {
	for _, t := range wg.trackers {
		t.nodes[id] = struct{}{}
	}
}

func (wg *WeightedGraph) markBlocks() {
	for _, t := range wg.trackers {
		t.blocks = true
	}
}

// WeightedGraphDelta is the serializable statistics delta between two
// points of a tracked graph's life: only the entries a ChangeSet saw
// touched, with their CURRENT values (a zero count marks a removed entry).
// The durable streaming resolver chains these into incremental snapshots.
type WeightedGraphDelta struct {
	// NumBlocks is the absolute comparison-suggesting block count at delta
	// time (one integer — not worth differencing).
	NumBlocks int `json:"num_blocks"`
	// BlocksPer lists the touched descriptions' current block-appearance
	// counts, ID ascending; Count 0 removes the entry.
	BlocksPer []DocBlockCount `json:"blocks_per,omitempty"`
	// Pairs lists the touched pairs' current statistics, (A, B) ascending;
	// CBS 0 removes the pair.
	Pairs []PairStats `json:"pairs,omitempty"`
}

// DeltaSince drains the tracker and renders the touched statistics at
// their current values, in the deterministic snapshot order.
func (wg *WeightedGraph) DeltaSince(cs *ChangeSet) *WeightedGraphDelta {
	pairs, nodes, _ := cs.drain()
	d := &WeightedGraphDelta{NumBlocks: wg.numBlocks}
	for id := range nodes {
		d.BlocksPer = append(d.BlocksPer, DocBlockCount{ID: id, Count: wg.blocksPer[id]})
	}
	sort.Slice(d.BlocksPer, func(i, j int) bool { return d.BlocksPer[i].ID < d.BlocksPer[j].ID })
	for p := range pairs {
		ps := PairStats{A: p.A, B: p.B}
		if st, ok := wg.pairs[p]; ok {
			ps.CBS, ps.ARCS = st.cbs, st.arcs
		}
		d.Pairs = append(d.Pairs, ps)
	}
	sort.Slice(d.Pairs, func(i, j int) bool {
		if d.Pairs[i].A != d.Pairs[j].A {
			return d.Pairs[i].A < d.Pairs[j].A
		}
		return d.Pairs[i].B < d.Pairs[j].B
	})
	return d
}

// ApplyDelta overwrites the delta's entries onto the graph, advancing a
// restored baseline by one chain link. Registered trackers observe the
// writes like any mutation.
func (wg *WeightedGraph) ApplyDelta(d *WeightedGraphDelta) error {
	if d == nil {
		return fmt.Errorf("metablocking: nil weighted-graph delta")
	}
	if d.NumBlocks < 0 {
		return fmt.Errorf("metablocking: delta has negative block count %d", d.NumBlocks)
	}
	if wg.numBlocks != d.NumBlocks {
		wg.numBlocks = d.NumBlocks
		wg.markBlocks()
	}
	for _, bc := range d.BlocksPer {
		if bc.Count <= 0 {
			delete(wg.blocksPer, bc.ID)
		} else {
			wg.blocksPer[bc.ID] = bc.Count
		}
		wg.markNode(bc.ID)
	}
	for _, ps := range d.Pairs {
		if ps.A >= ps.B {
			return fmt.Errorf("metablocking: delta pair (%d,%d) is not in canonical A<B form", ps.A, ps.B)
		}
		p := entity.NewPair(ps.A, ps.B)
		if ps.CBS <= 0 {
			delete(wg.pairs, p)
		} else {
			wg.pairs[p] = &stats{cbs: ps.CBS, arcs: ps.ARCS}
		}
		wg.markPair(p)
	}
	return nil
}
