package metablocking

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
	"entityres/internal/graph"
)

// The delta-pruning acceptance property: a DeltaPruner riding a live
// WeightedGraph under random membership churn commits, at every
// checkpoint, exactly the kept set a full PruneGraph pass derives over a
// fresh materialization of the same graph — same pairs, same weights, bit
// for bit. The matrix crosses seeds, the stream-safe weight schemes
// (CBS/ECBS/JS), both stream-safe prune schemes (WEP/WNP, plus WNP's
// reciprocal variant) and three churn mixes (add-heavy, balanced,
// remove-heavy), so every candidate-expansion path — dirty pairs, dirty
// neighborhoods, the ECBS full-degrade, WEP's threshold band, WNP's moved
// nodes — is exercised against the exhaustive rescan.

// deltaChurnMix weights the add/remove coin of the churn driver.
type deltaChurnMix struct {
	name      string
	addWeight int // of 10: chance an absent description is (re-)added
}

var deltaChurnMixes = []deltaChurnMix{
	{name: "add-heavy", addWeight: 8},
	{name: "balanced", addWeight: 5},
	{name: "remove-heavy", addWeight: 3},
}

// keptMap renders a kept-edge slice as pair → weight for exact comparison.
func keptMap(edges []graph.Edge) map[entity.Pair]float64 {
	m := make(map[entity.Pair]float64, len(edges))
	for _, e := range edges {
		m[entity.NewPair(e.A, e.B)] = e.Weight
	}
	return m
}

// assertKeptEquals compares two kept sets with bit-exact weights.
func assertKeptEquals(t *testing.T, step int, got, want map[entity.Pair]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("step %d: delta pruner kept %d edges, full PruneGraph %d", step, len(got), len(want))
	}
	for p, ww := range want {
		gw, ok := got[p]
		if !ok {
			t.Fatalf("step %d: full PruneGraph keeps %v (w=%v), delta pruner dropped it", step, p, ww)
		}
		if math.Float64bits(gw) != math.Float64bits(ww) {
			t.Fatalf("step %d: kept weight of %v diverges: delta %v, full %v", step, p, gw, ww)
		}
	}
}

// runDeltaVsFull drives one scenario: 300 churn steps over a 50-entity
// pool, checkpointing every 20 steps.
func runDeltaVsFull(t *testing.T, seed int64, m MetaBlocker, mix deltaChurnMix) {
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: seed, Entities: 50, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	sb := &blocking.TokenBlocking{}
	keyer := sb.StreamKeyer()
	bi := blocking.NewBlockIndex(entity.Dirty)
	wg := NewWeightedGraph(entity.Dirty)
	bi.Observe(wg)
	p := NewDeltaPruner(wg, m)

	rng := rand.New(rand.NewSource(seed * 7919))
	descs := c.All()
	live := make(map[entity.ID]bool)
	for step := 1; step <= 300; step++ {
		d := descs[rng.Intn(len(descs))]
		switch {
		case live[d.ID] && rng.Intn(10) >= mix.addWeight:
			bi.Remove(d.ID)
			live[d.ID] = false
		case !live[d.ID]:
			if err := bi.Add(d.ID, d.Source, keyer(d)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live[d.ID] = true
		}
		if step%20 != 0 && step != 300 {
			continue
		}
		refates := p.Sync()
		for _, f := range refates {
			// Sync only reports consequential refates, and WasKept must
			// reflect the committed set — a wrong baseline would desync
			// Apply from the resolver's match-graph patch.
			if !f.WasKept && !f.Kept {
				t.Fatalf("step %d: inconsequential refate %+v reported", step, f)
			}
		}
		p.Apply(refates)
		want := keptMap(m.PruneGraph(wg.Graph(m.Weight), nil))
		assertKeptEquals(t, step, keptMap(p.KeptEdges()), want)
		// Quiescence: with nothing changed since Apply, the next Sync has
		// no candidates at all.
		if extra := p.Sync(); len(extra) != 0 {
			t.Fatalf("step %d: quiescent Sync re-derived %d refates", step, len(extra))
		}
	}
}

func TestDeltaPrunerEqualsFullPruneGraph(t *testing.T) {
	weights := []WeightScheme{CBS, ECBS, JS}
	prunes := []MetaBlocker{
		{Prune: WEP},
		{Prune: WNP},
		{Prune: WNP, Reciprocal: true},
	}
	for _, seed := range []int64{11, 12, 13} {
		for _, w := range weights {
			for _, pr := range prunes {
				m := pr
				m.Weight = w
				mix := deltaChurnMixes[int(seed)%len(deltaChurnMixes)]
				name := fmt.Sprintf("seed%d/%s/%s", seed, m.Name(), mix.name)
				seed := seed
				t.Run(name, func(t *testing.T) {
					if testing.Short() && seed != 11 {
						t.Skip("short mode runs one seed")
					}
					t.Parallel()
					runDeltaVsFull(t, seed, m, mix)
				})
			}
		}
	}
}

// TestDeltaPrunerSeedBaseline: a pruner seeded with a committed kept set
// (snapshot restore, shard bootstrap) diffs its first derivation against
// that baseline — stale seeded pairs surface as removal refates and the
// committed set still lands on the full PruneGraph result.
func TestDeltaPrunerSeedBaseline(t *testing.T) {
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: 21, Entities: 40, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	m := MetaBlocker{Weight: CBS, Prune: WEP}
	sb := &blocking.TokenBlocking{}
	keyer := sb.StreamKeyer()
	bi := blocking.NewBlockIndex(entity.Dirty)
	wg := NewWeightedGraph(entity.Dirty)
	bi.Observe(wg)
	for _, d := range c.All()[:25] {
		if err := bi.Add(d.ID, d.Source, keyer(d)); err != nil {
			t.Fatal(err)
		}
	}
	p := NewDeltaPruner(wg, m)
	// Baseline: the true kept set of the first 20 documents' graph, plus a
	// fabricated stale edge between handles that never co-occur.
	baseline := m.PruneGraph(wg.Graph(m.Weight), nil)
	stale := graph.Edge{A: 9990, B: 9991, Weight: 1}
	p.Seed(append(append([]graph.Edge(nil), baseline...), stale))

	refates := p.Sync()
	sawStaleRemoval := false
	for _, f := range refates {
		if f.Pair == entity.NewPair(stale.A, stale.B) {
			if f.InGraph || f.Kept || !f.WasKept {
				t.Fatalf("stale seeded pair refated as %+v, want removal", f)
			}
			sawStaleRemoval = true
		}
	}
	if !sawStaleRemoval {
		t.Fatal("stale seeded pair produced no removal refate")
	}
	p.Apply(refates)
	assertKeptEquals(t, 0, keptMap(p.KeptEdges()), keptMap(m.PruneGraph(wg.Graph(m.Weight), nil)))
}
