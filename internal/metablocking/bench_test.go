package metablocking

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
)

func benchBlocks(b *testing.B) (*blocking.Blocks, *datagen.Config) {
	b.Helper()
	cfg := &datagen.Config{Seed: 9, Entities: 800, DupRatio: 0.5}
	c, _, err := datagen.GenerateDirty(*cfg)
	if err != nil {
		b.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		b.Fatal(err)
	}
	return bs, cfg
}

// BenchmarkBuildGraph measures blocking-graph construction per weighting
// scheme (the dominant cost of meta-blocking).
func BenchmarkBuildGraph(b *testing.B) {
	bs, _ := benchBlocks(b)
	for _, w := range WeightSchemes() {
		b.Run(w.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BuildGraph(bs, w)
			}
		})
	}
}

// BenchmarkPrune measures each pruning scheme over a prebuilt graph.
func BenchmarkPrune(b *testing.B) {
	bs, _ := benchBlocks(b)
	g := BuildGraph(bs, ARCS)
	for _, p := range PruneSchemes() {
		m := &MetaBlocker{Weight: ARCS, Prune: p}
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.PruneGraph(g, bs)
			}
		})
	}
}
