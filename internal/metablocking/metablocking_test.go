package metablocking

import (
	"math"
	"strings"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
)

// fixture: blocks over 4 entities; the pair (0,1) co-occurs twice, all
// other pairs once.
//
//	b0: {0,1}        b1: {0,1,2}       b2: {2,3}
func fixture() *blocking.Blocks {
	bs := blocking.NewBlocks(entity.Dirty)
	bs.Add(&blocking.Block{Key: "b0", S0: []entity.ID{0, 1}})
	bs.Add(&blocking.Block{Key: "b1", S0: []entity.ID{0, 1, 2}})
	bs.Add(&blocking.Block{Key: "b2", S0: []entity.ID{2, 3}})
	return bs
}

func collection4() *entity.Collection {
	c := entity.NewCollection(entity.Dirty)
	for i := 0; i < 4; i++ {
		c.MustAdd(entity.NewDescription(""))
	}
	return c
}

func TestBuildGraphCBS(t *testing.T) {
	g := BuildGraph(fixture(), CBS)
	if g.NumEdges() != 4 { // (0,1),(0,2),(1,2),(2,3)
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if w, _ := g.Weight(0, 1); w != 2 {
		t.Fatalf("CBS(0,1) = %v", w)
	}
	if w, _ := g.Weight(0, 2); w != 1 {
		t.Fatalf("CBS(0,2) = %v", w)
	}
}

func TestBuildGraphJS(t *testing.T) {
	g := BuildGraph(fixture(), JS)
	// |B_0|=2, |B_1|=2, common=2 → JS = 2/(2+2-2) = 1.
	if w, _ := g.Weight(0, 1); w != 1 {
		t.Fatalf("JS(0,1) = %v", w)
	}
	// |B_2|=2, |B_3|=1, common=1 → JS = 1/2.
	if w, _ := g.Weight(2, 3); w != 0.5 {
		t.Fatalf("JS(2,3) = %v", w)
	}
}

func TestBuildGraphARCS(t *testing.T) {
	g := BuildGraph(fixture(), ARCS)
	// (0,1): b0 has 1 comparison, b1 has 3 → 1/1 + 1/3.
	if w, _ := g.Weight(0, 1); math.Abs(w-(1+1.0/3)) > 1e-12 {
		t.Fatalf("ARCS(0,1) = %v", w)
	}
	// (2,3): only b2 (1 comparison) → 1.
	if w, _ := g.Weight(2, 3); w != 1 {
		t.Fatalf("ARCS(2,3) = %v", w)
	}
}

func TestBuildGraphECBS(t *testing.T) {
	g := BuildGraph(fixture(), ECBS)
	// w(0,1) = CBS · ln(|B|/|B_0|) · ln(|B|/|B_1|) = 2·ln(3/2)².
	w01, _ := g.Weight(0, 1)
	want := 2 * math.Log(1.5) * math.Log(1.5)
	if math.Abs(w01-want) > 1e-12 {
		t.Fatalf("ECBS(0,1) = %v, want %v", w01, want)
	}
	// At equal block-count profiles, double co-occurrence dominates:
	// (0,2) has cbs=1 with the same |B_x| factors.
	w02, _ := g.Weight(0, 2)
	if !(w01 > w02) {
		t.Fatalf("ECBS ordering: w01=%v w02=%v", w01, w02)
	}
	// The rarity boost: entity 3 sits in a single block, so (2,3) beats
	// (0,2) despite equal CBS.
	w23, _ := g.Weight(2, 3)
	if !(w23 > w02) {
		t.Fatalf("ECBS rarity: w23=%v w02=%v", w23, w02)
	}
}

func TestBuildGraphEJSUsesDegrees(t *testing.T) {
	g := BuildGraph(fixture(), EJS)
	// deg(3)=1 < deg(0)=2: the (2,3) edge gets a bigger degree boost than
	// (0,2) despite equal JS.
	w23, _ := g.Weight(2, 3)
	w02, _ := g.Weight(0, 2)
	if !(w23 > w02) {
		t.Fatalf("EJS ordering: w23=%v w02=%v", w23, w02)
	}
}

func TestPruneWEPKeepsAboveMean(t *testing.T) {
	g := BuildGraph(fixture(), CBS) // weights: 2,1,1,1 → mean 1.25
	kept := (&MetaBlocker{Weight: CBS, Prune: WEP}).PruneGraph(g, fixture())
	if len(kept) != 1 || kept[0].A != 0 || kept[0].B != 1 {
		t.Fatalf("WEP kept %v", kept)
	}
}

func TestPruneCEPBudget(t *testing.T) {
	bs := fixture()
	g := BuildGraph(bs, CBS)
	m := &MetaBlocker{Weight: CBS, Prune: CEP, K: 2}
	kept := m.PruneGraph(g, bs)
	if len(kept) != 2 {
		t.Fatalf("CEP kept %d", len(kept))
	}
	if kept[0].Weight < kept[1].Weight {
		t.Fatal("CEP must keep heaviest first")
	}
	// Automatic budget: assignments = 2+3+2 = 7 → K = 3.
	auto := &MetaBlocker{Weight: CBS, Prune: CEP}
	if got := len(auto.PruneGraph(g, bs)); got != 3 {
		t.Fatalf("auto CEP kept %d", got)
	}
}

func TestPruneWNP(t *testing.T) {
	bs := fixture()
	g := BuildGraph(bs, CBS)
	// Node 0: edges 2 (to 1) and 1 (to 2); mean 1.5 → only (0,1) locally.
	// Node 2: edges 1,1,1 → mean 1 → all kept locally.
	std := (&MetaBlocker{Weight: CBS, Prune: WNP}).PruneGraph(g, bs)
	rec := (&MetaBlocker{Weight: CBS, Prune: WNP, Reciprocal: true}).PruneGraph(g, bs)
	if len(std) < len(rec) {
		t.Fatalf("reciprocal WNP must not keep more: %d vs %d", len(std), len(rec))
	}
	contains := func(es []graph.Edge, a, b entity.ID) bool {
		for _, e := range es {
			if e.A == a && e.B == b {
				return true
			}
		}
		return false
	}
	if !contains(std, 0, 1) || !contains(rec, 0, 1) {
		t.Fatal("strongest edge lost")
	}
	// (0,2): below node 0's mean but at node 2's mean → kept by standard,
	// dropped by reciprocal.
	if !contains(std, 0, 2) {
		t.Fatal("standard WNP should keep (0,2)")
	}
	if contains(rec, 0, 2) {
		t.Fatal("reciprocal WNP should drop (0,2)")
	}
}

func TestPruneCNP(t *testing.T) {
	bs := fixture()
	g := BuildGraph(bs, CBS)
	// assignments=7, |V|=4 → k=1: every node keeps one best neighbor.
	std := (&MetaBlocker{Weight: CBS, Prune: CNP}).PruneGraph(g, bs)
	rec := (&MetaBlocker{Weight: CBS, Prune: CNP, Reciprocal: true}).PruneGraph(g, bs)
	if len(std) < len(rec) {
		t.Fatal("reciprocal CNP kept more than standard")
	}
	found01 := false
	for _, e := range rec {
		if e.A == 0 && e.B == 1 {
			found01 = true
		}
	}
	if !found01 {
		t.Fatal("mutual best edge (0,1) must survive reciprocal CNP")
	}
}

func TestRestructureOrdering(t *testing.T) {
	bs := fixture()
	c := collection4()
	out := (&MetaBlocker{Weight: CBS, Prune: CEP, K: 4}).Restructure(c, bs)
	if out.Len() != 4 {
		t.Fatalf("restructured blocks = %d", out.Len())
	}
	// Strongest pair first, and every block is a pair.
	first := out.Get(0)
	if first.Size() != 2 || first.S0[0] != 0 || first.S0[1] != 1 {
		t.Fatalf("first block = %+v", first)
	}
	// No redundant comparisons remain.
	if out.TotalComparisons() != int64(out.DistinctPairs().Len()) {
		t.Fatal("restructured collection contains redundancy")
	}
}

func TestRestructureCleanCleanSources(t *testing.T) {
	c := entity.NewCollection(entity.CleanClean)
	c.MustAdd(entity.NewDescription(""))
	d := entity.NewDescription("")
	d.Source = 1
	c.MustAdd(d)
	bs := blocking.NewBlocks(entity.CleanClean)
	bs.Add(&blocking.Block{Key: "k", S0: []entity.ID{0}, S1: []entity.ID{1}})
	out := (&MetaBlocker{Weight: CBS, Prune: WEP}).Restructure(c, bs)
	if out.Len() != 1 {
		t.Fatalf("blocks = %d", out.Len())
	}
	b := out.Get(0)
	if len(b.S0) != 1 || len(b.S1) != 1 {
		t.Fatalf("sources not preserved: %+v", b)
	}
}

func TestSchemeStringsAndName(t *testing.T) {
	if CBS.String() != "CBS" || ARCS.String() != "ARCS" || WEP.String() != "WEP" || CNP.String() != "CNP" {
		t.Fatal("scheme names")
	}
	if WeightScheme(99).String() == "" || PruneScheme(99).String() == "" {
		t.Fatal("unknown scheme string empty")
	}
	m := &MetaBlocker{Weight: ECBS, Prune: WNP, Reciprocal: true}
	if !strings.Contains(m.Name(), "ECBS") || !strings.Contains(m.Name(), "-R") {
		t.Fatalf("Name = %q", m.Name())
	}
	if len(WeightSchemes()) != 5 || len(PruneSchemes()) != 4 {
		t.Fatal("scheme lists")
	}
}

func TestPruneEmptyGraph(t *testing.T) {
	empty := blocking.NewBlocks(entity.Dirty)
	g := BuildGraph(empty, CBS)
	for _, p := range PruneSchemes() {
		m := &MetaBlocker{Weight: CBS, Prune: p}
		if kept := m.PruneGraph(g, empty); len(kept) != 0 {
			t.Fatalf("%v kept %d on empty graph", p, len(kept))
		}
	}
}
