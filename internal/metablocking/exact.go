// Exact edge-weight accumulation for the mean-threshold pruners.
//
// WEP keeps an edge when its weight reaches the global mean, WNP when it
// reaches a neighborhood mean. Floating-point summation makes those means
// order-sensitive in their last ulp, which is fatal for the streaming
// resolver's delta reconcile: the batch pruner sums a sorted edge list from
// scratch while the incremental pruner adds and subtracts weights in stream
// order, and an edge sitting within an ulp of the mean would be kept by one
// regime and dropped by the other. The fix is to make the mean EXACT and
// therefore order-independent: every float64 weight is an integer multiple
// of 2^-1126 (the smallest subnormal is 2^-1074 with a 53-bit mantissa), so
// a big.Int accumulator of weights scaled by 2^1126 carries the sum with no
// rounding at all, additions and subtractions commute exactly, and both
// regimes derive bit-identical pruning fates from identical statistics.
//
// The fate test w >= sum/n never divides: the correctly rounded threshold
// t = RN(sum/n) settles every edge with w != t by float comparison (RN is
// the nearest float64 to the mean, so w > t implies w > mean and w < t
// implies w < mean — see keepAtLeastMean), and the rare tie w == t falls
// back to the all-integer comparison scaled(w)·n >= sum.
package metablocking

import (
	"math"
	"math/big"
)

// weightScaleBits is the fixed-point scale: every finite non-negative
// float64 times 2^weightScaleBits is an integer (mantissa 53 bits, minimum
// subnormal exponent -1074; Frexp's fraction adds at most 53 more bits
// below the exponent, and -1073-53+1126 = 0 keeps the shift non-negative).
const weightScaleBits = 1126

// scaleWeight writes w * 2^weightScaleBits into dst. w must be finite and
// non-negative — true for every streaming weight scheme (CBS and JS are
// ratios of counts, ECBS multiplies CBS by log(|B|/|B_x|) >= 0).
func scaleWeight(w float64, dst *big.Int) *big.Int {
	if w == 0 {
		return dst.SetInt64(0)
	}
	fr, exp := math.Frexp(w) // w = fr · 2^exp, |fr| ∈ [0.5, 1)
	m := int64(fr * (1 << 53))
	dst.SetInt64(m)
	return dst.Lsh(dst, uint(exp-53+weightScaleBits))
}

// exactSum accumulates float64 weights exactly. The zero value is an empty
// sum; Add and Sub commute and cancel exactly, so any arrival order of the
// same multiset of weights leaves the same accumulator state.
type exactSum struct {
	acc     big.Int
	scratch big.Int
}

// Add folds w into the sum.
func (s *exactSum) Add(w float64) {
	if w == 0 {
		return
	}
	s.acc.Add(&s.acc, scaleWeight(w, &s.scratch))
}

// Sub removes w from the sum.
func (s *exactSum) Sub(w float64) {
	if w == 0 {
		return
	}
	s.acc.Sub(&s.acc, scaleWeight(w, &s.scratch))
}

// IsZero reports an empty (all contributions cancelled) sum.
func (s *exactSum) IsZero() bool { return s.acc.Sign() == 0 }

// Reset empties the sum.
func (s *exactSum) Reset() { s.acc.SetInt64(0) }

// Mean returns the correctly rounded float64 nearest to sum/n. n must be
// positive.
func (s *exactSum) Mean(n int) float64 {
	den := new(big.Int).SetInt64(int64(n))
	den.Lsh(den, weightScaleBits)
	f, _ := new(big.Rat).SetFrac(&s.acc, den).Float64()
	return f
}

// atLeastMean reports w >= sum/n exactly: scaled(w)·n >= scaled sum.
func (s *exactSum) atLeastMean(w float64, n int) bool {
	lhs := scaleWeight(w, new(big.Int))
	lhs.Mul(lhs, big.NewInt(int64(n)))
	return lhs.Cmp(&s.acc) >= 0
}

// keepAtLeastMean decides w >= sum/n given thr = s.Mean(n), without big
// arithmetic off the tie. Correctness of the fast paths: thr is the nearest
// float64 to mean = sum/n, and w is itself a float64, so the nearest float
// to mean can never sit on the far side of w — w >= mean forces thr <= w,
// and w < mean forces thr >= w. Contrapositively w > thr implies w > mean
// (keep) and w < thr implies w < mean (drop); only w == thr needs the exact
// integer comparison.
func (s *exactSum) keepAtLeastMean(w, thr float64, n int) bool {
	if w > thr {
		return true
	}
	if w < thr {
		return false
	}
	return s.atLeastMean(w, n)
}
