// Package metablocking implements meta-blocking [22] (§II of the paper):
// an existing blocking collection B is transformed into a blocking graph —
// nodes are descriptions, undirected edges connect co-occurring
// descriptions (eliminating all redundant comparisons by construction) —
// edges are weighted by the likelihood that their endpoints match, the
// low-weight edges are pruned, and the surviving edges are returned as a
// restructured collection of two-description blocks.
//
// Five weighting schemes (CBS, ECBS, JS, EJS, ARCS) and four pruning
// schemes (WEP, CEP, WNP, CNP, plus reciprocal node-centric variants)
// reproduce the design space the paper surveys.
//
// The co-occurrence statistics behind every scheme live in WeightedGraph,
// a core maintained either by batch accumulation over a finished block
// collection (BuildGraph, BuildGraphParallel) or by per-document deltas
// under a stream of inserts, updates and deletes (AddDocument /
// RemoveDocument, driven by blocking.BlockIndex membership notifications)
// — the incremental regime the streaming resolver uses for live WEP/WNP
// pruning of its comparison frontiers.
package metablocking

import (
	"fmt"
	"sort"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
)

// WeightScheme selects how edge weights are computed from block
// co-occurrence statistics.
type WeightScheme int

const (
	// CBS (Common Blocks Scheme) weighs an edge by the number of blocks
	// its endpoints share.
	CBS WeightScheme = iota
	// ECBS (Enhanced CBS) discounts descriptions that appear in many
	// blocks: CBS · log(|B|/|B_a|) · log(|B|/|B_b|).
	ECBS
	// JS weighs an edge by the Jaccard coefficient of the endpoints' block
	// sets.
	JS
	// EJS (Enhanced JS) additionally discounts high-degree nodes:
	// JS · log(|E|/deg(a)) · log(|E|/deg(b)).
	EJS
	// ARCS (Aggregate Reciprocal Comparisons Scheme) credits small blocks:
	// Σ over common blocks of 1/||b||.
	ARCS
)

// String implements fmt.Stringer.
func (w WeightScheme) String() string {
	switch w {
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case JS:
		return "JS"
	case EJS:
		return "EJS"
	case ARCS:
		return "ARCS"
	default:
		return fmt.Sprintf("WeightScheme(%d)", int(w))
	}
}

// WeightSchemes lists all supported schemes in experiment order.
func WeightSchemes() []WeightScheme { return []WeightScheme{CBS, ECBS, JS, EJS, ARCS} }

// PruneScheme selects how the weighted blocking graph is pruned.
type PruneScheme int

const (
	// WEP (Weighted Edge Pruning) keeps edges whose weight is at least the
	// global mean edge weight.
	WEP PruneScheme = iota
	// CEP (Cardinality Edge Pruning) keeps the globally top-K edges with
	// K = ⌊total block assignments / 2⌋.
	CEP
	// WNP (Weighted Node Pruning) keeps an edge if its weight reaches the
	// local mean of either endpoint's neighborhood (both, if Reciprocal).
	WNP
	// CNP (Cardinality Node Pruning) keeps an edge if it is among the
	// top-k of either endpoint (both, if Reciprocal), with k derived from
	// the average blocks per description.
	CNP
)

// String implements fmt.Stringer.
func (p PruneScheme) String() string {
	switch p {
	case WEP:
		return "WEP"
	case CEP:
		return "CEP"
	case WNP:
		return "WNP"
	case CNP:
		return "CNP"
	default:
		return fmt.Sprintf("PruneScheme(%d)", int(p))
	}
}

// PruneSchemes lists all supported schemes in experiment order.
func PruneSchemes() []PruneScheme { return []PruneScheme{WEP, CEP, WNP, CNP} }

// MetaBlocker restructures a blocking collection through the weighted
// blocking graph.
type MetaBlocker struct {
	Weight WeightScheme
	Prune  PruneScheme
	// Reciprocal makes the node-centric schemes (WNP, CNP) require an edge
	// to survive in the neighborhoods of both endpoints, trading recall
	// for precision.
	Reciprocal bool
	// K overrides the retained-edge budget of CEP (0 = automatic).
	K int
}

// Name identifies the configuration in experiment tables.
func (m *MetaBlocker) Name() string {
	r := ""
	if m.Reciprocal {
		r = "-R"
	}
	return fmt.Sprintf("meta(%s,%s%s)", m.Weight, m.Prune, r)
}

// BuildGraph constructs the weighted blocking graph of bs under the given
// scheme. The graph has one edge per distinct comparison in bs. It is the
// batch regime of the WeightedGraph core: accumulate every block, then
// materialize the scheme's weights.
func BuildGraph(bs *blocking.Blocks, scheme WeightScheme) *graph.Graph {
	return FromBlocks(bs).Graph(scheme)
}

func js(cbs, ba, bb int) float64 {
	union := ba + bb - cbs
	if union == 0 {
		return 0
	}
	return float64(cbs) / float64(union)
}

// Restructure builds the weighted graph of bs, prunes it, and returns the
// surviving edges as a collection of two-description blocks ordered by
// descending weight (strongest candidates first — the order progressive
// schedulers rely on).
func (m *MetaBlocker) Restructure(c *entity.Collection, bs *blocking.Blocks) *blocking.Blocks {
	return m.restructure(c, bs, BuildGraph(bs, m.Weight))
}

// restructure prunes g and emits the surviving edges as weight-ordered
// two-description blocks; shared by Restructure and RestructureParallel.
func (m *MetaBlocker) restructure(c *entity.Collection, bs *blocking.Blocks, g *graph.Graph) *blocking.Blocks {
	return EmitKept(c, bs.Kind(), m.PruneGraph(g, bs))
}

// EmitKept renders retained edges as a collection of two-description
// blocks ordered by descending weight (strongest candidates first — the
// order progressive schedulers rely on), splitting members by source for
// clean-clean collections. It is the emission tail shared by the batch
// restructuring paths and the streaming resolver's RestructuredBlocks, so
// the two render identical collections from identical kept edges. The
// kept slice is reordered in place.
func EmitKept(c *entity.Collection, kind entity.Kind, kept []graph.Edge) *blocking.Blocks {
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Weight != kept[j].Weight {
			return kept[i].Weight > kept[j].Weight
		}
		if kept[i].A != kept[j].A {
			return kept[i].A < kept[j].A
		}
		return kept[i].B < kept[j].B
	})
	out := blocking.NewBlocks(kind)
	for _, e := range kept {
		b := &blocking.Block{Key: fmt.Sprintf("meta:%d-%d", e.A, e.B)}
		for _, id := range []entity.ID{e.A, e.B} {
			if c.Get(id) != nil && c.Get(id).Source == 1 {
				b.S1 = append(b.S1, id)
			} else {
				b.S0 = append(b.S0, id)
			}
		}
		out.Add(b)
	}
	return out
}

// PruneGraph applies the configured pruning scheme and returns the
// retained edges.
func (m *MetaBlocker) PruneGraph(g *graph.Graph, bs *blocking.Blocks) []graph.Edge {
	switch m.Prune {
	case WEP:
		return pruneWEP(g)
	case CEP:
		return pruneCEP(g, m.cepBudget(bs))
	case WNP:
		return pruneWNP(g, m.Reciprocal)
	case CNP:
		return pruneCNP(g, cnpK(bs, g), m.Reciprocal)
	default:
		return g.Edges()
	}
}

// cepBudget returns the CEP retention budget: K override, else half the
// total block assignments (the budget used in [22]).
func (m *MetaBlocker) cepBudget(bs *blocking.Blocks) int {
	if m.K > 0 {
		return m.K
	}
	assignments := 0
	for _, b := range bs.All() {
		assignments += b.Size()
	}
	k := assignments / 2
	if k < 1 {
		k = 1
	}
	return k
}

// cnpK distributes the CEP budget over the graph nodes: each node retains
// its top-k neighbors with k = max(1, ⌊assignments/|V|⌋).
func cnpK(bs *blocking.Blocks, g *graph.Graph) int {
	nodes := g.NumNodes()
	if nodes == 0 {
		return 1
	}
	assignments := 0
	for _, b := range bs.All() {
		assignments += b.Size()
	}
	k := assignments / nodes
	if k < 1 {
		k = 1
	}
	return k
}

func pruneWEP(g *graph.Graph) []graph.Edge {
	if g.NumEdges() == 0 {
		return nil
	}
	// The mean is accumulated exactly (exact.go), so it is independent of
	// summation order and bit-identical to the streaming DeltaPruner's
	// incrementally maintained mean — the property that makes delta
	// reconciliation provably equal to this full pass.
	edges := g.Edges()
	var sum exactSum
	for _, e := range edges {
		sum.Add(e.Weight)
	}
	n := len(edges)
	thr := sum.Mean(n)
	var out []graph.Edge
	for _, e := range edges {
		if sum.keepAtLeastMean(e.Weight, thr, n) {
			out = append(out, e)
		}
	}
	return out
}

func pruneCEP(g *graph.Graph, k int) []graph.Edge {
	edges := g.Edges()
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Weight > edges[j].Weight })
	if k > len(edges) {
		k = len(edges)
	}
	return edges[:k]
}

func pruneWNP(g *graph.Graph, reciprocal bool) []graph.Edge {
	// Neighborhood means are accumulated exactly (exact.go): independent of
	// edge order and bit-identical to the streaming DeltaPruner's per-node
	// sums, so an edge sitting exactly at a node's mean (common when all of
	// a node's edges share one weight) gets the same fate in every regime.
	edges := g.Edges()
	sum := make(map[entity.ID]*exactSum)
	acc := func(id entity.ID) *exactSum {
		s, ok := sum[id]
		if !ok {
			s = &exactSum{}
			sum[id] = s
		}
		return s
	}
	for _, e := range edges {
		acc(e.A).Add(e.Weight)
		acc(e.B).Add(e.Weight)
	}
	localThr := make(map[entity.ID]float64, len(sum))
	for id, s := range sum {
		localThr[id] = s.Mean(g.Degree(id))
	}
	var out []graph.Edge
	for _, e := range edges {
		inA := sum[e.A].keepAtLeastMean(e.Weight, localThr[e.A], g.Degree(e.A))
		inB := sum[e.B].keepAtLeastMean(e.Weight, localThr[e.B], g.Degree(e.B))
		if (reciprocal && inA && inB) || (!reciprocal && (inA || inB)) {
			out = append(out, e)
		}
	}
	return out
}

func pruneCNP(g *graph.Graph, k int, reciprocal bool) []graph.Edge {
	// Per-node weight rank: an edge is in the node's top-k if fewer than k
	// incident edges weigh strictly more (ties resolved by neighbor ID to
	// stay deterministic).
	topOf := func(id entity.ID) map[entity.ID]struct{} {
		ns := g.Neighbors(id)
		type nw struct {
			n entity.ID
			w float64
		}
		arr := make([]nw, 0, len(ns))
		for _, n := range ns {
			w, _ := g.Weight(id, n)
			arr = append(arr, nw{n, w})
		}
		sort.Slice(arr, func(i, j int) bool {
			if arr[i].w != arr[j].w {
				return arr[i].w > arr[j].w
			}
			return arr[i].n < arr[j].n
		})
		lim := k
		if lim > len(arr) {
			lim = len(arr)
		}
		set := make(map[entity.ID]struct{}, lim)
		for _, x := range arr[:lim] {
			set[x.n] = struct{}{}
		}
		return set
	}
	tops := make(map[entity.ID]map[entity.ID]struct{})
	var out []graph.Edge
	g.EachEdge(func(e graph.Edge) bool {
		ta, ok := tops[e.A]
		if !ok {
			ta = topOf(e.A)
			tops[e.A] = ta
		}
		tb, ok := tops[e.B]
		if !ok {
			tb = topOf(e.B)
			tops[e.B] = tb
		}
		_, inA := ta[e.B]
		_, inB := tb[e.A]
		if (reciprocal && inA && inB) || (!reciprocal && (inA || inB)) {
			out = append(out, e)
		}
		return true
	})
	return out
}
