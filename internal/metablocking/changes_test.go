package metablocking

import (
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
	"entityres/internal/entity"
)

// The change-tracking substrate under the delta snapshot chain: a tracker
// registered at birth sees every mutation, DeltaSince renders exactly the
// touched statistics, and ApplyDelta advances a restored baseline to the
// same graph — the round trip the durable resolver's chained checkpoints
// perform.

func TestChangeSetDeltaRoundTrip(t *testing.T) {
	m := MetaBlocker{Weight: JS, Prune: WNP}
	sb := &blocking.TokenBlocking{}
	keyer := sb.StreamKeyer()
	bi := blocking.NewBlockIndex(entity.Dirty)
	wgA := NewWeightedGraph(entity.Dirty)
	bi.Observe(wgA)
	cs := wgA.Track()
	if !cs.Empty() {
		t.Fatal("fresh tracker already dirty")
	}
	c, _, err := datagen.GenerateDirty(datagen.Config{Seed: 31, Entities: 30, DupRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	descs := c.All()
	for _, d := range descs[:20] {
		if err := bi.Add(d.ID, d.Source, keyer(d)); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Empty() {
		t.Fatal("mutations left the tracker clean")
	}

	// First link: a tracker-from-birth delta restores the whole graph.
	wgB := NewWeightedGraph(entity.Dirty)
	if err := wgB.ApplyDelta(wgA.DeltaSince(cs)); err != nil {
		t.Fatal(err)
	}
	assertKeptEquals(t, 1,
		keptMap(m.PruneGraph(wgB.Graph(m.Weight), nil)),
		keptMap(m.PruneGraph(wgA.Graph(m.Weight), nil)))
	if !cs.Empty() {
		t.Fatal("DeltaSince did not drain the tracker")
	}

	// Second link over mixed churn — removals shrink entries to zero,
	// which the delta must carry as deletions.
	for _, d := range descs[:10] {
		bi.Remove(d.ID)
	}
	for _, d := range descs[20:] {
		if err := bi.Add(d.ID, d.Source, keyer(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wgB.ApplyDelta(wgA.DeltaSince(cs)); err != nil {
		t.Fatal(err)
	}
	assertKeptEquals(t, 2,
		keptMap(m.PruneGraph(wgB.Graph(m.Weight), nil)),
		keptMap(m.PruneGraph(wgA.Graph(m.Weight), nil)))

	// Reset discards accumulated dirt without rendering it.
	bi.Remove(descs[15].ID)
	if cs.Empty() {
		t.Fatal("removal left the tracker clean")
	}
	cs.Reset()
	if !cs.Empty() {
		t.Fatal("Reset left the tracker dirty")
	}
	if d := wgA.DeltaSince(cs); len(d.Pairs) != 0 || len(d.BlocksPer) != 0 {
		t.Fatalf("delta after Reset still carries entries: %+v", d)
	}

	// Malformed links fail loudly.
	if err := wgB.ApplyDelta(nil); err == nil {
		t.Fatal("nil delta accepted")
	}
	if err := wgB.ApplyDelta(&WeightedGraphDelta{NumBlocks: -1}); err == nil {
		t.Fatal("negative block count accepted")
	}
}

// TestDeltaPrunerAccessorsAndRequeue pins the pruner's bookkeeping
// surface — Pending/Examined/KeptCount — and the Requeue contract: pairs
// returned after a failed evaluation are re-derived identically by the
// next Sync. The scenario's three same-token descriptions weigh every
// edge exactly at the WEP mean, exercising the exact tie verdict.
func TestDeltaPrunerAccessorsAndRequeue(t *testing.T) {
	m := MetaBlocker{Weight: CBS, Prune: WEP}
	sb := &blocking.TokenBlocking{}
	keyer := sb.StreamKeyer()
	bi := blocking.NewBlockIndex(entity.Dirty)
	wg := NewWeightedGraph(entity.Dirty)
	bi.Observe(wg)
	p := NewDeltaPruner(wg, m)
	if p.Pending() {
		t.Fatal("fresh pruner reports pending work")
	}
	for i, uri := range []string{"u:a", "u:b", "u:c"} {
		d := &entity.Description{ID: entity.ID(i), URI: uri,
			Attrs: []entity.Attribute{{Name: "name", Value: "samename"}}}
		if err := bi.Add(d.ID, d.Source, keyer(d)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Pending() {
		t.Fatal("tracked mutations not pending")
	}
	refates := p.Sync()
	if len(refates) != 3 {
		t.Fatalf("Sync derived %d refates, want the 3 tied pairs", len(refates))
	}
	examined := p.Examined()
	if examined <= 0 {
		t.Fatal("Sync examined nothing")
	}
	for _, f := range refates {
		// Every pair's weight sits exactly on the WEP mean; the exact tie
		// verdict keeps them (mean membership is inclusive).
		if !f.Kept {
			t.Fatalf("tied pair %+v dropped", f)
		}
	}

	// A failed evaluation hands the fates back; the unchanged graph and
	// kept set must re-derive them identically.
	p.Requeue(refates)
	if !p.Pending() {
		t.Fatal("requeued pairs not pending")
	}
	again := p.Sync()
	if p.Examined() <= examined {
		t.Fatal("re-derivation not counted as examined work")
	}
	want := map[entity.Pair]Refate{}
	for _, f := range refates {
		want[f.Pair] = f
	}
	if len(again) != len(want) {
		t.Fatalf("re-derived %d refates, want %d", len(again), len(want))
	}
	for _, f := range again {
		if want[f.Pair] != f {
			t.Fatalf("re-derived fate diverged: %+v vs %+v", f, want[f.Pair])
		}
	}
	p.Apply(again)
	if p.KeptCount() != 3 || p.KeptCount() != len(p.KeptEdges()) {
		t.Fatalf("KeptCount %d disagrees with KeptEdges %d", p.KeptCount(), len(p.KeptEdges()))
	}
}

// TestExactSumZeroAndReset: the exact accumulator cancels bit-for-bit and
// empties on Reset — the invariants the incremental WEP mean rides on.
func TestExactSumZeroAndReset(t *testing.T) {
	var s exactSum
	if !s.IsZero() {
		t.Fatal("zero-value sum not zero")
	}
	s.Add(0.1)
	s.Add(0.2)
	if s.IsZero() {
		t.Fatal("non-empty sum reports zero")
	}
	s.Sub(0.2)
	s.Sub(0.1)
	if !s.IsZero() {
		t.Fatal("exact cancellation left a residue")
	}
	s.Add(1.5)
	s.Reset()
	if !s.IsZero() {
		t.Fatal("Reset left a residue")
	}
}
