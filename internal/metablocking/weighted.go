package metablocking

import (
	"fmt"
	"math"

	"entityres/internal/blocking"
	"entityres/internal/entity"
	"entityres/internal/graph"
)

// stats carries the co-occurrence statistics of one graph edge.
type stats struct {
	cbs  int
	arcs float64
}

// WeightedGraph is the incrementally-maintained core of the weighted
// blocking graph: the per-pair and per-node co-occurrence statistics every
// weighting scheme is computed from. It supports two maintenance regimes
// that produce identical counts for the same live membership:
//
//   - batch accumulation (FromBlocks / AccumulateBlock / Merge), one whole
//     block at a time — the regime of BuildGraph and BuildGraphParallel;
//   - per-document deltas (AddDocument / RemoveDocument), keyed off
//     blocking.BlockIndex membership changes — the regime of the streaming
//     resolver, which registers the graph as a membership observer so every
//     insert, update and delete adjusts exactly the statistics the changed
//     description touches.
//
// The counting statistics (common-block counts, blocks per description,
// number of comparison-suggesting blocks, pair degrees) are integers, so
// the weights derived from them — CBS, ECBS, JS, EJS — are bit-identical
// across regimes. ARCS sums floating-point reciprocal comparison masses
// whose per-block denominators change whenever a block grows or shrinks;
// that mass is not decomposable into per-pair deltas, so it is only
// accumulated by the batch regime (AddDocument/RemoveDocument leave it
// zero, and streaming validation rejects ARCS).
//
// A block contributes to the statistics only while it suggests at least
// one comparison (two members when dirty; a member on each side when
// clean-clean) — mirroring blocking.Blocks.Add, which drops
// comparison-free blocks from batch collections. The delta maintenance
// therefore credits a whole block the moment a new member makes it
// comparison-suggesting, and debits it the moment a leaving member makes
// it comparison-free.
//
// A WeightedGraph is not safe for concurrent mutation; the streaming
// resolver serializes operations, and the parallel batch build merges
// shard-local graphs.
type WeightedGraph struct {
	kind      entity.Kind
	pairs     map[entity.Pair]*stats
	blocksPer map[entity.ID]int
	numBlocks int
	// trackers receive every statistic mutation (see changes.go); every
	// mutating path below must funnel through ensure/bump/debit/credit/
	// addBlocks or mark explicitly, or registered change sets go stale.
	trackers []*ChangeSet
}

// NewWeightedGraph returns an empty weighted blocking graph for the given
// resolution setting.
func NewWeightedGraph(kind entity.Kind) *WeightedGraph {
	return &WeightedGraph{
		kind:      kind,
		pairs:     make(map[entity.Pair]*stats),
		blocksPer: make(map[entity.ID]int),
	}
}

// FromBlocks accumulates the co-occurrence statistics of a whole block
// collection — the batch construction BuildGraph weights.
func FromBlocks(bs *blocking.Blocks) *WeightedGraph {
	wg := NewWeightedGraph(bs.Kind())
	for _, b := range bs.All() {
		wg.AccumulateBlock(b)
	}
	return wg
}

// Kind returns the resolution setting of the graph.
func (wg *WeightedGraph) Kind() entity.Kind { return wg.kind }

// NumBlocks returns the number of accumulated comparison-suggesting blocks.
func (wg *WeightedGraph) NumBlocks() int { return wg.numBlocks }

// NumPairs returns the number of distinct co-occurring pairs (graph edges).
func (wg *WeightedGraph) NumPairs() int { return len(wg.pairs) }

// CommonBlocks returns the CBS count of the pair — the number of blocks its
// endpoints share — or 0 when the endpoints never co-occur.
func (wg *WeightedGraph) CommonBlocks(p entity.Pair) int {
	if st, ok := wg.pairs[p]; ok {
		return st.cbs
	}
	return 0
}

// BlockCount returns the number of comparison-suggesting blocks containing
// the description.
func (wg *WeightedGraph) BlockCount(id entity.ID) int { return wg.blocksPer[id] }

// EachPair enumerates the co-occurring pairs and their CBS counts in
// unspecified order, stopping early if fn returns false.
func (wg *WeightedGraph) EachPair(fn func(p entity.Pair, cbs int) bool) {
	for p, st := range wg.pairs {
		if !fn(p, st.cbs) {
			return
		}
	}
}

// AccumulateBlock folds one whole block into the statistics: every member
// is credited with a block appearance and every suggested comparison bumps
// its pair's common-block count and reciprocal comparison mass. This is
// the batch accumulation step shared by the sequential and sharded graph
// builds.
func (wg *WeightedGraph) AccumulateBlock(b *blocking.Block) {
	comp := b.Comparisons(wg.kind)
	wg.addBlocks(1)
	for _, id := range b.S0 {
		wg.credit(id)
	}
	for _, id := range b.S1 {
		wg.credit(id)
	}
	b.EachComparison(wg.kind, func(x, y entity.ID) bool {
		st := wg.ensure(entity.NewPair(x, y))
		st.cbs++
		st.arcs += 1 / float64(comp)
		return true
	})
}

// Merge folds another graph's statistics into wg. The sharded batch build
// merges shard partials in ascending shard (= block) order, so the
// floating-point ARCS masses sum in a deterministic order.
func (wg *WeightedGraph) Merge(o *WeightedGraph) {
	if o.numBlocks != 0 {
		wg.addBlocks(o.numBlocks)
	}
	for id, n := range o.blocksPer {
		wg.blocksPer[id] += n
		wg.markNode(id)
	}
	for p, st := range o.pairs {
		wg.markPair(p)
		dst, ok := wg.pairs[p]
		if !ok {
			// Copy the stats rather than adopting o's pointer: the graphs
			// must stay independent after the merge, or a later mutation of
			// either would silently corrupt the other.
			wg.pairs[p] = &stats{cbs: st.cbs, arcs: st.arcs}
			continue
		}
		dst.cbs += st.cbs
		dst.arcs += st.arcs
	}
}

// AddDocument applies the delta of one description entering the block
// index: for each of its keys, the description is credited against the
// block's other live members. It implements blocking.MembershipObserver,
// so a BlockIndex keeps the graph current via Observe. ARCS mass is not
// maintained (see the type comment).
func (wg *WeightedGraph) AddDocument(bi *blocking.BlockIndex, id entity.ID, source int, keys []string) {
	var same, opp []entity.ID
	for _, k := range keys {
		same, opp = wg.partition(bi, k, id, source, same[:0], opp[:0])
		// Without a comparison partner the block suggests nothing even with
		// id aboard (a singleton when dirty, a one-sided block when
		// clean-clean) and stays outside the statistics.
		if len(opp) == 0 {
			continue
		}
		// A block contributes only while it suggests comparisons. If it did
		// not before id joined, id's arrival springs it into existence and
		// every prior member earns its block appearance now.
		if !wg.suggests(len(same), len(opp)) {
			wg.addBlocks(1)
			for _, m := range same {
				wg.credit(m)
			}
			for _, m := range opp {
				wg.credit(m)
			}
		}
		wg.credit(id)
		for _, m := range opp {
			wg.ensure(entity.NewPair(id, m)).cbs++
		}
	}
}

// RemoveDocument applies the inverse delta of one description leaving the
// block index. It must be invoked while the index still holds the
// description (blocking.MembershipObserver's contract).
func (wg *WeightedGraph) RemoveDocument(bi *blocking.BlockIndex, id entity.ID, source int, keys []string) {
	var same, opp []entity.ID
	for _, k := range keys {
		same, opp = wg.partition(bi, k, id, source, same[:0], opp[:0])
		if len(opp) == 0 {
			continue
		}
		for _, m := range opp {
			wg.bump(entity.NewPair(id, m), -1)
		}
		wg.debit(id)
		// If the remaining members no longer suggest a comparison the block
		// drops out of the statistics entirely.
		if !wg.suggests(len(same), len(opp)) {
			wg.addBlocks(-1)
			for _, m := range same {
				wg.debit(m)
			}
			for _, m := range opp {
				wg.debit(m)
			}
		}
	}
}

// partition splits the other live members of key into id's own side and
// the comparison side: for clean-clean, same/opposite source; for dirty,
// every other member is a comparison partner. The scratch slices are
// reused across keys.
func (wg *WeightedGraph) partition(bi *blocking.BlockIndex, key string, id entity.ID, source int, same, opp []entity.ID) ([]entity.ID, []entity.ID) {
	bi.EachMember(key, func(m entity.ID, ms int) bool {
		if m == id {
			return true
		}
		if wg.kind == entity.CleanClean && ms == source {
			same = append(same, m)
		} else {
			opp = append(opp, m)
		}
		return true
	})
	return same, opp
}

// suggests reports whether a block whose other members split into
// nSame/nOpp suggests at least one comparison WITHOUT the observed
// description: two members when dirty, one on each side when clean-clean.
func (wg *WeightedGraph) suggests(nSame, nOpp int) bool {
	if wg.kind == entity.CleanClean {
		return nSame >= 1 && nOpp >= 1
	}
	return nSame+nOpp >= 2
}

// ensure returns the pair's statistics, creating them if absent. Callers
// mutate the returned stats, so the pair is marked dirty here.
func (wg *WeightedGraph) ensure(p entity.Pair) *stats {
	wg.markPair(p)
	st, ok := wg.pairs[p]
	if !ok {
		st = &stats{}
		wg.pairs[p] = st
	}
	return st
}

// bump adjusts a pair's common-block count, dropping the pair when its
// last shared block is gone.
func (wg *WeightedGraph) bump(p entity.Pair, delta int) {
	st, ok := wg.pairs[p]
	if !ok {
		if delta <= 0 {
			return
		}
		st = &stats{}
		wg.pairs[p] = st
	}
	wg.markPair(p)
	st.cbs += delta
	if st.cbs <= 0 {
		delete(wg.pairs, p)
	}
}

// credit adds one block appearance to the description.
func (wg *WeightedGraph) credit(id entity.ID) {
	wg.blocksPer[id]++
	wg.markNode(id)
}

// debit removes one block appearance from the description, dropping the
// entry when none remain.
func (wg *WeightedGraph) debit(id entity.ID) {
	wg.markNode(id)
	wg.blocksPer[id]--
	if wg.blocksPer[id] <= 0 {
		delete(wg.blocksPer, id)
	}
}

// addBlocks adjusts the comparison-suggesting block count.
func (wg *WeightedGraph) addBlocks(delta int) {
	wg.numBlocks += delta
	wg.markBlocks()
}

// Graph materializes the weighted blocking graph under the given scheme —
// the scheme-dependent weighting tail shared by the sequential batch
// build, the sharded batch build and the streaming resolver's live
// pruning. Weights for the counting schemes are bit-identical regardless
// of how the statistics were maintained.
func (wg *WeightedGraph) Graph(scheme WeightScheme) *graph.Graph {
	// Degrees: number of distinct co-occurring partners per description.
	degree := make(map[entity.ID]int)
	for p := range wg.pairs {
		degree[p.A]++
		degree[p.B]++
	}
	numEdges := float64(len(wg.pairs))
	g := graph.New()
	for p, st := range wg.pairs {
		var w float64
		switch scheme {
		case CBS, ECBS, JS:
			w = wg.weightOf(p, st, scheme)
		case EJS:
			w = js(st.cbs, wg.blocksPer[p.A], wg.blocksPer[p.B]) *
				math.Log(numEdges/float64(degree[p.A])) *
				math.Log(numEdges/float64(degree[p.B]))
		case ARCS:
			w = st.arcs
		}
		g.SetWeight(p.A, p.B, w)
	}
	return g
}

// weightOf computes one pair's weight under the streaming-safe counting
// schemes from the current statistics — the exact expression Graph
// evaluates, factored out so the delta pruner recomputes individual edges
// bit-identically to a full materialization.
func (wg *WeightedGraph) weightOf(p entity.Pair, st *stats, scheme WeightScheme) float64 {
	switch scheme {
	case CBS:
		return float64(st.cbs)
	case ECBS:
		numBlocks := float64(wg.numBlocks)
		return float64(st.cbs) *
			math.Log(numBlocks/float64(wg.blocksPer[p.A])) *
			math.Log(numBlocks/float64(wg.blocksPer[p.B]))
	case JS:
		return js(st.cbs, wg.blocksPer[p.A], wg.blocksPer[p.B])
	}
	panic(fmt.Sprintf("metablocking: weightOf does not support scheme %v", scheme))
}

// ValidateStreaming reports whether the meta-blocker configuration can run
// under the incremental resolver's live weighting and pruning. Stream-safe
// are the counting weight schemes (CBS, ECBS, JS) crossed with the
// weight-threshold pruning schemes (WEP, WNP — Reciprocal included); the
// rest are batch-only, each for a structural reason the error spells out.
func (m *MetaBlocker) ValidateStreaming() error {
	switch m.Weight {
	case CBS, ECBS, JS:
	case EJS:
		return fmt.Errorf("metablocking: EJS weighting cannot stream: its degree discount log(|E|/deg) drifts with every arrival (epoch-based EJS is a ROADMAP follow-on)")
	case ARCS:
		return fmt.Errorf("metablocking: ARCS weighting cannot stream: per-block reciprocal comparison mass is not decomposable into per-pair deltas")
	default:
		return fmt.Errorf("metablocking: unknown weight scheme %v", m.Weight)
	}
	switch m.Prune {
	case WEP, WNP:
	case CEP, CNP:
		return fmt.Errorf("metablocking: %s pruning cannot stream: its cardinality budget is derived from the whole block collection (batch-only; budget decay is a ROADMAP follow-on)", m.Prune)
	default:
		return fmt.Errorf("metablocking: unknown prune scheme %v", m.Prune)
	}
	return nil
}
