package metablocking

import (
	"math"
	"testing"

	"entityres/internal/blocking"
	"entityres/internal/datagen"
)

func parallelGraphFixture(t testing.TB) *blocking.Blocks {
	t.Helper()
	c, _, err := datagen.GenerateDirty(datagen.Config{Entities: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

// TestBuildGraphParallelMatchesSequential: the counting schemes must be
// bit-identical for any worker count; ARCS must agree within float
// rounding.
func TestBuildGraphParallelMatchesSequential(t *testing.T) {
	bs := parallelGraphFixture(t)
	for _, scheme := range WeightSchemes() {
		want := BuildGraph(bs, scheme)
		for _, workers := range []int{0, 1, 2, 4, 7} {
			got := BuildGraphParallel(bs, scheme, workers)
			we, ge := want.Edges(), got.Edges()
			if len(we) != len(ge) {
				t.Fatalf("%s workers=%d: %d edges, want %d", scheme, workers, len(ge), len(we))
			}
			for i := range we {
				if we[i].A != ge[i].A || we[i].B != ge[i].B {
					t.Fatalf("%s workers=%d: edge %d is {%d,%d}, want {%d,%d}",
						scheme, workers, i, ge[i].A, ge[i].B, we[i].A, we[i].B)
				}
				if scheme == ARCS {
					if math.Abs(we[i].Weight-ge[i].Weight) > 1e-12*math.Max(1, math.Abs(we[i].Weight)) {
						t.Fatalf("%s workers=%d: edge %d weight %g, want %g", scheme, workers, i, ge[i].Weight, we[i].Weight)
					}
				} else if we[i].Weight != ge[i].Weight {
					t.Fatalf("%s workers=%d: edge %d weight %g, want %g (must be bit-identical)",
						scheme, workers, i, ge[i].Weight, we[i].Weight)
				}
			}
		}
	}
}

// TestRestructureParallelMatchesSequential: full meta-blocking parity over
// the counting weight schemes and every pruning scheme.
func TestRestructureParallelMatchesSequential(t *testing.T) {
	c, _, err := datagen.GenerateDirty(datagen.Config{Entities: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := (&blocking.TokenBlocking{}).Block(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, weight := range []WeightScheme{CBS, ECBS, JS, EJS} {
		for _, prune := range PruneSchemes() {
			m := &MetaBlocker{Weight: weight, Prune: prune}
			want := m.Restructure(c, bs)
			got := m.RestructureParallel(c, bs, 4)
			if want.Len() != got.Len() {
				t.Fatalf("%s: %d blocks, want %d", m.Name(), got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if want.Get(i).Key != got.Get(i).Key {
					t.Fatalf("%s: block %d key %q, want %q", m.Name(), i, got.Get(i).Key, want.Get(i).Key)
				}
			}
		}
	}
}
